//! Workspace façade crate for LegoDB-rs: re-exports every crate so the
//! repository-level integration tests and examples have one import root.

#![forbid(unsafe_code)]

pub use legodb_core as core;
pub use legodb_imdb as imdb;
pub use legodb_optimizer as optimizer;
pub use legodb_pschema as pschema;
pub use legodb_relational as relational;
pub use legodb_schema as schema;
pub use legodb_xml as xml;
pub use legodb_xquery as xquery;
