//! Property-based tests over randomly generated schemas and documents:
//! the invariants that hold for *any* input, not just the IMDB fixtures.
//!
//! Runs on `legodb_util`'s `prop_check!` harness: each argument is drawn
//! from its range for N cases, and a failure is shrunk (halving, then
//! decrement) toward the range start before being reported with the seed
//! needed to replay it.

use legodb_core::transform::{apply, enumerate_candidates, TransformationSet};
use legodb_pschema::{derive_pschema, publish_all, rel, shred, InlineStyle};
use legodb_schema::gen::{generate, GenConfig};
use legodb_schema::validate::validate;
use legodb_schema::{parse_schema, Schema};
use legodb_util::{prop_assert, prop_assert_eq, prop_assume, prop_check, Rng, StdRng};
use legodb_xml::stats::Statistics;

/// A small pool of schema shapes exercising every construct: scalars,
/// attributes, nesting, optionality, bounded/unbounded repetition,
/// unions, and wildcards.
fn schema_pool() -> Vec<&'static str> {
    vec![
        "type R = r[ a[ String ], b[ Integer ] ]",
        "type R = r[ @id[ Integer ], a[ String ]?, Item{0,*} ]
         type Item = item[ name[ String ] ]",
        "type R = r[ x[ y[ String ], z[ Integer ] ], W{1,4} ]
         type W = w[ String ]",
        "type R = r[ (A | B){0,*} ]
         type A = a[ String ]
         type B = b[ Integer ]",
        "type R = r[ head[ String ], (Movie | TV) ]
         type Movie = bo[ Integer ], vs[ Integer ]
         type TV = seasons[ Integer ], Ep{0,*}
         type Ep = ep[ name[ String ] ]",
        "type R = r[ Review{0,*} ]
         type Review = review[ ~[ String ] ]",
        "type R = r[ note[ String ]?, deep[ deeper[ deepest[ Integer ] ] ] ]",
    ]
}

fn pool_schema(index: usize) -> Schema {
    parse_schema(schema_pool()[index]).expect("pool parses")
}

prop_check! {
    cases = 24,
    // Both p-schema derivations accept every document of the source
    // schema (language preservation).
    fn derivations_preserve_the_document_language(pool in 0..schema_pool().len(), seed in 0u64..1000) {
        let schema = pool_schema(pool);
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = generate(&schema, &mut rng, &GenConfig::default());
        prop_assert!(validate(&schema, &doc).is_ok());
        for style in [InlineStyle::Inlined, InlineStyle::Outlined] {
            let p = derive_pschema(&schema, style);
            prop_assert!(
                validate(p.schema(), &doc).is_ok(),
                "doc rejected after {:?} derivation:\n{}\n{}",
                style, p.schema(), doc.to_xml_pretty()
            );
        }
    }
}

prop_check! {
    cases = 24,
    // Every enumerated transformation yields a schema that still accepts
    // the source schema's documents.
    fn transformations_preserve_the_document_language(pool in 0..schema_pool().len(), seed in 0u64..500) {
        let schema = pool_schema(pool);
        let p = derive_pschema(&schema, InlineStyle::Inlined);
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = generate(&schema, &mut rng, &GenConfig::default());
        for t in enumerate_candidates(&p, &TransformationSet::all(vec!["nyt".into()])) {
            if let Ok((transformed, _)) = apply(&p, &t) {
                prop_assert!(
                    validate(transformed.schema(), &doc).is_ok(),
                    "{t} broke validation:\nbefore:\n{}\nafter:\n{}\ndoc:\n{}",
                    p.schema(), transformed.schema(), doc.to_xml_pretty()
                );
            }
        }
    }
}

prop_check! {
    cases = 24,
    // Shred → publish → shred is a fixpoint: the relational image is
    // stable (semantic round-trip).
    fn shred_publish_shred_is_a_fixpoint(pool in 0..schema_pool().len(), seed in 0u64..500) {
        let schema = pool_schema(pool);
        let p = derive_pschema(&schema, InlineStyle::Inlined);
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = generate(&schema, &mut rng, &GenConfig::default());
        let mapping = rel(&p, &Statistics::collect(&doc));
        let db = shred(&mapping, &doc).expect("generated docs shred");
        let rebuilt = publish_all(&mapping, &db).expect("databases publish");
        prop_assert!(validate(p.schema(), &rebuilt).is_ok(), "published doc invalid");
        let db2 = shred(&mapping, &rebuilt).expect("published docs shred");
        for table in db.tables() {
            let mut a = table.scan();
            let mut b = db2.table(&table.def.name).unwrap().scan();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "table {} unstable", &table.def.name);
        }
    }
}

prop_check! {
    cases = 24,
    // The schema text round-trips: print ∘ parse = identity.
    fn schema_printer_round_trips(pool in 0..schema_pool().len()) {
        let schema = pool_schema(pool);
        let printed = schema.to_string();
        let reparsed = parse_schema(&printed).expect("printed schema parses");
        prop_assert_eq!(schema, reparsed);
    }
}

prop_check! {
    cases = 24,
    // Harvested statistics agree with the document: the row counts of the
    // mapped tables equal the shredded row counts.
    fn translated_statistics_match_shredded_cardinalities(pool in 0..schema_pool().len(), seed in 0u64..500) {
        let schema = pool_schema(pool);
        let p = derive_pschema(&schema, InlineStyle::Inlined);
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = generate(&schema, &mut rng, &GenConfig::default());
        let stats = Statistics::collect(&doc);
        let mapping = rel(&p, &stats);
        let db = shred(&mapping, &doc).expect("generated docs shred");
        for table in db.tables() {
            let estimated = mapping.catalog.table(&table.def.name).unwrap().stats.rows;
            let actual = table.len() as f64;
            // Element-anchored counts are exact; group-shaped types are
            // estimated via member minima — allow slack there.
            prop_assert!(
                (estimated - actual).abs() <= (0.5 * actual).max(2.0),
                "table {}: estimated {estimated} vs actual {actual}",
                &table.def.name
            );
        }
    }
}

prop_check! {
    cases = 8,
    // Incremental candidate costing is bit-identical to the from-scratch
    // oracle along random transformation chains over the IMDB schema.
    // This also runs under the CI fault pass (`LEGODB_FAULT_SEED=1`),
    // where the `core.cost.reuse` failpoint forces recompute paths: an
    // injected `Err` must leave the total untouched, and an injected
    // panic only skips that step's comparison.
    fn incremental_costing_matches_the_oracle(seed in 0u64..200, steps in 1usize..5) {
        use legodb_core::{pschema_cost, CostEvaluator, Workload};
        use legodb_optimizer::OptimizerConfig;
        let stats = legodb_imdb::scaled_statistics(0.05);
        let workload: Workload = legodb_imdb::workload_w1();
        let cfg = OptimizerConfig::default();
        let evaluator = CostEvaluator::new(cfg);
        let mut current = derive_pschema(&legodb_imdb::imdb_schema(), InlineStyle::Inlined);
        let mut parent = evaluator
            .evaluate_full(&current, &stats, &workload)
            .expect("initial configuration prices");
        let oracle0 = pschema_cost(&current, &stats, &workload, &cfg).expect("oracle prices");
        prop_assert_eq!(parent.total.to_bits(), oracle0.total.to_bits());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..steps {
            let candidates = enumerate_candidates(&current, &TransformationSet::all(vec!["nyt".into()]));
            if candidates.is_empty() {
                break;
            }
            let t = candidates[rng.gen_range(0..candidates.len())].clone();
            let Ok((child, delta)) = apply(&current, &t) else { continue };
            // Candidates the oracle itself cannot price (translation or
            // optimizer rejection) are dropped by the search; skip them.
            let Ok(oracle) = pschema_cost(&child, &stats, &workload, &cfg) else { continue };
            let incr = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                evaluator.evaluate_incremental(&child, &stats, &workload, &parent, &delta)
            }));
            match incr {
                Ok(Ok(incr)) => {
                    prop_assert_eq!(
                        incr.total.to_bits(),
                        oracle.total.to_bits(),
                        "chain step {}: incremental {} vs oracle {}",
                        t, incr.total, oracle.total
                    );
                    parent = incr;
                }
                Ok(Err(e)) => prop_assert!(
                    false,
                    "incremental pricing failed where the oracle succeeded at {}: {}",
                    t, e
                ),
                // An injected panic from the reuse failpoint under the CI
                // fault pass: skip this step's comparison, keep walking.
                Err(_) => parent = oracle,
            }
            current = child;
        }
    }
}

prop_check! {
    cases = 6,
    // Physical layout is invisible to query answers: shred a generated
    // IMDB corpus into an all-row build and a build with a random subset
    // of relations flipped columnar, then answer every Appendix C query
    // Q1–Q18 on both. The sorted result rows must be bit-identical —
    // the column store changes page math and clone traffic, never
    // semantics. Runs unchanged under the CI fault and hardened passes.
    fn layout_never_changes_query_results(seed in 0u64..100, layout_seed in 0u64..100) {
        use legodb_imdb::{generate_imdb, imdb_schema, query, ScaleConfig};
        use legodb_optimizer::{optimize_statement, OptimizerConfig};
        use legodb_relational::{run, Layout};

        let mut rng = StdRng::seed_from_u64(seed);
        let doc = generate_imdb(&mut rng, &ScaleConfig::at_scale(0.002));
        let stats = Statistics::collect(&doc);
        let row_ps = derive_pschema(&imdb_schema(), InlineStyle::Inlined);
        // Flip a random, non-empty subset of the relations columnar.
        let mut col_ps = row_ps.clone();
        let names: Vec<_> = col_ps.schema().iter().map(|(n, _)| n.clone()).collect();
        let mut layout_rng = StdRng::seed_from_u64(layout_seed);
        for name in &names {
            if layout_rng.gen_range(0u32..2) == 1 {
                col_ps.set_layout(name, Layout::Columnar);
            }
        }
        if col_ps.layouts().is_empty() {
            for name in &names {
                col_ps.set_layout(name, Layout::Columnar);
            }
        }
        let mapping_row = rel(&row_ps, &stats);
        let mapping_col = rel(&col_ps, &stats);
        let db_row = shred(&mapping_row, &doc).expect("row build shreds");
        let db_col = shred(&mapping_col, &doc).expect("columnar build shreds");
        for i in 1..=18u32 {
            let name = format!("Q{i}");
            let q = query(&name);
            let mut results = Vec::new();
            for (mapping, db) in [(&mapping_row, &db_row), (&mapping_col, &db_col)] {
                let t = legodb_xquery::translate(mapping, &q).expect("query translates");
                let mut rows = Vec::new();
                for statement in &t.statements {
                    let opt = optimize_statement(
                        &mapping.catalog,
                        statement,
                        &OptimizerConfig::default(),
                    )
                    .expect("statement optimizes");
                    let (r, _) = run(db, &opt.plan).expect("plan executes");
                    rows.extend(r);
                }
                rows.retain(|row| !row.iter().all(|v| v.is_null()));
                rows.sort();
                results.push(rows);
            }
            prop_assert_eq!(
                &results[0],
                &results[1],
                "query {} answers differently on the columnar build",
                name
            );
        }
    }
}

/// Random printable-ASCII text of `len` characters, drawn from `rng`.
fn printable_text(rng: &mut StdRng, len: usize) -> String {
    (0..len)
        .map(|_| rng.gen_range(0x20u32..=0x7E) as u8 as char)
        .collect()
}

// XML escaping round-trips under harness-generated text.

prop_check! {
    cases = 64,
    fn xml_text_round_trips(len in 1usize..=60, seed in 0u64..10_000) {
        let text = printable_text(&mut StdRng::seed_from_u64(seed), len);
        // Whitespace-only text is dropped by the parser (element-content
        // whitespace); test non-empty trimmed content.
        prop_assume!(!text.trim().is_empty());
        let doc = legodb_xml::Document::new(
            legodb_xml::Element::text_leaf("t", text.trim().to_string()),
        );
        let reparsed = legodb_xml::parse(&doc.to_xml()).expect("serialized XML parses");
        prop_assert_eq!(doc, reparsed);
    }
}

prop_check! {
    cases = 64,
    fn attribute_values_round_trip(len in 0usize..=40, seed in 0u64..10_000) {
        let value = printable_text(&mut StdRng::seed_from_u64(seed), len);
        let doc = legodb_xml::Document::new(
            legodb_xml::Element::new("t").with_attr("a", value.clone()),
        );
        let reparsed = legodb_xml::parse(&doc.to_xml()).expect("serialized XML parses");
        prop_assert_eq!(reparsed.root.attribute("a"), Some(value.as_str()));
    }
}

prop_check! {
    cases = 6,
    // Candidate-evaluation scheduling never changes search results: the
    // greedy search over a generated mega-schema lands on the same final
    // cost (bit-for-bit) and the same applied moves whether candidates
    // are priced sequentially, in fixed chunks, or on the work-stealing
    // deques — scheduling is pure overhead-shaping, never semantics.
    // Under the CI fault pass (`LEGODB_FAULT_SEED=1`) injected failures
    // and panics are pure in (seed, site, key), so the equality holds
    // with faults firing too.
    fn scheduler_choice_never_changes_search_results(types in 4usize..16, seed in 0u64..50) {
        use legodb_core::search::{greedy_search, SearchConfig, StartPoint};
        use legodb_schema::{mega_schema, MegaConfig};
        use legodb_util::Scheduler;
        let mega = mega_schema(&MegaConfig {
            types,
            seed,
            ..MegaConfig::default()
        });
        let workload = legodb_bench::harness::mega_workload(&mega);
        let mut outcomes = Vec::new();
        for (parallel, scheduler) in [
            (false, Scheduler::WorkStealing),
            (true, Scheduler::Chunked),
            (true, Scheduler::WorkStealing),
        ] {
            let config = SearchConfig {
                start: StartPoint::MaximallyInlined,
                parallel,
                scheduler,
                max_iterations: 2,
                ..Default::default()
            };
            let r = greedy_search(&mega.schema, &mega.stats, &workload, &config)
                .expect("search succeeds");
            let moves: Vec<Option<String>> =
                r.trajectory.iter().map(|it| it.applied.clone()).collect();
            outcomes.push((r.cost.to_bits(), moves));
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1], "sequential vs chunked");
        prop_assert_eq!(&outcomes[0], &outcomes[2], "sequential vs work-stealing");
    }
}
