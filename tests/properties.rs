//! Property-based tests over randomly generated schemas and documents:
//! the invariants that hold for *any* input, not just the IMDB fixtures.

use legodb_core::transform::{apply, enumerate_candidates, TransformationSet};
use legodb_pschema::{derive_pschema, publish_all, rel, shred, InlineStyle};
use legodb_schema::gen::{generate, GenConfig};
use legodb_schema::validate::validate;
use legodb_schema::{parse_schema, Schema};
use legodb_xml::stats::Statistics;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small pool of schema shapes exercising every construct: scalars,
/// attributes, nesting, optionality, bounded/unbounded repetition,
/// unions, and wildcards.
fn schema_pool() -> Vec<&'static str> {
    vec![
        "type R = r[ a[ String ], b[ Integer ] ]",
        "type R = r[ @id[ Integer ], a[ String ]?, Item{0,*} ]
         type Item = item[ name[ String ] ]",
        "type R = r[ x[ y[ String ], z[ Integer ] ], W{1,4} ]
         type W = w[ String ]",
        "type R = r[ (A | B){0,*} ]
         type A = a[ String ]
         type B = b[ Integer ]",
        "type R = r[ head[ String ], (Movie | TV) ]
         type Movie = bo[ Integer ], vs[ Integer ]
         type TV = seasons[ Integer ], Ep{0,*}
         type Ep = ep[ name[ String ] ]",
        "type R = r[ Review{0,*} ]
         type Review = review[ ~[ String ] ]",
        "type R = r[ note[ String ]?, deep[ deeper[ deepest[ Integer ] ] ] ]",
    ]
}

fn arb_schema() -> impl Strategy<Value = Schema> {
    (0..schema_pool().len()).prop_map(|i| parse_schema(schema_pool()[i]).expect("pool parses"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both p-schema derivations accept every document of the source
    /// schema (language preservation).
    #[test]
    fn derivations_preserve_the_document_language(schema in arb_schema(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = generate(&schema, &mut rng, &GenConfig::default());
        prop_assert!(validate(&schema, &doc).is_ok());
        for style in [InlineStyle::Inlined, InlineStyle::Outlined] {
            let p = derive_pschema(&schema, style);
            prop_assert!(
                validate(p.schema(), &doc).is_ok(),
                "doc rejected after {:?} derivation:\n{}\n{}",
                style, p.schema(), doc.to_xml_pretty()
            );
        }
    }

    /// Every enumerated transformation yields a schema that still accepts
    /// the source schema's documents.
    #[test]
    fn transformations_preserve_the_document_language(schema in arb_schema(), seed in 0u64..500) {
        let p = derive_pschema(&schema, InlineStyle::Inlined);
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = generate(&schema, &mut rng, &GenConfig::default());
        for t in enumerate_candidates(&p, &TransformationSet::all(vec!["nyt".into()])) {
            if let Ok(transformed) = apply(&p, &t) {
                prop_assert!(
                    validate(transformed.schema(), &doc).is_ok(),
                    "{t} broke validation:\nbefore:\n{}\nafter:\n{}\ndoc:\n{}",
                    p.schema(), transformed.schema(), doc.to_xml_pretty()
                );
            }
        }
    }

    /// Shred → publish → shred is a fixpoint: the relational image is
    /// stable (semantic round-trip).
    #[test]
    fn shred_publish_shred_is_a_fixpoint(schema in arb_schema(), seed in 0u64..500) {
        let p = derive_pschema(&schema, InlineStyle::Inlined);
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = generate(&schema, &mut rng, &GenConfig::default());
        let mapping = rel(&p, &Statistics::collect(&doc));
        let db = shred(&mapping, &doc).expect("generated docs shred");
        let rebuilt = publish_all(&mapping, &db).expect("databases publish");
        prop_assert!(validate(p.schema(), &rebuilt).is_ok(), "published doc invalid");
        let db2 = shred(&mapping, &rebuilt).expect("published docs shred");
        for table in db.tables() {
            let mut a = table.scan();
            let mut b = db2.table(&table.def.name).unwrap().scan();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "table {} unstable", &table.def.name);
        }
    }

    /// The schema text round-trips: print ∘ parse = identity.
    #[test]
    fn schema_printer_round_trips(schema in arb_schema()) {
        let printed = schema.to_string();
        let reparsed = parse_schema(&printed).expect("printed schema parses");
        prop_assert_eq!(schema, reparsed);
    }

    /// Harvested statistics agree with the document: the row counts of the
    /// mapped tables equal the shredded row counts.
    #[test]
    fn translated_statistics_match_shredded_cardinalities(schema in arb_schema(), seed in 0u64..500) {
        let p = derive_pschema(&schema, InlineStyle::Inlined);
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = generate(&schema, &mut rng, &GenConfig::default());
        let stats = Statistics::collect(&doc);
        let mapping = rel(&p, &stats);
        let db = shred(&mapping, &doc).expect("generated docs shred");
        for table in db.tables() {
            let estimated = mapping.catalog.table(&table.def.name).unwrap().stats.rows;
            let actual = table.len() as f64;
            // Element-anchored counts are exact; group-shaped types are
            // estimated via member minima — allow slack there.
            prop_assert!(
                (estimated - actual).abs() <= (0.5 * actual).max(2.0),
                "table {}: estimated {estimated} vs actual {actual}",
                &table.def.name
            );
        }
    }
}

// XML escaping round-trip under proptest-generated text.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xml_text_round_trips(text in "[ -~]{1,60}") {
        // Whitespace-only text is dropped by the parser (element-content
        // whitespace); test non-empty trimmed content.
        prop_assume!(!text.trim().is_empty());
        let doc = legodb_xml::Document::new(
            legodb_xml::Element::text_leaf("t", text.trim().to_string()),
        );
        let reparsed = legodb_xml::parse(&doc.to_xml()).expect("serialized XML parses");
        prop_assert_eq!(doc, reparsed);
    }

    #[test]
    fn attribute_values_round_trip(value in "[ -~]{0,40}") {
        let doc = legodb_xml::Document::new(
            legodb_xml::Element::new("t").with_attr("a", value.clone()),
        );
        let reparsed = legodb_xml::parse(&doc.to_xml()).expect("serialized XML parses");
        prop_assert_eq!(reparsed.root.attribute("a"), Some(value.as_str()));
    }
}
