//! Robustness suite: adversarial inputs against the three parsers and
//! fault-injected / budget-bounded greedy searches.
//!
//! The parser tests prove the hard input limits bind *before* the stack
//! does: the over-limit cases run inside a deliberately small
//! `std::thread::Builder` stack, where an unguarded recursive descent
//! would overflow instead of returning the structured error.
//!
//! The search properties prove the fault-isolation layer: with injected
//! candidate panics and failures (deterministic per seed, order- and
//! thread-independent), the search still returns a configuration no
//! worse than its starting point, and parallel and sequential runs agree.
//!
//! The crash-recovery properties prove the durability layer: a seeded
//! fault "crashes" a durable database mid-write (torn WAL append, failed
//! fsync, failed checkpoint), and reopening must restore exactly a prefix
//! of the operation sequence that includes every acknowledged commit —
//! never a partial row, and never divergence between two opens. The CI
//! `recovery` stage reruns these across many `LEGODB_PROP_SEED` streams;
//! test names contain `crash_recovery` so the stage can filter on them.
//!
//! The streaming-ingest properties prove the event layer: the pull
//! tokenizer and the tree parser describe identical documents, the hard
//! limits bind mid-stream (depth, input size, entity expansion), and a
//! crash during batched ingest recovers a prefix of *whole* batches —
//! each batch is one WAL frame, so a torn frame drops wholly.

use legodb_core::{greedy_search, Budget, SearchConfig, SearchOutcome, StartPoint, Workload};
use legodb_relational::{ColumnDef, Database, Layout, SqlType, TableDef, Value};
use legodb_schema::{
    parse_schema, parse_schema_with_limits, Schema, SchemaLimits, SchemaParseError,
};
use legodb_util::fault::{override_for_test, FaultConfig, FaultMode, OverrideGuard};
use legodb_util::fs::DirHandle;
use legodb_util::{prop_assert, prop_assert_eq, prop_check};
use legodb_xml::stats::Statistics;
use legodb_xml::{
    events, events_with_limits, parse, parse_with_limits, tree_events, Event, ParseErrorKind,
    ParseLimits,
};
use legodb_xquery::{parse_xquery, parse_xquery_with_limits, XQueryErrorKind, XQueryLimits};
use std::time::Duration;

/// Run `f` on a thread with a small, explicit stack: if a parser's depth
/// limit fails to bind, the overflow aborts the process and the test
/// fails loudly instead of silently relying on the 8 MiB main stack.
/// 2 MiB holds every parser at its default limit even in debug builds
/// (measured: the schema parser's 4-frames-per-level descent is the
/// hungriest); an unguarded 10k-deep parse needs well over 32 MiB.
fn on_small_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .name("small-stack-parse".into())
        .stack_size(2 * 1024 * 1024)
        .spawn(f)
        .expect("spawn small-stack thread")
        .join()
        .expect("small-stack parse must return, not overflow")
}

// ---------------------------------------------------------------- XML --

#[test]
fn xml_depth_limit_binds_on_a_small_stack() {
    let err = on_small_stack(|| {
        let depth = 10_000;
        let src = "<a>".repeat(depth) + &"</a>".repeat(depth);
        parse(&src).unwrap_err()
    });
    assert!(matches!(err.kind, ParseErrorKind::TooDeep { limit: 256 }));
}

#[test]
fn xml_unterminated_tags_error_cleanly() {
    for src in [
        "<a><b>text",
        "<a",
        "<a href=",
        "<a><![CDATA[x",
        "<!-- never closed",
    ] {
        let err = parse(src).unwrap_err();
        assert!(
            matches!(
                err.kind,
                ParseErrorKind::UnexpectedEof(_)
                    | ParseErrorKind::MissingRoot
                    | ParseErrorKind::UnexpectedChar { .. }
            ),
            "{src:?} gave {err}"
        );
    }
}

#[test]
fn xml_entity_flood_is_bounded() {
    let limits = ParseLimits {
        max_entity_expansions: 1_000,
        ..Default::default()
    };
    let src = format!("<a>{}</a>", "&#65;".repeat(1_001));
    let err = parse_with_limits(&src, &limits).unwrap_err();
    assert!(matches!(
        err.kind,
        ParseErrorKind::TooManyEntities { limit: 1_000 }
    ));
}

#[test]
fn xml_oversized_input_is_rejected_before_parsing() {
    let limits = ParseLimits {
        max_input_bytes: 1 << 10,
        ..Default::default()
    };
    let src = format!("<a>{}</a>", "y".repeat(1 << 11));
    let err = parse_with_limits(&src, &limits).unwrap_err();
    assert!(matches!(err.kind, ParseErrorKind::InputTooLarge { .. }));
}

// ------------------------------------------------------------- schema --

#[test]
fn schema_depth_limit_binds_on_a_small_stack() {
    let err = on_small_stack(|| {
        let depth = 10_000;
        let src = format!("type A = {}(){}", "a[ ".repeat(depth), " ]".repeat(depth));
        parse_schema(&src).unwrap_err()
    });
    assert!(matches!(err, SchemaParseError::TooDeep { limit: 128, .. }));
}

#[test]
fn schema_truncated_inputs_error_cleanly() {
    for src in ["type A = a[", "type A = a[ String", "type A = (", "type"] {
        assert!(
            matches!(parse_schema(src), Err(SchemaParseError::Syntax { .. })),
            "{src:?}"
        );
    }
}

#[test]
fn schema_oversized_input_is_rejected_before_parsing() {
    let limits = SchemaLimits {
        max_input_bytes: 128,
        ..Default::default()
    };
    let src = format!("type A = a[ String ] // {}", "pad ".repeat(100));
    assert!(matches!(
        parse_schema_with_limits(&src, &limits),
        Err(SchemaParseError::InputTooLarge { limit: 128, .. })
    ));
}

// ------------------------------------------------------------- xquery --

#[test]
fn xquery_depth_limit_binds_on_a_small_stack() {
    let err = on_small_stack(|| {
        let depth = 10_000;
        let src = format!("{}$v", "FOR $v IN document(\"x\")/a RETURN ".repeat(depth));
        parse_xquery(&src).unwrap_err()
    });
    assert!(matches!(err.kind, XQueryErrorKind::TooDeep { limit: 64 }));
}

#[test]
fn xquery_truncated_inputs_error_cleanly() {
    for src in [
        "FOR",
        "FOR $v IN",
        "FOR $v IN document(\"x",
        "FOR $v IN document(\"x\")/a WHERE",
        "FOR $v IN document(\"x\")/a RETURN <r> $v",
    ] {
        let err = parse_xquery(src).unwrap_err();
        assert_eq!(err.kind, XQueryErrorKind::Syntax, "{src:?}");
    }
}

#[test]
fn xquery_oversized_input_is_rejected_before_parsing() {
    let limits = XQueryLimits {
        max_input_bytes: 64,
        ..Default::default()
    };
    let src = format!(
        "FOR $v IN document(\"x\")/a WHERE $v/t = \"{}\" RETURN $v",
        "z".repeat(256)
    );
    let err = parse_xquery_with_limits(&src, &limits).unwrap_err();
    assert!(matches!(err.kind, XQueryErrorKind::InputTooLarge { .. }));
}

// ------------------------------------------------- search under faults --

fn search_fixture() -> (Schema, Statistics, Workload) {
    let schema = parse_schema(
        "type IMDB = imdb[ Show{0,*} ]
         type Show = show [ title[ String ], year[ Integer ],
                            description[ String ], Aka{0,*}, ( Movie | TV ) ]
         type Movie = box_office[ Integer ]
         type TV = seasons[ Integer ]
         type Aka = aka[ String ]",
    )
    .unwrap();
    let mut stats = Statistics::new();
    stats
        .set_count(&["imdb"], 1)
        .set_count(&["imdb", "show"], 20000)
        .set_size(&["imdb", "show", "title"], 50.0)
        .set_distinct(&["imdb", "show", "title"], 20000)
        .set_count(&["imdb", "show", "year"], 20000)
        .set_base(&["imdb", "show", "year"], 1900, 2000, 100)
        .set_count(&["imdb", "show", "description"], 20000)
        .set_size(&["imdb", "show", "description"], 2000.0)
        .set_count(&["imdb", "show", "aka"], 60000)
        .set_size(&["imdb", "show", "aka"], 40.0)
        .set_count(&["imdb", "show", "box_office"], 14000)
        .set_count(&["imdb", "show", "seasons"], 6000);
    let workload = Workload::from_sources([(
        "lookup",
        r#"FOR $v IN document("x")/imdb/show WHERE $v/title = c1 RETURN $v/year"#,
        1.0,
    )])
    .unwrap();
    (schema, stats, workload)
}

prop_check! {
    cases = 12,
    // Fault isolation: under injected candidate panics and failures the
    // greedy search still returns Ok, never does worse than its starting
    // configuration, and parallel/sequential runs agree (fault decisions
    // are pure functions of (seed, site, key), not of scheduling).
    fn faulty_search_returns_best_so_far_and_parallel_agrees(seed in 0u64..1_000_000) {
        let (schema, stats, workload) = search_fixture();
        let _guard = override_for_test(FaultConfig {
            seed,
            rate: 0.4,
            mode: FaultMode::Mixed,
        });
        let mut costs = Vec::new();
        for parallel in [false, true] {
            let result = greedy_search(
                &schema,
                &stats,
                &workload,
                &SearchConfig {
                    start: StartPoint::MaximallyInlined,
                    parallel,
                    ..Default::default()
                },
            )
            .expect("fault-isolated search must not error");
            let initial = result.trajectory[0].cost;
            prop_assert!(
                result.cost <= initial,
                "seed {seed} parallel {parallel}: cost {} worse than start {}",
                result.cost,
                initial
            );
            prop_assert!(
                result
                    .trajectory
                    .windows(2)
                    .all(|w| w[1].cost <= w[0].cost),
                "seed {seed}: non-monotonic trajectory"
            );
            costs.push(result.cost);
        }
        prop_assert!(
            (costs[0] - costs[1]).abs() < 1e-9,
            "seed {seed}: sequential {} != parallel {}",
            costs[0],
            costs[1]
        );
    }
}

#[test]
fn all_candidates_panicking_still_returns_the_start() {
    let (schema, stats, workload) = search_fixture();
    let _guard = override_for_test(FaultConfig::always(42, FaultMode::Panic));
    let result = greedy_search(&schema, &stats, &workload, &SearchConfig::default()).unwrap();
    assert!(result.dropped_candidates > 0);
    assert_eq!(result.trajectory.len(), 1);
    assert_eq!(result.cost, result.trajectory[0].cost);
}

#[test]
fn zero_deadline_still_yields_a_usable_configuration() {
    let (schema, stats, workload) = search_fixture();
    let result = greedy_search(
        &schema,
        &stats,
        &workload,
        &SearchConfig {
            budget: Some(Budget::none().with_deadline(Duration::ZERO)),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(result.outcome, SearchOutcome::DeadlineExceeded);
    assert!(result.cost.is_finite() && result.cost > 0.0);
    assert!(!result.report.mapping.catalog.is_empty());
}

// ------------------------------------------- durability under crashes --

/// Disable env-activated fault injection (the CI fault stage) so the
/// durability tests see only the faults they inject themselves.
fn quiet_faults() -> OverrideGuard {
    override_for_test(FaultConfig {
        seed: 0,
        rate: 0.0,
        mode: FaultMode::Error,
    })
}

fn event_def() -> TableDef {
    let mut def = TableDef::new("Event");
    def.columns = vec![
        ColumnDef::new("Event_id", SqlType::Int),
        ColumnDef::new("name", SqlType::Text),
        ColumnDef::new("note", SqlType::Text).nullable(),
    ];
    def.key = Some("Event_id".into());
    def
}

/// Deterministic row contents so the recovery oracle is pure in the row
/// index — a recovered table can be checked cell-for-cell.
fn event_row(i: i64) -> Vec<Value> {
    let note = if i % 3 == 0 {
        Value::Null
    } else {
        Value::str(format!("note {i}"))
    };
    vec![Value::Int(i), Value::str(format!("event {i}")), note]
}

prop_check! {
    cases = 6,
    // Seeded crash recovery: run a durable workload (create table + index,
    // insert row-by-row with a commit after each, checkpoint midway) under
    // fault injection; the first error is the simulated crash. Reopening
    // must recover exactly `event_row(0..n)` for some n with
    // acked <= n <= attempted — every acknowledged commit survives, an
    // appended-but-unacknowledged row may survive, a torn frame never
    // does — and a second open must see the identical state.
    fn crash_recovery_restores_an_acked_consistent_prefix(
        seed in 0u64..1_000_000,
        rows in 1u64..40,
    ) {
        let root = std::env::temp_dir().join(format!(
            "legodb-crash-recovery-{}-{seed}-{rows}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).expect("create scratch dir");

        let mut acked = 0u64; // insert Ok and the following commit Ok
        let mut attempted = 0u64; // insert issued (may be torn mid-frame)
        {
            // Schema setup runs quiet so every case exercises the insert
            // path instead of crashing at CREATE TABLE.
            let quiet = quiet_faults();
            let mut db = Database::open(&dir).expect("fresh open");
            db.create_table(event_def()).expect("create table");
            db.create_index("Event", "name").expect("create index");
            db.commit().expect("commit schema");
            // The override-owner mutex is not reentrant: release the
            // quiet guard before installing the crash-injecting one.
            drop(quiet);

            let _faulty = override_for_test(FaultConfig {
                seed,
                rate: 0.2,
                mode: FaultMode::Error,
            });
            for i in 0..rows {
                if i == rows / 2 && db.checkpoint(&dir).is_err() {
                    break; // crash inside the checkpoint path
                }
                attempted = i + 1;
                if db.insert("Event", event_row(i as i64)).is_err() {
                    break; // crash during the WAL append (torn frame)
                }
                if db.commit().is_err() {
                    break; // crash during fsync: row appended, not acked
                }
                acked = i + 1;
            }
        }

        let _quiet = quiet_faults();
        let recovered = Database::open(&dir).expect("recovery open");
        let table = recovered.table("Event").expect("table survives");
        let got = table.scan();
        let n = got.len() as u64;
        prop_assert!(
            acked <= n && n <= attempted,
            "seed {seed}: recovered {n} rows, acked {acked}, attempted {attempted}"
        );
        for (i, row) in got.iter().enumerate() {
            prop_assert_eq!(
                row,
                &event_row(i as i64),
                "seed {seed}: row {i} corrupted after recovery"
            );
        }
        prop_assert!(
            table.has_index("name"),
            "seed {seed}: secondary index lost in recovery"
        );
        let again = Database::open(&dir).expect("second open");
        prop_assert_eq!(
            recovered.snapshot_json(),
            again.snapshot_json(),
            "seed {seed}: double open diverged"
        );
        drop(recovered);
        let _ = std::fs::remove_dir_all(&root);
    }
}

prop_check! {
    cases = 6,
    // A columnar table is exactly as durable as a row table: the WAL
    // `CreateTable` record carries the layout, so crash recovery must
    // rebuild the column store — not silently fall back to a row heap —
    // and recover an acked-consistent prefix cell-for-cell. A checkpoint
    // taken after recovery must round-trip the layout byte-identically.
    fn crash_recovery_round_trips_a_columnar_table(
        seed in 0u64..1_000_000,
        rows in 1u64..40,
    ) {
        let root = std::env::temp_dir().join(format!(
            "legodb-crash-recovery-col-{}-{seed}-{rows}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).expect("create scratch dir");

        let mut acked = 0u64;
        let mut attempted = 0u64;
        {
            let quiet = quiet_faults();
            let mut db = Database::open(&dir).expect("fresh open");
            db.create_table(event_def().with_layout(Layout::Columnar))
                .expect("create columnar table");
            db.create_index("Event", "name").expect("create index");
            db.commit().expect("commit schema");
            drop(quiet);

            let _faulty = override_for_test(FaultConfig {
                seed,
                rate: 0.2,
                mode: FaultMode::Error,
            });
            for i in 0..rows {
                if i == rows / 2 && db.checkpoint(&dir).is_err() {
                    break;
                }
                attempted = i + 1;
                if db.insert("Event", event_row(i as i64)).is_err() {
                    break;
                }
                if db.commit().is_err() {
                    break;
                }
                acked = i + 1;
            }
        }

        let _quiet = quiet_faults();
        let recovered = Database::open(&dir).expect("recovery open");
        let table = recovered.table("Event").expect("table survives");
        prop_assert_eq!(
            table.def.layout,
            Layout::Columnar,
            "seed {seed}: layout lost in WAL replay"
        );
        let got = table.scan();
        let n = got.len() as u64;
        prop_assert!(
            acked <= n && n <= attempted,
            "seed {seed}: recovered {n} rows, acked {acked}, attempted {attempted}"
        );
        for (i, row) in got.iter().enumerate() {
            prop_assert_eq!(
                row,
                &event_row(i as i64),
                "seed {seed}: columnar row {i} corrupted after recovery"
            );
        }
        prop_assert!(
            table.has_index("name"),
            "seed {seed}: secondary index lost on the columnar table"
        );
        let snapshot = recovered.snapshot_json();
        prop_assert!(
            snapshot.contains("\"layout\":\"columnar\""),
            "seed {seed}: snapshot does not report the columnar layout"
        );
        // Checkpoint round trip: compact the recovered state and reopen —
        // byte-identical snapshot, layout intact.
        recovered
            .checkpoint(&dir)
            .expect("post-recovery checkpoint");
        let again = Database::open(&dir).expect("open after checkpoint");
        prop_assert_eq!(
            snapshot,
            again.snapshot_json(),
            "seed {seed}: checkpoint round trip diverged"
        );
        prop_assert_eq!(
            again.table("Event").expect("table survives").def.layout,
            Layout::Columnar,
            "seed {seed}: layout lost in the checkpoint"
        );
        drop(again);
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn crash_recovery_open_of_an_empty_directory_is_a_valid_empty_database() {
    let _quiet = quiet_faults();
    let root = std::env::temp_dir().join(format!(
        "legodb-crash-recovery-empty-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let dir = DirHandle::create(&root).unwrap();
    let db = Database::open(&dir).unwrap();
    assert!(db.is_durable());
    assert_eq!(db.total_rows(), 0);
    // Opening twice more stays empty and identical — no ghost state.
    let a = Database::open(&dir).unwrap().snapshot_json();
    let b = Database::open(&dir).unwrap().snapshot_json();
    assert_eq!(a, b);
    let _ = std::fs::remove_dir_all(&root);
}

// -------------------------------------------------- streaming ingest --

/// Deterministic pseudo-random XML covering what the tokenizer handles:
/// nesting, attributes, entity references, comments, CDATA, self-closing
/// tags, and interleaved text. Pure in `seed` so failures replay.
fn gen_xml(seed: u64) -> String {
    fn next(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }
    fn element(state: &mut u64, depth: usize, out: &mut String) {
        let name = ["a", "b", "item", "x1"][(next(state) % 4) as usize];
        out.push('<');
        out.push_str(name);
        for k in 0..(next(state) % 3) {
            let val = ["v", "two words", "&amp;", "&#65;"][(next(state) % 4) as usize];
            out.push_str(&format!(" at{k}=\"{val}\""));
        }
        if depth >= 4 || next(state).is_multiple_of(5) {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for _ in 0..(next(state) % 4) {
            match next(state) % 5 {
                0 => out.push_str("some text"),
                1 => out.push_str("&lt;escaped&gt; &#66;"),
                2 => out.push_str("<!-- a comment -->"),
                3 => out.push_str("<![CDATA[raw <bits> & more]]>"),
                _ => element(state, depth + 1, out),
            }
        }
        out.push_str(&format!("</{name}>"));
    }
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut out = String::new();
    element(&mut state, 0, &mut out);
    out
}

prop_check! {
    cases = 64,
    // The pull tokenizer and the tree parser must describe the same
    // document: draining `events` yields exactly the stream that
    // `tree_events` re-derives from the parsed tree.
    fn event_stream_agrees_with_tree_parse(seed in 0u64..1_000_000) {
        let src = gen_xml(seed);
        let doc = parse(&src).expect("generated XML parses");
        let streamed: Vec<Event<'_>> = events(&src)
            .collect::<Result<_, _>>()
            .expect("generated XML tokenizes");
        let folded: Vec<Event<'_>> = tree_events(&doc).collect();
        prop_assert_eq!(streamed, folded, "seed {seed}: event streams diverged");
    }
}

#[test]
fn streaming_depth_limit_binds_mid_stream_on_a_small_stack() {
    // 10k opens, no closers: the limit must fire while pulling, long
    // before EOF, and without growing the stack.
    let (ok_events, err) = on_small_stack(|| {
        let src = "<a>".repeat(10_000);
        let mut it = events(&src);
        let mut ok = 0usize;
        loop {
            match it.next() {
                Some(Ok(_)) => ok += 1,
                Some(Err(e)) => return (ok, e),
                None => panic!("stream ended without hitting the depth limit"),
            }
        }
    });
    assert!(matches!(err.kind, ParseErrorKind::TooDeep { limit: 256 }));
    assert!(
        (255..=256).contains(&ok_events),
        "events up to the limit are delivered, got {ok_events}"
    );
}

#[test]
fn streaming_oversized_input_is_rejected_before_any_event() {
    let limits = ParseLimits {
        max_input_bytes: 1 << 10,
        ..Default::default()
    };
    let src = format!("<a>{}</a>", "y".repeat(1 << 11));
    let first = events_with_limits(&src, &limits)
        .next()
        .expect("oversized input yields an error event");
    let err = first.expect_err("first pull must reject the oversized input");
    assert!(matches!(err.kind, ParseErrorKind::InputTooLarge { .. }));
}

#[test]
fn streaming_entity_bomb_is_cut_off_mid_stream() {
    let limits = ParseLimits {
        max_entity_expansions: 1_000,
        ..Default::default()
    };
    let src = format!("<a>{}</a>", "<b>&#65;</b>".repeat(1_001));
    let mut it = events_with_limits(&src, &limits);
    let mut ok = 0usize;
    let err = loop {
        match it.next() {
            Some(Ok(_)) => ok += 1,
            Some(Err(e)) => break e,
            None => panic!("stream ended without hitting the entity limit"),
        }
    };
    assert!(matches!(
        err.kind,
        ParseErrorKind::TooManyEntities { limit: 1_000 }
    ));
    assert!(ok > 1_000, "the bomb streamed until the budget ran out");
}

prop_check! {
    cases = 6,
    // Batched ingest durability: every batch goes to the WAL as one frame,
    // so a seeded crash anywhere in the workload must recover a prefix of
    // *whole* batches — `acked <= n <= attempted` batches, never a torn
    // one — and a second open must agree.
    fn crash_recovery_preserves_whole_batches(
        seed in 0u64..1_000_000,
        batches in 1u64..12,
    ) {
        const BATCH: u64 = 5;
        let root = std::env::temp_dir().join(format!(
            "legodb-crash-batch-{}-{seed}-{batches}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).expect("create scratch dir");

        let mut acked = 0u64;
        let mut attempted = 0u64;
        {
            let quiet = quiet_faults();
            let mut db = Database::open(&dir).expect("fresh open");
            db.create_table(event_def()).expect("create table");
            db.commit().expect("commit schema");
            // The override-owner mutex is not reentrant: release the
            // quiet guard before installing the crash-injecting one.
            drop(quiet);

            let _faulty = override_for_test(FaultConfig {
                seed,
                rate: 0.2,
                mode: FaultMode::Error,
            });
            for b in 0..batches {
                attempted = b + 1;
                let rows: Vec<Vec<Value>> = (b * BATCH..(b + 1) * BATCH)
                    .map(|i| event_row(i as i64))
                    .collect();
                // A torn append drops the whole frame; a failed fsync may
                // still leave the full frame on disk (appended, unacked).
                if db.insert_batch("Event", rows).is_err() {
                    break;
                }
                acked = b + 1;
            }
        }

        let _quiet = quiet_faults();
        let recovered = Database::open(&dir).expect("recovery open");
        let table = recovered.table("Event").expect("table survives");
        let got = table.scan();
        let n = got.len() as u64;
        prop_assert!(
            n.is_multiple_of(BATCH),
            "seed {seed}: recovered {n} rows — a torn batch leaked through"
        );
        prop_assert!(
            acked * BATCH <= n && n <= attempted * BATCH,
            "seed {seed}: recovered {n} rows, acked {acked} batches, attempted {attempted}"
        );
        for (i, row) in got.iter().enumerate() {
            prop_assert_eq!(
                row,
                &event_row(i as i64),
                "seed {seed}: row {i} corrupted after recovery"
            );
        }
        let again = Database::open(&dir).expect("second open");
        prop_assert_eq!(
            recovered.snapshot_json(),
            again.snapshot_json(),
            "seed {seed}: double open diverged"
        );
        drop(recovered);
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn budgeted_search_is_never_better_than_unbudgeted() {
    let (schema, stats, workload) = search_fixture();
    let free = greedy_search(&schema, &stats, &workload, &SearchConfig::default()).unwrap();
    for max_evals in [1, 2, 4, 8, 64] {
        let bounded = greedy_search(
            &schema,
            &stats,
            &workload,
            &SearchConfig {
                budget: Some(Budget::none().with_max_evaluations(max_evals)),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(bounded.cost >= free.cost, "max_evals={max_evals}");
        assert!(bounded.cost <= bounded.trajectory[0].cost);
    }
}
