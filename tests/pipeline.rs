//! End-to-end integration tests spanning every crate: schema → p-schema →
//! mapping → shred → translate → optimize → execute → publish.

use legodb_core::search::{greedy_search, SearchConfig};
use legodb_core::transform::{apply, enumerate_candidates, Transformation, TransformationSet};
use legodb_core::workload::Workload;
use legodb_core::LegoDb;
use legodb_imdb::{generate_imdb, imdb_schema, query, scaled_statistics, ScaleConfig};
use legodb_optimizer::{optimize_statement, OptimizerConfig};
use legodb_pschema::{derive_pschema, publish_all, rel, shred, InlineStyle, PSchema};
use legodb_relational::exec::run;
use legodb_relational::{Row, Value};
use legodb_schema::TypeName;
use legodb_util::StdRng;
use legodb_xml::stats::Statistics;
use legodb_xquery::{parse_xquery, translate};

fn small_dataset() -> (legodb_xml::Document, Statistics) {
    let mut rng = StdRng::seed_from_u64(42);
    let config = ScaleConfig {
        shows: 60,
        directors: 15,
        actors: 40,
        ..ScaleConfig::at_scale(0.001)
    };
    let doc = generate_imdb(&mut rng, &config);
    let stats = Statistics::collect(&doc);
    (doc, stats)
}

/// Execute a query against a database under a mapping, returning all rows
/// across statements (sorted for comparison).
fn run_query(
    mapping: &legodb_pschema::Mapping,
    db: &legodb_relational::Database,
    src: &str,
) -> Vec<Row> {
    let q = parse_xquery(src).expect("query parses");
    let t = translate(mapping, &q).expect("query translates");
    let mut out = Vec::new();
    for statement in &t.statements {
        let optimized =
            optimize_statement(&mapping.catalog, statement, &OptimizerConfig::default())
                .expect("statement optimizes");
        let (rows, _) = run(db, &optimized.plan).expect("plan executes");
        out.extend(rows);
    }
    // An absent optional element surfaces as an all-NULL row under
    // nullable-column configurations and as no row under join-based ones;
    // both mean "empty content" in XQuery. Normalize.
    out.retain(|row| !row.iter().all(Value::is_null));
    out.sort();
    out
}

#[test]
fn shred_translate_execute_on_generated_imdb() {
    let (doc, stats) = small_dataset();
    let pschema = derive_pschema(&imdb_schema(), InlineStyle::Inlined);
    let mapping = rel(&pschema, &stats);
    let db = shred(&mapping, &doc).expect("document shreds");
    assert_eq!(db.table("Show").unwrap().len(), 60);

    // A selection the document can answer: find a title we know exists.
    let rows = run_query(
        &mapping,
        &db,
        r#"FOR $v IN document("x")/imdb/show
           WHERE $v/title = "title_000000"
           RETURN $v/title, $v/year"#,
    );
    assert_eq!(rows.len(), 1, "expected exactly the seeded title");
    assert_eq!(rows[0][0], Value::str("title_000000"));
}

/// The headline semantics property: *every* transformation leaves query
/// answers unchanged — only costs move.
#[test]
fn transformations_preserve_query_answers() {
    let (doc, stats) = small_dataset();
    let base = derive_pschema(&imdb_schema(), InlineStyle::Inlined);
    let queries = [
        r#"FOR $v IN document("x")/imdb/show WHERE $v/year = 1999 RETURN $v/title"#,
        r#"FOR $v IN document("x")/imdb/show, $a IN $v/aka WHERE $v/title = "title_000003" RETURN $a"#,
        r#"FOR $v IN document("x")/imdb/show WHERE $v/title = "title_000007" RETURN $v/description"#,
    ];

    let base_mapping = rel(&base, &stats);
    let base_db = shred(&base_mapping, &doc).expect("base shreds");
    let expected: Vec<Vec<Row>> = queries
        .iter()
        .map(|q| run_query(&base_mapping, &base_db, q))
        .collect();

    let candidates = enumerate_candidates(&base, &TransformationSet::all(vec!["nyt".into()]));
    assert!(!candidates.is_empty());
    let mut checked = 0;
    for t in &candidates {
        // Union-to-options changes NULL-ability but not answers; all are
        // answer-preserving.
        let Ok((transformed, _)) = apply(&base, t) else {
            continue;
        };
        let mapping = rel(&transformed, &stats);
        let Ok(db) = shred(&mapping, &doc) else {
            panic!("document no longer shreds after {t}");
        };
        for (qi, q) in queries.iter().enumerate() {
            let got = run_query(&mapping, &db, q);
            assert_eq!(
                got,
                expected[qi],
                "answers changed for query {qi} after {t}\nschema:\n{}",
                transformed.schema()
            );
        }
        checked += 1;
    }
    assert!(checked >= 5, "only {checked} transformations checked");
}

#[test]
fn shred_publish_round_trip_on_generated_imdb() {
    let (doc, stats) = small_dataset();
    for style in [InlineStyle::Inlined, InlineStyle::Outlined] {
        let pschema = derive_pschema(&imdb_schema(), style);
        let mapping = rel(&pschema, &stats);
        let db = shred(&mapping, &doc).expect("document shreds");
        let rebuilt = publish_all(&mapping, &db).expect("database publishes");
        // Semantic round trip: re-shredding the published document yields
        // the same tables.
        let db2 = shred(&mapping, &rebuilt).expect("published document shreds");
        for table in db.tables() {
            let mut a = table.scan();
            let mut b = db2.table(&table.def.name).unwrap().scan();
            a.sort();
            b.sort();
            assert_eq!(
                a, b,
                "table {} differs after round trip ({style:?})",
                table.def.name
            );
        }
    }
}

#[test]
fn greedy_search_runs_on_the_real_imdb_application() {
    let stats = scaled_statistics(0.02);
    let workload = Workload::from_sources([
        (
            "lookup",
            r#"FOR $v IN document("x")/imdb/show WHERE $v/title = c1 RETURN $v/year"#,
            0.7,
        ),
        (
            "publish",
            r#"FOR $v IN document("x")/imdb/show RETURN $v"#,
            0.3,
        ),
    ])
    .unwrap();
    let result = greedy_search(
        &imdb_schema(),
        &stats,
        &workload,
        &SearchConfig {
            parallel: true,
            max_iterations: 6,
            ..Default::default()
        },
    )
    .expect("search succeeds");
    let costs: Vec<f64> = result.trajectory.iter().map(|r| r.cost).collect();
    assert!(
        costs.windows(2).all(|w| w[1] <= w[0]),
        "non-monotone: {costs:?}"
    );
    assert!(!result.report.mapping.catalog.is_empty());
}

#[test]
fn optimizer_estimates_track_executor_measurements() {
    let (doc, stats) = small_dataset();
    let pschema = derive_pschema(&imdb_schema(), InlineStyle::Inlined);
    let mapping = rel(&pschema, &stats);
    let db = shred(&mapping, &doc).expect("document shreds");
    // Cardinality estimates for FK joins should land within 2× of truth
    // on exact (collected) statistics.
    let q = parse_xquery(r#"FOR $v IN document("x")/imdb/show, $a IN $v/aka RETURN $a"#).unwrap();
    let t = translate(&mapping, &q).unwrap();
    for statement in &t.statements {
        let optimized =
            optimize_statement(&mapping.catalog, statement, &OptimizerConfig::default()).unwrap();
        let (rows, _) = run(&db, &optimized.plan).unwrap();
        let actual = rows.len() as f64;
        if actual > 10.0 {
            let ratio = optimized.rows / actual;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "estimate {:.1} vs actual {actual} (ratio {ratio:.2})",
                optimized.rows
            );
        }
    }
}

#[test]
fn storage_maps_disagree_on_cost_but_agree_on_answers() {
    let (doc, stats) = small_dataset();
    let inlined = LegoDb::new(imdb_schema(), stats.clone(), Workload::new()).all_inlined_pschema();
    let distributed: PSchema = apply(
        &derive_pschema(&imdb_schema(), InlineStyle::Inlined),
        &Transformation::UnionDistribute {
            in_type: TypeName::new("Show"),
        },
    )
    .expect("union distributes")
    .0;

    let q = r#"FOR $v IN document("x")/imdb/show WHERE $v/year = 1999 RETURN $v/title"#;
    let m1 = rel(&inlined, &stats);
    let m2 = rel(&distributed, &stats);
    let db1 = shred(&m1, &doc).expect("inlined shreds");
    let db2 = shred(&m2, &doc).expect("distributed shreds");
    assert_eq!(run_query(&m1, &db1, q), run_query(&m2, &db2, q));
}

#[test]
fn appendix_queries_cost_on_searched_configuration() {
    let stats = scaled_statistics(0.05);
    let e = LegoDb::new(imdb_schema(), stats, legodb_imdb::lookup_workload());
    let result = e.optimize().expect("search succeeds");
    // Every Appendix C query must still be priceable on the chosen
    // configuration (the mapping covers the whole schema).
    for name in ["Q1", "Q5", "Q7", "Q12", "Q16", "Q20"] {
        let mut w = Workload::new();
        w.push(name, query(name), 1.0);
        let priced = e.cost_under(&result.pschema, &w);
        assert!(priced.is_ok(), "{name} failed: {priced:?}");
        assert!(priced.unwrap().total > 0.0);
    }
}
