//! A pull (event) XML parser: the workspace's single tokenizer.
//!
//! [`Events`] walks the same grammar as the historical recursive-descent
//! parser — elements, attributes, character data, predefined and numeric
//! entities, comments, CDATA, processing instructions, DOCTYPE — but yields
//! a flat stream of [`Event`]s instead of materializing a tree. The DOM
//! path ([`crate::parse::parse_with_limits`]) is now a thin tree-builder
//! over this iterator, and streaming consumers (statistics collection,
//! shredding) fold over it directly so document size no longer implies
//! resident memory.
//!
//! [`ParseLimits`] are enforced at the streaming boundary with the same
//! typed [`ParseError`]s as the DOM path: the input-size check fires on the
//! first pull, the depth check fires at the offending open tag, and the
//! entity budget fires mid-stream at the offending reference.

use crate::error::{ParseError, ParseErrorKind, Position};
use crate::escape::resolve_entity;
use crate::parse::ParseLimits;
use crate::tree::{Document, Element, Node};
use std::borrow::Cow;

/// One attribute on a [`Event::StartElement`]. Borrowed from the input
/// where possible; entity references in the value force an owned copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventAttribute<'a> {
    /// Attribute name (without quotes).
    pub name: Cow<'a, str>,
    /// Attribute value, entity-resolved.
    pub value: Cow<'a, str>,
}

/// One token of the document stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// An element open tag (self-closing tags yield an immediate
    /// [`Event::EndElement`] right after).
    StartElement {
        /// Tag name.
        name: Cow<'a, str>,
        /// Attributes in document order, entity-resolved.
        attributes: Vec<EventAttribute<'a>>,
    },
    /// A run of character data, entity-resolved. Whitespace-only runs are
    /// dropped (matching the DOM parser); comments and processing
    /// instructions do not split a run.
    Text(Cow<'a, str>),
    /// An element close tag. The name always matches the open tag — a
    /// mismatch surfaces as a [`ParseErrorKind::MismatchedClosingTag`]
    /// error instead.
    EndElement {
        /// Tag name.
        name: Cow<'a, str>,
    },
}

/// Pull events from an XML document under the default [`ParseLimits`].
pub fn events(input: &str) -> Events<'_> {
    events_with_limits(input, &ParseLimits::default())
}

/// Pull events from an XML document under explicit [`ParseLimits`].
pub fn events_with_limits<'a>(input: &'a str, limits: &ParseLimits) -> Events<'a> {
    Events {
        cur: Cursor::new(input),
        limits: *limits,
        state: State::Begin,
        open: Vec::new(),
        entities: 0,
        queued_end: None,
        finished: false,
    }
}

enum State {
    /// Before the root element: prolog, DOCTYPE, comments.
    Begin,
    /// Inside the root element.
    Content,
    /// After the root element: trailing comments/PIs only.
    Epilog,
}

/// The streaming tokenizer. Yields `Ok` events until the document is
/// exhausted or an error is hit; after an error (or the end) the iterator
/// is fused and keeps returning `None`.
pub struct Events<'a> {
    cur: Cursor<'a>,
    limits: ParseLimits,
    state: State,
    /// Byte spans (into the source) of the names of the open elements.
    open: Vec<(usize, usize)>,
    entities: usize,
    /// Pending close event for a self-closing tag.
    queued_end: Option<(usize, usize)>,
    finished: bool,
}

impl<'a> Iterator for Events<'a> {
    type Item = Result<Event<'a>, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        if let Some(span) = self.queued_end.take() {
            if self.open.is_empty() {
                self.state = State::Epilog;
            }
            return Some(Ok(Event::EndElement {
                name: Cow::Borrowed(self.cur.slice(span)),
            }));
        }
        let step = self.step();
        match step {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => {
                self.finished = true;
                None
            }
            Err(e) => {
                self.finished = true;
                Some(Err(e))
            }
        }
    }
}

impl<'a> Events<'a> {
    fn step(&mut self) -> Result<Option<Event<'a>>, ParseError> {
        match self.state {
            State::Begin => {
                if self.cur.src.len() > self.limits.max_input_bytes {
                    return Err(ParseError {
                        position: Position::start(),
                        kind: ParseErrorKind::InputTooLarge {
                            limit: self.limits.max_input_bytes,
                            actual: self.cur.src.len(),
                        },
                    });
                }
                self.cur.skip_prolog()?;
                if self.cur.peek() != Some(b'<') {
                    return Err(self.cur.error(ParseErrorKind::MissingRoot));
                }
                self.state = State::Content;
                self.open_tag().map(Some)
            }
            State::Content => self.content_step(),
            State::Epilog => {
                self.cur.skip_misc();
                if !self.cur.at_eof() {
                    return Err(self.cur.error(ParseErrorKind::TrailingContent));
                }
                Ok(None)
            }
        }
    }

    /// Scan forward inside element content: accumulate character data until
    /// a start tag, end tag, or error, and emit the first resulting event.
    fn content_step(&mut self) -> Result<Option<Event<'a>>, ParseError> {
        let mut text = TextAccum::Empty;
        loop {
            match self.cur.peek() {
                None => {
                    return Err(self
                        .cur
                        .error(ParseErrorKind::UnexpectedEof("reading element content")));
                }
                Some(b'<') => {
                    if self.cur.starts_with("<!--") {
                        self.cur.skip_until("-->", "reading a comment")?;
                    } else if self.cur.starts_with("<![CDATA[") {
                        self.cur.bump_n("<![CDATA[".len());
                        let start = self.cur.pos;
                        self.cur.skip_until("]]>", "reading a CDATA section")?;
                        text.push_span(self.cur.src, start, self.cur.pos - 3);
                    } else if self.cur.starts_with("<?") {
                        self.cur
                            .skip_until("?>", "reading a processing instruction")?;
                    } else {
                        // A start or end tag: flush pending text first, leaving
                        // the cursor at the '<' for the next pull.
                        if let Some(t) = text.flush(self.cur.src) {
                            return Ok(Some(t));
                        }
                        if self.cur.starts_with("</") {
                            return self.close_tag().map(Some);
                        }
                        return self.open_tag().map(Some);
                    }
                }
                Some(b'&') => {
                    let c = self.parse_entity()?;
                    text.push_char(self.cur.src, c);
                }
                Some(_) => {
                    let start = self.cur.pos;
                    let c = self.cur.next_char()?;
                    text.push_source_char(self.cur.src, start, c);
                }
            }
        }
    }

    /// Parse `<name attr="v" ...>` or `<name />`, cursor at the `<`.
    fn open_tag(&mut self) -> Result<Event<'a>, ParseError> {
        if self.open.len() + 1 > self.limits.max_depth {
            return Err(self.cur.error(ParseErrorKind::TooDeep {
                limit: self.limits.max_depth,
            }));
        }
        self.cur.bump(); // consume '<'
        let name_span = self.cur.parse_name()?;
        let mut attributes: Vec<EventAttribute<'a>> = Vec::new();
        loop {
            self.cur.skip_whitespace();
            match self.cur.peek() {
                Some(b'>') => {
                    self.cur.bump();
                    self.open.push(name_span);
                    return Ok(Event::StartElement {
                        name: Cow::Borrowed(self.cur.slice(name_span)),
                        attributes,
                    });
                }
                Some(b'/') => {
                    self.cur.bump();
                    if self.cur.peek() != Some(b'>') {
                        return Err(self.cur.error(ParseErrorKind::UnexpectedChar {
                            found: self.cur.peek().map(|b| b as char).unwrap_or('\0'),
                            expected: "'>' after '/'",
                        }));
                    }
                    self.cur.bump();
                    self.queued_end = Some(name_span);
                    return Ok(Event::StartElement {
                        name: Cow::Borrowed(self.cur.slice(name_span)),
                        attributes,
                    });
                }
                Some(b) if is_name_start(b) => {
                    let attr = self.parse_attribute()?;
                    if attributes.iter().any(|a| a.name == attr.name) {
                        return Err(self
                            .cur
                            .error(ParseErrorKind::DuplicateAttribute(attr.name.into_owned())));
                    }
                    attributes.push(attr);
                }
                Some(b) => {
                    return Err(self.cur.error(ParseErrorKind::UnexpectedChar {
                        found: b as char,
                        expected: "attribute name, '>', or '/>'",
                    }));
                }
                None => {
                    return Err(self
                        .cur
                        .error(ParseErrorKind::UnexpectedEof("reading a start tag")));
                }
            }
        }
    }

    /// Parse `</name>`, cursor at the `<`.
    fn close_tag(&mut self) -> Result<Event<'a>, ParseError> {
        self.cur.bump_n(2);
        let close_span = self.cur.parse_name()?;
        let open_span = match self.open.last() {
            Some(span) => *span,
            // Unreachable: Content state implies at least one open element.
            None => return Err(self.cur.error(ParseErrorKind::MissingRoot)),
        };
        if self.cur.slice(close_span) != self.cur.slice(open_span) {
            return Err(self.cur.error(ParseErrorKind::MismatchedClosingTag {
                open: self.cur.slice(open_span).to_string(),
                close: self.cur.slice(close_span).to_string(),
            }));
        }
        self.cur.skip_whitespace();
        if self.cur.peek() != Some(b'>') {
            return Err(self.cur.error(ParseErrorKind::UnexpectedChar {
                found: self.cur.peek().map(|b| b as char).unwrap_or('\0'),
                expected: "'>' in closing tag",
            }));
        }
        self.cur.bump();
        self.open.pop();
        if self.open.is_empty() {
            self.state = State::Epilog;
        }
        Ok(Event::EndElement {
            name: Cow::Borrowed(self.cur.slice(close_span)),
        })
    }

    fn parse_attribute(&mut self) -> Result<EventAttribute<'a>, ParseError> {
        let name_span = self.cur.parse_name()?;
        self.cur.skip_whitespace();
        if self.cur.peek() != Some(b'=') {
            return Err(self.cur.error(ParseErrorKind::UnexpectedChar {
                found: self.cur.peek().map(|b| b as char).unwrap_or('\0'),
                expected: "'=' in attribute",
            }));
        }
        self.cur.bump();
        self.cur.skip_whitespace();
        let quote = match self.cur.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            other => {
                return Err(self.cur.error(ParseErrorKind::UnexpectedChar {
                    found: other.map(|b| b as char).unwrap_or('\0'),
                    expected: "quoted attribute value",
                }));
            }
        };
        self.cur.bump();
        let mut value = TextAccum::Empty;
        loop {
            match self.cur.peek() {
                Some(q) if q == quote => {
                    self.cur.bump();
                    break;
                }
                Some(b'&') => {
                    let c = self.parse_entity()?;
                    value.push_char(self.cur.src, c);
                }
                Some(_) => {
                    let start = self.cur.pos;
                    let c = self.cur.next_char()?;
                    value.push_source_char(self.cur.src, start, c);
                }
                None => {
                    return Err(self
                        .cur
                        .error(ParseErrorKind::UnexpectedEof("reading an attribute value")));
                }
            }
        }
        Ok(EventAttribute {
            name: Cow::Borrowed(self.cur.slice(name_span)),
            value: value.take(self.cur.src),
        })
    }

    fn parse_entity(&mut self) -> Result<char, ParseError> {
        self.entities += 1;
        if self.entities > self.limits.max_entity_expansions {
            return Err(self.cur.error(ParseErrorKind::TooManyEntities {
                limit: self.limits.max_entity_expansions,
            }));
        }
        self.cur.bump(); // consume '&'
        let start = self.cur.pos;
        while let Some(b) = self.cur.peek() {
            if b == b';' {
                let name = &self.cur.src[start..self.cur.pos];
                self.cur.bump();
                return resolve_entity(name)
                    .ok_or_else(|| self.cur.error(ParseErrorKind::BadEntity(name.to_string())));
            }
            if self.cur.pos - start > 16 {
                break;
            }
            self.cur.bump();
        }
        Err(self.cur.error(ParseErrorKind::BadEntity(
            self.cur.src[start..self.cur.pos].to_string(),
        )))
    }
}

/// Character data under accumulation. Stays a borrowed source span while
/// the run is contiguous raw text; an entity reference or a CDATA join
/// promotes it to an owned buffer.
enum TextAccum {
    Empty,
    Span(usize, usize),
    Owned(String),
}

impl TextAccum {
    fn push_span(&mut self, src: &str, start: usize, end: usize) {
        match self {
            TextAccum::Empty => *self = TextAccum::Span(start, end),
            TextAccum::Span(_, e) if *e == start => *e = end,
            _ => {
                self.materialize(src);
                if let TextAccum::Owned(s) = self {
                    s.push_str(&src[start..end]);
                }
            }
        }
    }

    fn push_source_char(&mut self, src: &str, start: usize, c: char) {
        self.push_span(src, start, start + c.len_utf8());
    }

    fn push_char(&mut self, src: &str, c: char) {
        // Entity-resolved characters differ from the source bytes: owned.
        self.materialize(src);
        if let TextAccum::Owned(s) = self {
            s.push(c);
        }
    }

    fn materialize(&mut self, src: &str) {
        match self {
            TextAccum::Span(s, e) => *self = TextAccum::Owned(src[*s..*e].to_string()),
            TextAccum::Empty => *self = TextAccum::Owned(String::new()),
            TextAccum::Owned(_) => {}
        }
    }

    fn view<'s>(&'s self, src: &'s str) -> &'s str {
        match self {
            TextAccum::Empty => "",
            TextAccum::Span(s, e) => &src[*s..*e],
            TextAccum::Owned(s) => s,
        }
    }

    fn take<'a>(self, src: &'a str) -> Cow<'a, str> {
        match self {
            TextAccum::Empty => Cow::Borrowed(""),
            TextAccum::Span(s, e) => Cow::Borrowed(&src[s..e]),
            TextAccum::Owned(s) => Cow::Owned(s),
        }
    }

    /// The run as a text event, or `None` when it is whitespace-only (the
    /// DOM parser's `flush_text` drops such runs).
    fn flush<'a>(&mut self, src: &'a str) -> Option<Event<'a>> {
        if self.view(src).trim().is_empty() {
            *self = TextAccum::Empty;
            return None;
        }
        Some(Event::Text(
            std::mem::replace(self, TextAccum::Empty).take(src),
        ))
    }
}

/// The byte cursor shared by every scanning routine: position, line, and
/// column tracking identical to the historical DOM parser, so error
/// positions are byte-for-byte the same.
struct Cursor<'a> {
    input: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            input: src.as_bytes(),
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn position(&self) -> Position {
        Position {
            offset: self.pos,
            line: self.line,
            column: self.col,
        }
    }

    fn error(&self, kind: ParseErrorKind) -> ParseError {
        ParseError {
            position: self.position(),
            kind,
        }
    }

    fn slice(&self, span: (usize, usize)) -> &'a str {
        &self.src[span.0..span.1]
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Skip the XML declaration, DOCTYPE, comments and PIs before the root.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_until("?>", "reading a processing instruction")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->", "reading a comment")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skip trailing comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                if self.skip_until("-->", "reading a comment").is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self
                    .skip_until("?>", "reading a processing instruction")
                    .is_err()
                {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_until(&mut self, end: &str, ctx: &'static str) -> Result<(), ParseError> {
        while !self.at_eof() {
            if self.starts_with(end) {
                self.bump_n(end.len());
                return Ok(());
            }
            self.bump();
        }
        Err(self.error(ParseErrorKind::UnexpectedEof(ctx)))
    }

    /// Skip `<!DOCTYPE ... >`, including a bracketed internal subset.
    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        self.bump_n("<!DOCTYPE".len());
        let mut depth: i32 = 0;
        while let Some(b) = self.peek() {
            match b {
                b'[' => depth += 1,
                b']' => depth -= 1,
                b'>' if depth <= 0 => {
                    self.bump();
                    return Ok(());
                }
                _ => {}
            }
            self.bump();
        }
        Err(self.error(ParseErrorKind::UnexpectedEof("reading DOCTYPE")))
    }

    /// Parse a name, returning its byte span into the source.
    fn parse_name(&mut self) -> Result<(usize, usize), ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => {
                self.bump();
            }
            _ => return Err(self.error(ParseErrorKind::BadName)),
        }
        while matches!(self.peek(), Some(b) if is_name_char(b)) {
            self.bump();
        }
        Ok((start, self.pos))
    }

    /// Consume one full (possibly multi-byte) character.
    fn next_char(&mut self) -> Result<char, ParseError> {
        let c = self.src[self.pos..]
            .chars()
            .next()
            .ok_or_else(|| self.error(ParseErrorKind::UnexpectedEof("reading text")))?;
        self.bump_n(c.len_utf8());
        Ok(c)
    }
}

pub(crate) fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

pub(crate) fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

/// Replay an already-parsed [`Document`] as the same event stream the
/// tokenizer would produce for it: `StartElement`, children in order,
/// `EndElement`. Borrowed and infallible; lets tree consumers and stream
/// consumers share one fold.
pub fn tree_events(doc: &Document) -> TreeEvents<'_> {
    TreeEvents {
        work: vec![TreeStep::Open(&doc.root)],
    }
}

enum TreeStep<'a> {
    Open(&'a Element),
    Close(&'a str),
    Text(&'a str),
}

/// Iterator over a [`Document`] yielding borrowed [`Event`]s in document
/// order. See [`tree_events`].
pub struct TreeEvents<'a> {
    work: Vec<TreeStep<'a>>,
}

impl<'a> Iterator for TreeEvents<'a> {
    type Item = Event<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.work.pop()? {
            TreeStep::Open(e) => {
                self.work.push(TreeStep::Close(&e.name));
                for child in e.children.iter().rev() {
                    self.work.push(match child {
                        Node::Element(c) => TreeStep::Open(c),
                        Node::Text(t) => TreeStep::Text(t),
                    });
                }
                Some(Event::StartElement {
                    name: Cow::Borrowed(&e.name),
                    attributes: e
                        .attributes
                        .iter()
                        .map(|a| EventAttribute {
                            name: Cow::Borrowed(a.name.as_str()),
                            value: Cow::Borrowed(a.value.as_str()),
                        })
                        .collect(),
                })
            }
            TreeStep::Text(t) => Some(Event::Text(Cow::Borrowed(t))),
            TreeStep::Close(name) => Some(Event::EndElement {
                name: Cow::Borrowed(name),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn collect_events(input: &str) -> Vec<Event<'_>> {
        events(input).map(|e| e.unwrap()).collect()
    }

    #[test]
    fn simple_document_streams_in_order() {
        let evs = collect_events("<a><b>hi</b></a>");
        assert_eq!(evs.len(), 5);
        assert!(matches!(&evs[0], Event::StartElement { name, .. } if name == "a"));
        assert!(matches!(&evs[1], Event::StartElement { name, .. } if name == "b"));
        assert!(matches!(&evs[2], Event::Text(t) if t == "hi"));
        assert!(matches!(&evs[3], Event::EndElement { name } if name == "b"));
        assert!(matches!(&evs[4], Event::EndElement { name } if name == "a"));
    }

    #[test]
    fn self_closing_yields_start_then_end() {
        let evs = collect_events("<a><b/></a>");
        assert!(matches!(&evs[1], Event::StartElement { name, .. } if name == "b"));
        assert!(matches!(&evs[2], Event::EndElement { name } if name == "b"));
    }

    #[test]
    fn plain_text_is_borrowed_entities_force_owned() {
        let evs = collect_events("<a>plain</a>");
        assert!(matches!(&evs[1], Event::Text(Cow::Borrowed("plain"))));
        let evs = collect_events("<a>a &amp; b</a>");
        assert!(matches!(&evs[1], Event::Text(Cow::Owned(t)) if t == "a & b"));
    }

    #[test]
    fn attributes_are_entity_resolved() {
        let evs = collect_events(r#"<a t="&lt;x&gt;" u='raw'/>"#);
        let Event::StartElement { attributes, .. } = &evs[0] else {
            panic!("expected start");
        };
        assert_eq!(attributes[0].value, "<x>");
        assert!(matches!(attributes[1].value, Cow::Borrowed("raw")));
    }

    #[test]
    fn whitespace_only_text_is_not_emitted() {
        let evs = collect_events("<a>\n  <b/>\n</a>");
        assert!(!evs.iter().any(|e| matches!(e, Event::Text(_))));
    }

    #[test]
    fn comments_and_pis_do_not_split_a_text_run() {
        let evs = collect_events("<a>x<!-- c -->y<?pi?>z</a>");
        assert!(matches!(&evs[1], Event::Text(t) if t == "xyz"));
    }

    #[test]
    fn cdata_joins_the_run() {
        let evs = collect_events("<a>p<![CDATA[x < y]]>q</a>");
        assert!(matches!(&evs[1], Event::Text(t) if t == "px < yq"));
    }

    #[test]
    fn depth_limit_fires_mid_stream() {
        let limits = ParseLimits {
            max_depth: 3,
            ..Default::default()
        };
        let src = "<a><a><a><a></a></a></a></a>";
        let mut seen = 0;
        let mut err = None;
        for ev in events_with_limits(src, &limits) {
            match ev {
                Ok(_) => seen += 1,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(seen, 3);
        assert!(matches!(
            err.unwrap().kind,
            ParseErrorKind::TooDeep { limit: 3 }
        ));
    }

    #[test]
    fn input_size_limit_fires_on_first_pull() {
        let limits = ParseLimits {
            max_input_bytes: 8,
            ..Default::default()
        };
        let err = events_with_limits("<a>123456789</a>", &limits)
            .next()
            .unwrap()
            .unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InputTooLarge { .. }));
    }

    #[test]
    fn iterator_is_fused_after_an_error() {
        let mut it = events("<a><b></a></b>");
        let mut saw_err = false;
        for ev in &mut it {
            if ev.is_err() {
                saw_err = true;
            }
        }
        assert!(saw_err);
        assert!(it.next().is_none());
    }

    #[test]
    fn trailing_content_is_reported_after_the_root_closes() {
        let results: Vec<_> = events("<a/>junk").collect();
        assert!(matches!(
            results.last().unwrap(),
            Err(ParseError {
                kind: ParseErrorKind::TrailingContent,
                ..
            })
        ));
    }

    #[test]
    fn tree_events_match_streamed_events() {
        let src = r#"<show type="Movie"><title>T &amp; T</title><empty/>tail</show>"#;
        let doc = parse(src).unwrap();
        let streamed: Vec<Event<'_>> = events(src).map(|e| e.unwrap()).collect();
        let replayed: Vec<Event<'_>> = tree_events(&doc).collect();
        assert_eq!(streamed, replayed);
    }
}
