//! # legodb-xml
//!
//! A self-contained XML substrate for the LegoDB-rs workspace: a document
//! object model ([`Document`], [`Element`], [`Node`]), a non-validating
//! parser ([`parse`]), a serializer ([`Document::to_xml`]), and a path
//! statistics collector ([`stats::Statistics`]) that harvests the
//! `STcnt`/`STsize`/`STbase` style statistics the LegoDB paper lists in its
//! Appendix A.
//!
//! The LegoDB mapping engine is driven purely by XML-level inputs — an XML
//! Schema, an XQuery workload, and *data statistics*. This crate provides the
//! document side of that interface: documents are parsed here, statistics are
//! collected here, and the publishing path (relational rows back to XML) uses
//! the builder and serializer defined here.
//!
//! ```
//! use legodb_xml::{parse, stats::Statistics};
//!
//! let doc = parse("<imdb><show><title>The Fugitive</title></show></imdb>").unwrap();
//! assert_eq!(doc.root.name, "imdb");
//! let stats = Statistics::collect(&doc);
//! assert_eq!(stats.count(&["imdb", "show"]), Some(1));
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod escape;
pub mod events;
pub mod parse;
pub mod stats;
pub mod tree;
pub mod write;

pub use error::{ParseError, ParseErrorKind, Position};
pub use events::{events, events_with_limits, tree_events, Event, EventAttribute, Events};
pub use parse::{parse, parse_with_limits, ParseLimits};
pub use tree::{Attribute, Document, Element, Node};
