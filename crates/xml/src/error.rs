//! Parse errors with byte/line/column positions.

use std::fmt;

/// A position in the source text, tracked by the parser for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// Byte offset from the start of the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes, not grapheme clusters).
    pub column: u32,
}

impl Position {
    /// The position of the first byte of the input.
    pub const fn start() -> Self {
        Position {
            offset: 0,
            line: 1,
            column: 1,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// An error produced while parsing an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where in the input the error was detected.
    pub position: Position,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The specific failure detected by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended before the document was complete.
    UnexpectedEof(&'static str),
    /// A character that is not legal at this point in the grammar.
    UnexpectedChar { found: char, expected: &'static str },
    /// `</b>` closed an element opened as `<a>`.
    MismatchedClosingTag { open: String, close: String },
    /// Markup (or text) appeared after the document element closed.
    TrailingContent,
    /// The document has no root element.
    MissingRoot,
    /// An entity reference (`&...;`) that is malformed or unknown.
    BadEntity(String),
    /// An element or attribute name that is empty or starts illegally.
    BadName,
    /// The same attribute appears twice on one element.
    DuplicateAttribute(String),
    /// Element nesting exceeded the configured depth limit.
    TooDeep {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The input is larger than the configured byte limit.
    InputTooLarge {
        /// The limit that was exceeded.
        limit: usize,
        /// The actual input length in bytes.
        actual: usize,
    },
    /// More entity references than the configured limit.
    TooManyEntities {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}: ", self.position)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof(ctx) => write!(f, "unexpected end of input while {ctx}"),
            ParseErrorKind::UnexpectedChar { found, expected } => {
                write!(f, "unexpected character {found:?}, expected {expected}")
            }
            ParseErrorKind::MismatchedClosingTag { open, close } => {
                write!(
                    f,
                    "closing tag </{close}> does not match opening tag <{open}>"
                )
            }
            ParseErrorKind::TrailingContent => write!(f, "content after the document element"),
            ParseErrorKind::MissingRoot => write!(f, "document has no root element"),
            ParseErrorKind::BadEntity(e) => write!(f, "bad entity reference &{e};"),
            ParseErrorKind::BadName => write!(f, "invalid element or attribute name"),
            ParseErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            ParseErrorKind::TooDeep { limit } => {
                write!(f, "element nesting exceeds the depth limit of {limit}")
            }
            ParseErrorKind::InputTooLarge { limit, actual } => {
                write!(f, "input of {actual} bytes exceeds the limit of {limit}")
            }
            ParseErrorKind::TooManyEntities { limit } => {
                write!(f, "more than {limit} entity references")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_displays_line_and_column() {
        let p = Position {
            offset: 10,
            line: 2,
            column: 5,
        };
        assert_eq!(p.to_string(), "2:5");
    }

    #[test]
    fn error_display_mentions_position_and_kind() {
        let e = ParseError {
            position: Position::start(),
            kind: ParseErrorKind::MismatchedClosingTag {
                open: "a".into(),
                close: "b".into(),
            },
        };
        let s = e.to_string();
        assert!(s.contains("1:1"));
        assert!(s.contains("</b>"));
        assert!(s.contains("<a>"));
    }
}
