//! XML serialization: compact and indented forms.

use crate::escape::{escape_attribute, escape_text};
use crate::tree::{Document, Element, Node};
use std::fmt::Write as _;

impl Document {
    /// Serialize compactly (no added whitespace). The output re-parses to an
    /// equal document.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        write_element(&mut out, &self.root, None, 0);
        out
    }

    /// Serialize with two-space indentation. Mixed-content elements (any
    /// direct text) are kept on one line so text content survives a
    /// round-trip unchanged.
    pub fn to_xml_pretty(&self) -> String {
        let mut out = String::new();
        write_element(&mut out, &self.root, Some(2), 0);
        out.push('\n');
        out
    }
}

impl Element {
    /// Serialize this element (and subtree) compactly.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        write_element(&mut out, self, None, 0);
        out
    }
}

fn write_element(out: &mut String, e: &Element, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * depth {
                out.push(' ');
            }
        }
    };
    if depth > 0 {
        pad(out, depth);
    }
    out.push('<');
    out.push_str(&e.name);
    for a in &e.attributes {
        let _ = write!(out, " {}=\"{}\"", a.name, escape_attribute(&a.value));
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    let mixed = e.children.iter().any(|c| matches!(c, Node::Text(_)));
    // Mixed content must be serialized verbatim: indentation would inject
    // whitespace into character data.
    let child_indent = if mixed { None } else { indent };
    for child in &e.children {
        match child {
            Node::Element(c) => write_element(out, c, child_indent, depth + 1),
            Node::Text(t) => out.push_str(&escape_text(t)),
        }
    }
    if !mixed && indent.is_some() {
        pad(out, depth);
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn sample() -> Document {
        parse(r#"<show type="Movie"><title>Fugitive, The</title><year>1993</year><empty/></show>"#)
            .unwrap()
    }

    #[test]
    fn compact_round_trip() {
        let doc = sample();
        let reparsed = parse(&doc.to_xml()).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn pretty_round_trip() {
        let doc = sample();
        let reparsed = parse(&doc.to_xml_pretty()).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn escaping_survives_round_trip() {
        let doc = parse(r#"<a t="&quot;&lt;">x &amp; y &lt;z&gt;</a>"#).unwrap();
        let reparsed = parse(&doc.to_xml()).unwrap();
        assert_eq!(doc, reparsed);
        assert!(doc.to_xml().contains("&amp;"));
    }

    #[test]
    fn empty_element_serializes_self_closing() {
        let doc = parse("<a><b></b></a>").unwrap();
        assert_eq!(doc.to_xml(), "<a><b/></a>");
    }

    #[test]
    fn pretty_indents_element_only_content() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let pretty = doc.to_xml_pretty();
        assert!(pretty.contains("\n  <b>"));
        assert!(pretty.contains("\n    <c/>"));
    }

    #[test]
    fn mixed_content_is_not_reindented() {
        let doc = parse("<p>before<b>bold</b>after</p>").unwrap();
        let pretty = doc.to_xml_pretty();
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(doc, reparsed);
    }
}
