//! Escaping and unescaping of XML character data and attribute values.

use std::borrow::Cow;

/// Escape text for use as element character data (`<`, `&`, and `>` for
/// robustness against `]]>`).
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escape text for use inside a double-quoted attribute value.
pub fn escape_attribute(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn escape_with(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = s
        .bytes()
        .any(|b| matches!(b, b'<' | b'>' | b'&') || (attr && b == b'"'));
    if !needs {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Resolve a single entity name (the text between `&` and `;`) to its
/// character, supporting the five XML predefined entities and numeric
/// character references (`#10`, `#x1F`).
pub fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let digits = name.strip_prefix('#')?;
            let code = if let Some(hex) = digits
                .strip_prefix('x')
                .or_else(|| digits.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                digits.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_is_borrowed() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
    }

    #[test]
    fn special_chars_are_escaped() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn quotes_escaped_only_in_attributes() {
        assert_eq!(escape_text("say \"hi\""), "say \"hi\"");
        assert_eq!(escape_attribute("say \"hi\""), "say &quot;hi&quot;");
    }

    #[test]
    fn predefined_entities_resolve() {
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("apos"), Some('\''));
        assert_eq!(resolve_entity("quot"), Some('"'));
    }

    #[test]
    fn numeric_references_resolve() {
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#X41"), Some('A'));
    }

    #[test]
    fn bad_entities_are_rejected() {
        assert_eq!(resolve_entity("nbsp"), None);
        assert_eq!(resolve_entity("#xZZ"), None);
        assert_eq!(resolve_entity("#x110000"), None); // beyond char range
        assert_eq!(resolve_entity(""), None);
    }
}
