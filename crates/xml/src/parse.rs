//! The DOM parsing entry points: a thin tree-builder over the pull parser
//! in [`crate::events`], which owns the single tokenizer.
//!
//! Supports the subset of XML needed by the LegoDB workloads: elements,
//! attributes, character data, predefined and numeric entity references,
//! comments, CDATA sections, processing instructions, and a DOCTYPE
//! declaration (skipped, including an internal subset). Namespaces are
//! treated as part of the name (prefix and all), matching the paper's usage.

use crate::error::{ParseError, ParseErrorKind, Position};
use crate::events::{events_with_limits, Event};
use crate::tree::{Attribute, Document, Element, Node};

/// Hard input limits enforced while parsing — the defense against hostile
/// documents (stack-overflow nesting, entity floods, oversized payloads).
/// Violations surface as structured [`ParseError`]s, never as crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum element nesting depth.
    pub max_depth: usize,
    /// Maximum input length in bytes (checked before parsing starts).
    pub max_input_bytes: usize,
    /// Maximum number of entity references in the document.
    pub max_entity_expansions: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            // Deep enough for any real document; shallow enough that tree
            // recursion over parsed documents fits in a small thread stack.
            max_depth: 256,
            max_input_bytes: 256 << 20,
            max_entity_expansions: 1 << 20,
        }
    }
}

/// Parse a complete XML document from a string, under the default
/// [`ParseLimits`].
pub fn parse(input: &str) -> Result<Document, ParseError> {
    parse_with_limits(input, &ParseLimits::default())
}

/// Parse a complete XML document under explicit [`ParseLimits`].
///
/// This is a tree-builder over [`events_with_limits`]: the tokenizer
/// enforces the limits and guarantees balanced, well-formed events, so the
/// builder only stacks elements and attaches children.
pub fn parse_with_limits(input: &str, limits: &ParseLimits) -> Result<Document, ParseError> {
    let mut stack: Vec<Element> = Vec::new();
    let mut root: Option<Element> = None;
    for event in events_with_limits(input, limits) {
        match event? {
            Event::StartElement { name, attributes } => {
                let mut element = Element::new(name.into_owned());
                element.attributes = attributes
                    .into_iter()
                    .map(|a| Attribute {
                        name: a.name.into_owned(),
                        value: a.value.into_owned(),
                    })
                    .collect();
                stack.push(element);
            }
            Event::Text(text) => {
                if let Some(open) = stack.last_mut() {
                    open.children.push(Node::Text(text.into_owned()));
                }
            }
            Event::EndElement { .. } => {
                // lint: allow(no-unwrap-in-lib) — the tokenizer only emits balanced end tags
                let element = stack.pop().expect("balanced events");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(Node::Element(element)),
                    None => root = Some(element),
                }
            }
        }
    }
    match root {
        Some(root) => Ok(Document::new(root)),
        // Unreachable: an event stream either errors or produces a root.
        None => Err(ParseError {
            position: Position::start(),
            kind: ParseErrorKind::MissingRoot,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ParseErrorKind;

    #[test]
    fn parses_simple_document() {
        let doc = parse("<a><b>hi</b><b>ho</b></a>").unwrap();
        assert_eq!(doc.root.name, "a");
        assert_eq!(doc.root.children_named("b").count(), 2);
        assert_eq!(doc.root.first_child("b").unwrap().text(), "hi");
    }

    #[test]
    fn parses_attributes_and_self_closing() {
        let doc = parse(r#"<show type="Movie" year='1993'><empty/></show>"#).unwrap();
        assert_eq!(doc.root.attribute("type"), Some("Movie"));
        assert_eq!(doc.root.attribute("year"), Some("1993"));
        assert!(doc.root.first_child("empty").unwrap().is_leaf());
    }

    #[test]
    fn resolves_entities_in_text_and_attributes() {
        let doc = parse(r#"<a t="&lt;x&gt;">a &amp; b &#65;</a>"#).unwrap();
        assert_eq!(doc.root.attribute("t"), Some("<x>"));
        assert_eq!(doc.root.text(), "a & b A");
    }

    #[test]
    fn skips_prolog_doctype_comments_and_pis() {
        let src = r#"<?xml version="1.0"?>
            <!DOCTYPE imdb [ <!ELEMENT imdb (show*)> ]>
            <!-- a comment -->
            <imdb><?pi data?><!-- inner --><show/></imdb>
            <!-- trailing -->"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.root.name, "imdb");
        assert_eq!(doc.root.child_elements().count(), 1);
    }

    #[test]
    fn cdata_is_literal_text() {
        let doc = parse("<a><![CDATA[x < y && z]]></a>").unwrap();
        assert_eq!(doc.root.text(), "x < y && z");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.root.children.len(), 2);
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::MismatchedClosingTag { .. }
        ));
    }

    #[test]
    fn trailing_content_is_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TrailingContent));
    }

    #[test]
    fn missing_root_is_rejected() {
        let err = parse("   ").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MissingRoot));
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn unknown_entity_is_rejected() {
        let err = parse("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadEntity(_)));
    }

    #[test]
    fn eof_inside_tag_is_reported() {
        let err = parse("<a><b>text").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn line_and_column_are_tracked() {
        let err = parse("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(err.position.line, 2);
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let depth = 10_000;
        let src = "<a>".repeat(depth) + &"</a>".repeat(depth);
        let err = parse(&src).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TooDeep { limit: 256 }));
    }

    #[test]
    fn nesting_under_the_limit_parses() {
        let limits = ParseLimits::default();
        let depth = limits.max_depth;
        let src = "<a>".repeat(depth) + &"</a>".repeat(depth);
        assert!(parse_with_limits(&src, &limits).is_ok());
    }

    #[test]
    fn oversized_input_is_rejected_upfront() {
        let limits = ParseLimits {
            max_input_bytes: 64,
            ..Default::default()
        };
        let src = format!("<a>{}</a>", "x".repeat(100));
        let err = parse_with_limits(&src, &limits).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::InputTooLarge { limit: 64, .. }
        ));
    }

    #[test]
    fn entity_flood_is_rejected() {
        let limits = ParseLimits {
            max_entity_expansions: 10,
            ..Default::default()
        };
        let src = format!("<a>{}</a>", "&amp;".repeat(11));
        let err = parse_with_limits(&src, &limits).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::TooManyEntities { limit: 10 }
        ));
        let ok = format!("<a>{}</a>", "&amp;".repeat(10));
        assert!(parse_with_limits(&ok, &limits).is_ok());
    }

    #[test]
    fn utf8_text_round_trips() {
        let doc = parse("<aka>Die unheimlichen Fälle — «déjà vu»</aka>").unwrap();
        assert_eq!(doc.root.text(), "Die unheimlichen Fälle — «déjà vu»");
    }
}
