//! A hand-written, non-validating XML parser.
//!
//! Supports the subset of XML needed by the LegoDB workloads: elements,
//! attributes, character data, predefined and numeric entity references,
//! comments, CDATA sections, processing instructions, and a DOCTYPE
//! declaration (skipped, including an internal subset). Namespaces are
//! treated as part of the name (prefix and all), matching the paper's usage.

use crate::error::{ParseError, ParseErrorKind, Position};
use crate::escape::resolve_entity;
use crate::tree::{Attribute, Document, Element, Node};

/// Hard input limits enforced while parsing — the defense against hostile
/// documents (stack-overflow nesting, entity floods, oversized payloads).
/// Violations surface as structured [`ParseError`]s, never as crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum element nesting depth.
    pub max_depth: usize,
    /// Maximum input length in bytes (checked before parsing starts).
    pub max_input_bytes: usize,
    /// Maximum number of entity references in the document.
    pub max_entity_expansions: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            // Deep enough for any real document; shallow enough that the
            // recursive descent fits comfortably in a small thread stack.
            max_depth: 256,
            max_input_bytes: 256 << 20,
            max_entity_expansions: 1 << 20,
        }
    }
}

/// Parse a complete XML document from a string, under the default
/// [`ParseLimits`].
pub fn parse(input: &str) -> Result<Document, ParseError> {
    parse_with_limits(input, &ParseLimits::default())
}

/// Parse a complete XML document under explicit [`ParseLimits`].
pub fn parse_with_limits(input: &str, limits: &ParseLimits) -> Result<Document, ParseError> {
    if input.len() > limits.max_input_bytes {
        return Err(ParseError {
            position: Position::start(),
            kind: ParseErrorKind::InputTooLarge {
                limit: limits.max_input_bytes,
                actual: input.len(),
            },
        });
    }
    let mut p = Parser::new(input, *limits);
    p.skip_prolog()?;
    let root = match p.parse_element()? {
        Some(root) => root,
        None => return Err(p.error(ParseErrorKind::MissingRoot)),
    };
    p.skip_misc();
    if !p.at_eof() {
        return Err(p.error(ParseErrorKind::TrailingContent));
    }
    Ok(Document::new(root))
}

struct Parser<'a> {
    input: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    limits: ParseLimits,
    depth: usize,
    entities: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, limits: ParseLimits) -> Self {
        Parser {
            input: src.as_bytes(),
            src,
            pos: 0,
            line: 1,
            col: 1,
            limits,
            depth: 0,
            entities: 0,
        }
    }

    fn position(&self) -> Position {
        Position {
            offset: self.pos,
            line: self.line,
            column: self.col,
        }
    }

    fn error(&self, kind: ParseErrorKind) -> ParseError {
        ParseError {
            position: self.position(),
            kind,
        }
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Skip the XML declaration, DOCTYPE, comments and PIs before the root.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_until("?>", "reading a processing instruction")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->", "reading a comment")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skip trailing comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                if self.skip_until("-->", "reading a comment").is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self
                    .skip_until("?>", "reading a processing instruction")
                    .is_err()
                {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_until(&mut self, end: &str, ctx: &'static str) -> Result<(), ParseError> {
        while !self.at_eof() {
            if self.starts_with(end) {
                self.bump_n(end.len());
                return Ok(());
            }
            self.bump();
        }
        Err(self.error(ParseErrorKind::UnexpectedEof(ctx)))
    }

    /// Skip `<!DOCTYPE ... >`, including a bracketed internal subset.
    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        self.bump_n("<!DOCTYPE".len());
        let mut depth: i32 = 0;
        while let Some(b) = self.peek() {
            match b {
                b'[' => depth += 1,
                b']' => depth -= 1,
                b'>' if depth <= 0 => {
                    self.bump();
                    return Ok(());
                }
                _ => {}
            }
            self.bump();
        }
        Err(self.error(ParseErrorKind::UnexpectedEof("reading DOCTYPE")))
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => {
                self.bump();
            }
            _ => return Err(self.error(ParseErrorKind::BadName)),
        }
        while matches!(self.peek(), Some(b) if is_name_char(b)) {
            self.bump();
        }
        Ok(self.src[start..self.pos].to_string())
    }

    /// Parse one element starting at `<name ...`. Returns `None` if the
    /// cursor is not at an element start.
    fn parse_element(&mut self) -> Result<Option<Element>, ParseError> {
        if self.peek() != Some(b'<') {
            return Ok(None);
        }
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            return Err(self.error(ParseErrorKind::TooDeep {
                limit: self.limits.max_depth,
            }));
        }
        self.bump(); // consume '<'
        let name = self.parse_name()?;
        let mut element = Element::new(name);
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    self.parse_content(&mut element)?;
                    self.depth -= 1;
                    return Ok(Some(element));
                }
                Some(b'/') => {
                    self.bump();
                    if self.peek() != Some(b'>') {
                        return Err(self.error(ParseErrorKind::UnexpectedChar {
                            found: self.peek().map(|b| b as char).unwrap_or('\0'),
                            expected: "'>' after '/'",
                        }));
                    }
                    self.bump();
                    self.depth -= 1;
                    return Ok(Some(element));
                }
                Some(b) if is_name_start(b) => {
                    let attr = self.parse_attribute()?;
                    if element.attributes.iter().any(|a| a.name == attr.name) {
                        return Err(self.error(ParseErrorKind::DuplicateAttribute(attr.name)));
                    }
                    element.attributes.push(attr);
                }
                Some(b) => {
                    return Err(self.error(ParseErrorKind::UnexpectedChar {
                        found: b as char,
                        expected: "attribute name, '>', or '/>'",
                    }))
                }
                None => {
                    return Err(self.error(ParseErrorKind::UnexpectedEof("reading a start tag")))
                }
            }
        }
    }

    fn parse_attribute(&mut self) -> Result<Attribute, ParseError> {
        let name = self.parse_name()?;
        self.skip_whitespace();
        if self.peek() != Some(b'=') {
            return Err(self.error(ParseErrorKind::UnexpectedChar {
                found: self.peek().map(|b| b as char).unwrap_or('\0'),
                expected: "'=' in attribute",
            }));
        }
        self.bump();
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            other => {
                return Err(self.error(ParseErrorKind::UnexpectedChar {
                    found: other.map(|b| b as char).unwrap_or('\0'),
                    expected: "quoted attribute value",
                }))
            }
        };
        self.bump();
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(q) if q == quote => {
                    self.bump();
                    break;
                }
                Some(b'&') => value.push(self.parse_entity()?),
                Some(_) => {
                    let c = self.next_char()?;
                    value.push(c);
                }
                None => {
                    return Err(
                        self.error(ParseErrorKind::UnexpectedEof("reading an attribute value"))
                    )
                }
            }
        }
        Ok(Attribute { name, value })
    }

    /// Parse element content up to and including the matching close tag.
    fn parse_content(&mut self, element: &mut Element) -> Result<(), ParseError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(self.error(ParseErrorKind::UnexpectedEof("reading element content")))
                }
                Some(b'<') => {
                    if self.starts_with("</") {
                        flush_text(&mut text, element);
                        self.bump_n(2);
                        let close = self.parse_name()?;
                        if close != element.name {
                            return Err(self.error(ParseErrorKind::MismatchedClosingTag {
                                open: element.name.clone(),
                                close,
                            }));
                        }
                        self.skip_whitespace();
                        if self.peek() != Some(b'>') {
                            return Err(self.error(ParseErrorKind::UnexpectedChar {
                                found: self.peek().map(|b| b as char).unwrap_or('\0'),
                                expected: "'>' in closing tag",
                            }));
                        }
                        self.bump();
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.skip_until("-->", "reading a comment")?;
                    } else if self.starts_with("<![CDATA[") {
                        self.bump_n("<![CDATA[".len());
                        let start = self.pos;
                        self.skip_until("]]>", "reading a CDATA section")?;
                        text.push_str(&self.src[start..self.pos - 3]);
                    } else if self.starts_with("<?") {
                        self.skip_until("?>", "reading a processing instruction")?;
                    } else {
                        flush_text(&mut text, element);
                        let child = self
                            .parse_element()?
                            // lint: allow(no-unwrap-in-lib) — the peeked '<' guarantees parse_element yields an element
                            .expect("peeked '<' guarantees an element start");
                        element.children.push(Node::Element(child));
                    }
                }
                Some(b'&') => text.push(self.parse_entity()?),
                Some(_) => {
                    let c = self.next_char()?;
                    text.push(c);
                }
            }
        }
    }

    fn parse_entity(&mut self) -> Result<char, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.entities += 1;
        if self.entities > self.limits.max_entity_expansions {
            return Err(self.error(ParseErrorKind::TooManyEntities {
                limit: self.limits.max_entity_expansions,
            }));
        }
        self.bump();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                let name = &self.src[start..self.pos];
                self.bump();
                return resolve_entity(name)
                    .ok_or_else(|| self.error(ParseErrorKind::BadEntity(name.to_string())));
            }
            if self.pos - start > 16 {
                break;
            }
            self.bump();
        }
        Err(self.error(ParseErrorKind::BadEntity(
            self.src[start..self.pos].to_string(),
        )))
    }

    /// Consume one full (possibly multi-byte) character.
    fn next_char(&mut self) -> Result<char, ParseError> {
        let c = self.src[self.pos..]
            .chars()
            .next()
            .ok_or_else(|| self.error(ParseErrorKind::UnexpectedEof("reading text")))?;
        self.bump_n(c.len_utf8());
        Ok(c)
    }
}

fn flush_text(text: &mut String, element: &mut Element) {
    if !text.trim().is_empty() {
        element.children.push(Node::Text(std::mem::take(text)));
    } else {
        text.clear();
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ParseErrorKind;

    #[test]
    fn parses_simple_document() {
        let doc = parse("<a><b>hi</b><b>ho</b></a>").unwrap();
        assert_eq!(doc.root.name, "a");
        assert_eq!(doc.root.children_named("b").count(), 2);
        assert_eq!(doc.root.first_child("b").unwrap().text(), "hi");
    }

    #[test]
    fn parses_attributes_and_self_closing() {
        let doc = parse(r#"<show type="Movie" year='1993'><empty/></show>"#).unwrap();
        assert_eq!(doc.root.attribute("type"), Some("Movie"));
        assert_eq!(doc.root.attribute("year"), Some("1993"));
        assert!(doc.root.first_child("empty").unwrap().is_leaf());
    }

    #[test]
    fn resolves_entities_in_text_and_attributes() {
        let doc = parse(r#"<a t="&lt;x&gt;">a &amp; b &#65;</a>"#).unwrap();
        assert_eq!(doc.root.attribute("t"), Some("<x>"));
        assert_eq!(doc.root.text(), "a & b A");
    }

    #[test]
    fn skips_prolog_doctype_comments_and_pis() {
        let src = r#"<?xml version="1.0"?>
            <!DOCTYPE imdb [ <!ELEMENT imdb (show*)> ]>
            <!-- a comment -->
            <imdb><?pi data?><!-- inner --><show/></imdb>
            <!-- trailing -->"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.root.name, "imdb");
        assert_eq!(doc.root.child_elements().count(), 1);
    }

    #[test]
    fn cdata_is_literal_text() {
        let doc = parse("<a><![CDATA[x < y && z]]></a>").unwrap();
        assert_eq!(doc.root.text(), "x < y && z");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.root.children.len(), 2);
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::MismatchedClosingTag { .. }
        ));
    }

    #[test]
    fn trailing_content_is_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TrailingContent));
    }

    #[test]
    fn missing_root_is_rejected() {
        let err = parse("   ").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MissingRoot));
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn unknown_entity_is_rejected() {
        let err = parse("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadEntity(_)));
    }

    #[test]
    fn eof_inside_tag_is_reported() {
        let err = parse("<a><b>text").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn line_and_column_are_tracked() {
        let err = parse("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(err.position.line, 2);
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let depth = 10_000;
        let src = "<a>".repeat(depth) + &"</a>".repeat(depth);
        let err = parse(&src).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TooDeep { limit: 256 }));
    }

    #[test]
    fn nesting_under_the_limit_parses() {
        let limits = ParseLimits::default();
        let depth = limits.max_depth;
        let src = "<a>".repeat(depth) + &"</a>".repeat(depth);
        assert!(parse_with_limits(&src, &limits).is_ok());
    }

    #[test]
    fn oversized_input_is_rejected_upfront() {
        let limits = ParseLimits {
            max_input_bytes: 64,
            ..Default::default()
        };
        let src = format!("<a>{}</a>", "x".repeat(100));
        let err = parse_with_limits(&src, &limits).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::InputTooLarge { limit: 64, .. }
        ));
    }

    #[test]
    fn entity_flood_is_rejected() {
        let limits = ParseLimits {
            max_entity_expansions: 10,
            ..Default::default()
        };
        let src = format!("<a>{}</a>", "&amp;".repeat(11));
        let err = parse_with_limits(&src, &limits).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::TooManyEntities { limit: 10 }
        ));
        let ok = format!("<a>{}</a>", "&amp;".repeat(10));
        assert!(parse_with_limits(&ok, &limits).is_ok());
    }

    #[test]
    fn utf8_text_round_trips() {
        let doc = parse("<aka>Die unheimlichen Fälle — «déjà vu»</aka>").unwrap();
        assert_eq!(doc.root.text(), "Die unheimlichen Fälle — «déjà vu»");
    }
}
