//! XML data statistics, keyed by *label paths* from the document root —
//! the `STcnt` / `STsize` / `STbase` statistics of the paper's Appendix A.
//!
//! Statistics are the third LegoDB input (next to the schema and the query
//! workload). They can be harvested from a sample document with
//! [`Statistics::collect`], or stated directly (as the paper does in its
//! appendix) with the builder methods. The p-schema layer folds them into
//! the physical schema, and the `rel(ps)` mapping translates them into
//! relational catalog statistics (table cardinalities, column widths,
//! min/max, distinct counts).

use crate::error::ParseError;
use crate::events::{tree_events, Event};
use crate::tree::Document;
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// A label path from the document root, e.g. `imdb/show/aka`.
/// Attribute steps are spelled `@name`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Path(pub Vec<String>);

impl Path {
    /// Build a path from string-like steps.
    pub fn new<I, S>(steps: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Path(steps.into_iter().map(Into::into).collect())
    }

    /// The path one step shorter (the parent element's path), if any.
    pub fn parent(&self) -> Option<Path> {
        if self.0.len() <= 1 {
            None
        } else {
            Some(Path(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Extend with one more step.
    pub fn child(&self, step: impl Into<String>) -> Path {
        let mut v = self.0.clone();
        v.push(step.into());
        Path(v)
    }

    /// The final step, if the path is non-empty.
    pub fn last(&self) -> Option<&str> {
        self.0.last().map(String::as_str)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("/"))
    }
}

impl<S: Into<String> + Clone> From<&[S]> for Path {
    fn from(steps: &[S]) -> Self {
        Path(steps.iter().cloned().map(Into::into).collect())
    }
}

/// Statistics recorded for one label path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathStat {
    /// Total number of occurrences in the dataset (`STcnt`).
    pub count: Option<u64>,
    /// Average size in bytes of the text content (`STsize`).
    pub avg_size: Option<f64>,
    /// Minimum numeric value (`STbase` first component).
    pub min: Option<i64>,
    /// Maximum numeric value (`STbase` second component).
    pub max: Option<i64>,
    /// Number of distinct values (`STbase` third component, or the
    /// `#distincts` annotation on strings).
    pub distinct: Option<u64>,
}

/// A set of per-path statistics for a dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Statistics {
    entries: BTreeMap<Path, PathStat>,
}

impl Statistics {
    /// An empty statistics set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a total occurrence count for a path (`STcnt`).
    pub fn set_count<S: Into<String> + Clone>(&mut self, path: &[S], count: u64) -> &mut Self {
        self.entry(path).count = Some(count);
        self
    }

    /// Record an average text size in bytes for a path (`STsize`).
    pub fn set_size<S: Into<String> + Clone>(&mut self, path: &[S], avg_size: f64) -> &mut Self {
        self.entry(path).avg_size = Some(avg_size);
        self
    }

    /// Record numeric min/max and a distinct-value count (`STbase`).
    pub fn set_base<S: Into<String> + Clone>(
        &mut self,
        path: &[S],
        min: i64,
        max: i64,
        distinct: u64,
    ) -> &mut Self {
        let e = self.entry(path);
        e.min = Some(min);
        e.max = Some(max);
        e.distinct = Some(distinct);
        self
    }

    /// Record a distinct-value count for a (string-valued) path.
    pub fn set_distinct<S: Into<String> + Clone>(
        &mut self,
        path: &[S],
        distinct: u64,
    ) -> &mut Self {
        self.entry(path).distinct = Some(distinct);
        self
    }

    fn entry<S: Into<String> + Clone>(&mut self, path: &[S]) -> &mut PathStat {
        self.entries.entry(Path::from(path)).or_default()
    }

    /// The statistics for an exact path, if recorded.
    pub fn get<S: Into<String> + Clone>(&self, path: &[S]) -> Option<&PathStat> {
        self.entries.get(&Path::from(path))
    }

    /// The statistics for a [`Path`] key, if recorded.
    pub fn get_path(&self, path: &Path) -> Option<&PathStat> {
        self.entries.get(path)
    }

    /// Occurrence count for a path.
    pub fn count<S: Into<String> + Clone>(&self, path: &[S]) -> Option<u64> {
        self.get(path).and_then(|s| s.count)
    }

    /// Average text size for a path.
    pub fn avg_size<S: Into<String> + Clone>(&self, path: &[S]) -> Option<f64> {
        self.get(path).and_then(|s| s.avg_size)
    }

    /// Average number of occurrences of `path` per occurrence of its parent.
    /// Falls back to `1.0` when either count is unknown.
    pub fn avg_per_parent(&self, path: &Path) -> f64 {
        let Some(child_count) = self.get_path(path).and_then(|s| s.count) else {
            return 1.0;
        };
        let parent_count = path
            .parent()
            .and_then(|p| self.get_path(&p))
            .and_then(|s| s.count)
            .unwrap_or(1);
        if parent_count == 0 {
            0.0
        } else {
            child_count as f64 / parent_count as f64
        }
    }

    /// Iterate over all `(path, stat)` entries in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&Path, &PathStat)> {
        self.entries.iter()
    }

    /// Number of paths with recorded statistics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no statistics are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Harvest statistics from a sample document: per-path occurrence
    /// counts, average text sizes of leaf elements and attributes, numeric
    /// min/max where every value parses as an integer, and distinct-value
    /// counts (exact up to [`DISTINCT_CAP`] values, saturating after).
    ///
    /// Implemented as a fold over the document's event stream; see
    /// [`Statistics::collect_stream`] for harvesting straight off a pull
    /// parser without materializing a tree.
    pub fn collect(doc: &Document) -> Statistics {
        let mut fold = Fold::default();
        for event in tree_events(doc) {
            fold.feed(event);
        }
        fold.finish()
    }

    /// Harvest statistics from a (fallible) event stream, e.g.
    /// [`crate::events::events_with_limits`]. Memory use is bounded by the
    /// number of distinct label paths plus the open-element stack — the
    /// document itself is never materialized.
    pub fn collect_stream<'a, I>(events: I) -> Result<Statistics, ParseError>
    where
        I: IntoIterator<Item = Result<Event<'a>, ParseError>>,
    {
        let mut fold = Fold::default();
        for event in events {
            fold.feed(event?);
        }
        Ok(fold.finish())
    }
}

/// The streaming statistics fold: one frame per open element, one
/// accumulator per label path.
#[derive(Default)]
struct Fold {
    acc: BTreeMap<Path, Accum>,
    path: Vec<String>,
    frames: Vec<Frame>,
}

#[derive(Default)]
struct Frame {
    has_child_elements: bool,
    text: String,
}

impl Fold {
    fn feed(&mut self, event: Event<'_>) {
        match event {
            Event::StartElement { name, attributes } => {
                if let Some(parent) = self.frames.last_mut() {
                    parent.has_child_elements = true;
                }
                self.path.push(name.into_owned());
                self.acc.entry(Path(self.path.clone())).or_default().count += 1;
                for a in &attributes {
                    self.path.push(format!("@{}", a.name));
                    let entry = self.acc.entry(Path(self.path.clone())).or_default();
                    entry.count += 1;
                    entry.observe_value(&a.value);
                    self.path.pop();
                }
                self.frames.push(Frame::default());
            }
            Event::Text(t) => {
                if let Some(frame) = self.frames.last_mut() {
                    frame.text.push_str(&t);
                }
            }
            Event::EndElement { .. } => {
                let Some(frame) = self.frames.pop() else {
                    return;
                };
                // Leaf scalar content: only elements without element
                // children contribute a text observation (`Element::text`
                // semantics: direct text concatenated, then trimmed).
                if !frame.has_child_elements {
                    let text = frame.text.trim();
                    if !text.is_empty() {
                        self.acc
                            .entry(Path(self.path.clone()))
                            .or_default()
                            .observe_value(text);
                    }
                }
                self.path.pop();
            }
        }
    }

    fn finish(self) -> Statistics {
        let mut stats = Statistics::new();
        for (path, a) in self.acc {
            let e = stats.entries.entry(path).or_default();
            e.count = Some(a.count);
            if a.text_values > 0 {
                e.avg_size = Some(a.total_text_len as f64 / a.text_values as f64);
                e.distinct = Some(a.distinct.len() as u64);
                if a.all_numeric {
                    e.min = a.min;
                    e.max = a.max;
                }
            }
        }
        stats
    }
}

/// Cap on exact distinct-value tracking during collection; beyond this the
/// distinct count saturates (it stops growing), which keeps harvesting
/// memory-bounded on large datasets.
pub const DISTINCT_CAP: usize = 1 << 16;

#[derive(Default)]
struct Accum {
    count: u64,
    total_text_len: u64,
    text_values: u64,
    distinct: HashSet<String>,
    all_numeric: bool,
    min: Option<i64>,
    max: Option<i64>,
    seen_value: bool,
}

impl Accum {
    fn observe_value(&mut self, value: &str) {
        self.total_text_len += value.len() as u64;
        self.text_values += 1;
        if self.distinct.len() < DISTINCT_CAP {
            self.distinct.insert(value.to_string());
        }
        match value.trim().parse::<i64>() {
            Ok(n) => {
                if !self.seen_value {
                    self.all_numeric = true;
                }
                if self.all_numeric {
                    self.min = Some(self.min.map_or(n, |m| m.min(n)));
                    self.max = Some(self.max.map_or(n, |m| m.max(n)));
                }
            }
            Err(_) => {
                self.all_numeric = false;
                self.min = None;
                self.max = None;
            }
        }
        self.seen_value = true;
    }
}

impl fmt::Display for Statistics {
    /// Render in the paper's Appendix A notation, one entry per line:
    /// `(["imdb";"show"], STcnt(34798)); (...)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (path, stat) in &self.entries {
            let quoted: Vec<String> = path.0.iter().map(|s| format!("{s:?}")).collect();
            let key = format!("[{}]", quoted.join(";"));
            if let Some(c) = stat.count {
                writeln!(f, "({key}, STcnt({c}));")?;
            }
            if let Some(s) = stat.avg_size {
                writeln!(f, "({key}, STsize({s:.0}));")?;
            }
            if let (Some(min), Some(max), Some(d)) = (stat.min, stat.max, stat.distinct) {
                writeln!(f, "({key}, STbase({min},{max},{d}));")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn sample() -> Document {
        parse(
            r#"<imdb>
                 <show type="Movie"><title>Fugitive, The</title><year>1993</year>
                   <aka>Auf der Flucht</aka><aka>Le Fugitif</aka></show>
                 <show type="TV series"><title>X Files, The</title><year>1994</year>
                   <aka>Aux frontieres du Reel</aka></show>
               </imdb>"#,
        )
        .unwrap()
    }

    #[test]
    fn counts_per_path() {
        let s = Statistics::collect(&sample());
        assert_eq!(s.count(&["imdb"]), Some(1));
        assert_eq!(s.count(&["imdb", "show"]), Some(2));
        assert_eq!(s.count(&["imdb", "show", "aka"]), Some(3));
        assert_eq!(s.count(&["imdb", "show", "@type"]), Some(2));
    }

    #[test]
    fn numeric_leaves_get_min_max() {
        let s = Statistics::collect(&sample());
        let year = s.get(&["imdb", "show", "year"]).unwrap();
        assert_eq!(year.min, Some(1993));
        assert_eq!(year.max, Some(1994));
        assert_eq!(year.distinct, Some(2));
    }

    #[test]
    fn string_leaves_get_avg_size_not_min_max() {
        let s = Statistics::collect(&sample());
        let title = s.get(&["imdb", "show", "title"]).unwrap();
        assert!(title.avg_size.unwrap() > 0.0);
        assert_eq!(title.min, None);
        assert_eq!(title.distinct, Some(2));
    }

    #[test]
    fn avg_per_parent_divides_counts() {
        let s = Statistics::collect(&sample());
        let aka = Path::new(["imdb", "show", "aka"]);
        assert!((s.avg_per_parent(&aka) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn avg_per_parent_defaults_to_one_when_unknown() {
        let s = Statistics::new();
        assert_eq!(s.avg_per_parent(&Path::new(["a", "b"])), 1.0);
    }

    #[test]
    fn builder_and_accessors_round_trip() {
        let mut s = Statistics::new();
        s.set_count(&["imdb", "show"], 34798)
            .set_size(&["imdb", "show", "title"], 50.0)
            .set_base(&["imdb", "show", "year"], 1800, 2100, 300);
        assert_eq!(s.count(&["imdb", "show"]), Some(34798));
        assert_eq!(s.avg_size(&["imdb", "show", "title"]), Some(50.0));
        let y = s.get(&["imdb", "show", "year"]).unwrap();
        assert_eq!(
            (y.min, y.max, y.distinct),
            (Some(1800), Some(2100), Some(300))
        );
    }

    #[test]
    fn display_uses_appendix_a_notation() {
        let mut s = Statistics::new();
        s.set_count(&["imdb", "show"], 42);
        let text = s.to_string();
        assert!(text.contains(r#"(["imdb";"show"], STcnt(42));"#), "{text}");
    }

    #[test]
    fn mixed_numeric_and_text_values_disable_min_max() {
        let doc = parse("<r><v>12</v><v>abc</v></r>").unwrap();
        let s = Statistics::collect(&doc);
        let v = s.get(&["r", "v"]).unwrap();
        assert_eq!(v.min, None);
        assert_eq!(v.distinct, Some(2));
    }

    #[test]
    fn path_helpers() {
        let p = Path::new(["a", "b", "c"]);
        assert_eq!(p.to_string(), "a/b/c");
        assert_eq!(p.parent().unwrap().to_string(), "a/b");
        assert_eq!(p.child("d").to_string(), "a/b/c/d");
        assert_eq!(p.last(), Some("c"));
        assert_eq!(Path::new(["a"]).parent(), None);
    }
}
