//! The XML document object model: [`Document`], [`Element`], [`Node`],
//! [`Attribute`], plus navigation helpers used by the statistics collector,
//! the validator, and the shredder.

/// A well-formed XML document: exactly one root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The document element.
    pub root: Element,
}

impl Document {
    /// Wrap a root element into a document.
    pub fn new(root: Element) -> Self {
        Document { root }
    }

    /// Total number of element nodes in the document (root included).
    pub fn element_count(&self) -> usize {
        fn walk(e: &Element) -> usize {
            1 + e.child_elements().map(walk).sum::<usize>()
        }
        walk(&self.root)
    }
}

/// An element: a name, attributes, and an ordered list of child nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// The tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<Attribute>,
    /// Children (elements and text) in document order.
    pub children: Vec<Node>,
}

/// A name/value attribute pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (without quotes).
    pub name: String,
    /// Attribute value, already entity-resolved.
    pub value: String,
}

/// A child of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// A run of character data, already entity-resolved.
    Text(String),
}

impl Node {
    /// The contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// The contained text, if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            Node::Element(_) => None,
        }
    }
}

impl Element {
    /// An element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: an element whose only child is a text node.
    ///
    /// This is how scalar leaves such as `<title>The Fugitive</title>` are
    /// constructed by the data generator and the publishing path.
    pub fn text_leaf(name: impl Into<String>, text: impl Into<String>) -> Self {
        Element::new(name).with_text(text)
    }

    /// Builder-style: add an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push(Attribute {
            name: name.into(),
            value: value.into(),
        });
        self
    }

    /// Builder-style: append a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: append a text node.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Iterate over child elements, skipping text nodes.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// The first child element with the given name, if any.
    pub fn first_child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// The value of the named attribute, if present.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// The concatenation of all *direct* text children (not descendants),
    /// trimmed. This is the "scalar content" of a leaf element.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for t in self.children.iter().filter_map(Node::as_text) {
            out.push_str(t);
        }
        out.trim().to_string()
    }

    /// True if this element has no element children (only text, or nothing).
    pub fn is_leaf(&self) -> bool {
        self.child_elements().next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("show")
            .with_attr("type", "Movie")
            .with_child(Element::text_leaf("title", "The Fugitive"))
            .with_child(Element::text_leaf("year", "1993"))
            .with_child(Element::text_leaf("aka", "Auf der Flucht"))
            .with_child(Element::text_leaf("aka", "Le Fugitif"))
    }

    #[test]
    fn builder_constructs_expected_shape() {
        let e = sample();
        assert_eq!(e.name, "show");
        assert_eq!(e.attributes.len(), 1);
        assert_eq!(e.children.len(), 4);
    }

    #[test]
    fn children_named_filters_by_tag() {
        let e = sample();
        assert_eq!(e.children_named("aka").count(), 2);
        assert_eq!(e.children_named("title").count(), 1);
        assert_eq!(e.children_named("nonexistent").count(), 0);
    }

    #[test]
    fn first_child_and_attribute_lookup() {
        let e = sample();
        assert_eq!(e.first_child("year").unwrap().text(), "1993");
        assert_eq!(e.attribute("type"), Some("Movie"));
        assert_eq!(e.attribute("missing"), None);
    }

    #[test]
    fn text_concatenates_and_trims_direct_text() {
        let e = Element::new("x")
            .with_text("  a ")
            .with_child(Element::new("y"))
            .with_text("b  ");
        assert_eq!(e.text(), "a b");
    }

    #[test]
    fn leaf_detection() {
        assert!(Element::text_leaf("t", "x").is_leaf());
        assert!(!sample().is_leaf());
    }

    #[test]
    fn element_count_walks_the_tree() {
        let doc = Document::new(Element::new("imdb").with_child(sample()));
        // imdb + show + title + year + 2×aka
        assert_eq!(doc.element_count(), 6);
    }
}
