//! Regenerates one of the paper's evaluation artifacts; see DESIGN.md §6.
fn main() {
    print!("{}", legodb_bench::harness::tab02());
}
