//! Regenerates one of the paper's evaluation artifacts; see DESIGN.md §6.
//! Wall time is recorded to `$LEGODB_BENCH_JSON` when set.

#![forbid(unsafe_code)]
fn main() {
    print!(
        "{}",
        legodb_bench::harness::timed_experiment(
            "validate_cost_model",
            legodb_bench::harness::validate_cost_model
        )
    );
}
