//! The search-at-scale experiment: greedy search over generated
//! mega-schemas at 1×/10×/100× IMDB-equivalent size, sequential vs
//! chunked vs work-stealing candidate evaluation (DESIGN.md §13).
//! JSON-lines records — wall clock, steal counts, worker occupancy, and
//! per-scale speedup summaries — land in `BENCH_search.json`, or the
//! path in `$LEGODB_BENCH_JSON` when set.

#![forbid(unsafe_code)]
fn main() {
    print!(
        "{}",
        legodb_bench::harness::timed_experiment(
            "search_scale",
            legodb_bench::harness::search_scale
        )
    );
}
