//! The incremental-costing experiment: greedy-si with memoization on vs.
//! off (DESIGN.md §11). JSON-lines records — wall clock, counters, cache
//! hit rate, speedup — land in `BENCH_search.json`, or the path in
//! `$LEGODB_BENCH_JSON` when set.

#![forbid(unsafe_code)]
fn main() {
    print!(
        "{}",
        legodb_bench::harness::timed_experiment(
            "search_incremental",
            legodb_bench::harness::search_incremental
        )
    );
}
