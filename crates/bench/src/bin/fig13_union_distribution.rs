//! Regenerates one of the paper's evaluation artifacts; see DESIGN.md §6.
//! Wall time is recorded to `$LEGODB_BENCH_JSON` when set.

#![forbid(unsafe_code)]
fn main() {
    print!(
        "{}",
        legodb_bench::harness::timed_experiment("fig13", legodb_bench::harness::fig13)
    );
}
