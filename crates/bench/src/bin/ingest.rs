//! The streaming-ingest experiment: shred a generated IMDB corpus via the
//! DOM path (parse + walk) and the event-pull streaming path, verify the
//! outputs are bit-identical, and load the rows durably through batched
//! WAL appends (one fsync per batch) — DESIGN.md §15. JSON-lines records
//! (throughput, peak resident elements, `rows_match`, `fsyncs_per_batch`,
//! and the gated `streaming_speedup`) land in `BENCH_ingest.json`, or the
//! path in `$LEGODB_BENCH_JSON` when set.

#![forbid(unsafe_code)]
fn main() {
    print!(
        "{}",
        legodb_bench::harness::timed_experiment("ingest", legodb_bench::harness::ingest)
    );
}
