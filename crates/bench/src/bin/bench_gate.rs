//! `bench-gate`: enforce named thresholds over JSON-lines bench records.
//!
//! ```text
//! bench-gate target/ci/BENCH_search.json \
//!     --where experiment=search_incremental \
//!     --require hit_rate>0 --require speedup>=1.5
//! ```
//!
//! Records are read with `legodb_util::json`; the *last* record matching
//! every `--where key=value` filter is the one gated (JSON-lines files
//! are append-only, so the last match is the most recent run). Each
//! `--require key<op>value` (`>`, `>=`, `<`, `<=`, `==`, `!=`) is
//! checked against that record; on any failure the observed vs required
//! values are printed and the exit code is non-zero. A missing file,
//! missing record, or missing field is also a failure — a gate that
//! cannot find its metric must not pass silently.

#![forbid(unsafe_code)]

use legodb_util::json::{parse_lines, Value};
use std::process::ExitCode;

struct Filter {
    key: String,
    value: String,
}

enum Op {
    Gt,
    Ge,
    Lt,
    Le,
    Eq,
    Ne,
}

impl Op {
    fn name(&self) -> &'static str {
        match self {
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Eq => "==",
            Op::Ne => "!=",
        }
    }

    fn holds(&self, observed: f64, required: f64) -> bool {
        match self {
            Op::Gt => observed > required,
            Op::Ge => observed >= required,
            Op::Lt => observed < required,
            Op::Le => observed <= required,
            Op::Eq => observed == required,
            Op::Ne => observed != required,
        }
    }
}

struct Require {
    key: String,
    op: Op,
    value: f64,
    raw: String,
}

fn parse_require(expr: &str) -> Result<Require, String> {
    // Two-character operators first so ">=" does not lex as ">" + "=".
    for (symbol, op) in [
        (">=", Op::Ge),
        ("<=", Op::Le),
        ("==", Op::Eq),
        ("!=", Op::Ne),
        (">", Op::Gt),
        ("<", Op::Lt),
    ] {
        if let Some(at) = expr.find(symbol) {
            let key = expr[..at].trim();
            let rhs = expr[at + symbol.len()..].trim();
            if key.is_empty() {
                return Err(format!("requirement '{expr}' has an empty metric name"));
            }
            let value: f64 = rhs
                .parse()
                .map_err(|_| format!("requirement '{expr}': '{rhs}' is not a number"))?;
            return Ok(Require {
                key: key.to_string(),
                op,
                value,
                raw: expr.to_string(),
            });
        }
    }
    Err(format!(
        "requirement '{expr}' has no comparison operator (>, >=, <, <=, ==, !=)"
    ))
}

fn matches(record: &Value, filters: &[Filter]) -> bool {
    filters.iter().all(|f| match record.get(&f.key) {
        Some(Value::String(s)) => *s == f.value,
        Some(v) => match (v.as_f64(), f.value.parse::<f64>()) {
            (Some(a), Ok(b)) => a == b,
            _ => v.render() == f.value,
        },
        None => false,
    })
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut file = None;
    let mut filters = Vec::new();
    let mut requires = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--where" => {
                let spec = args.next().ok_or("--where needs key=value")?;
                let (key, value) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--where '{spec}' is not key=value"))?;
                filters.push(Filter {
                    key: key.to_string(),
                    value: value.to_string(),
                });
            }
            "--require" => {
                let expr = args.next().ok_or("--require needs an expression")?;
                requires.push(parse_require(&expr)?);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench-gate <records.json> [--where key=value]... [--require key<op>value]..."
                );
                return Ok(());
            }
            other if file.is_none() && !other.starts_with('-') => {
                file = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let file = file.ok_or("no records file given (usage: bench-gate <records.json> ...)")?;
    if requires.is_empty() {
        return Err("no --require given; a gate with nothing to enforce is a bug".into());
    }

    // Ambient authority enters at the CLI boundary: the argv path
    // becomes a DirHandle on its parent directory.
    let body = legodb_util::fs::DirHandle::open_containing(&file)
        .and_then(|(dir, name)| dir.read_to_string(&name))
        .map_err(|e| format!("cannot read {file}: {e} (did the bench stage run?)"))?;
    let records = parse_lines(&body).map_err(|e| format!("{file}: {e}"))?;
    let scope: String = filters
        .iter()
        .map(|f| format!(" {}={}", f.key, f.value))
        .collect();
    let record = records
        .iter()
        .rev()
        .find(|r| matches(r, &filters))
        .ok_or_else(|| {
            format!(
                "{file}: no record matches{scope} ({} records scanned)",
                records.len()
            )
        })?;

    let mut failures = Vec::new();
    for req in &requires {
        let observed = record.get(&req.key).and_then(Value::as_f64);
        match observed {
            None => failures.push(format!(
                "  {}: field missing or non-numeric in matched record (required {} {})",
                req.key,
                req.op.name(),
                req.value
            )),
            Some(x) if !req.op.holds(x, req.value) => failures.push(format!(
                "  {}: observed {x}, required {} {}",
                req.key,
                req.op.name(),
                req.value
            )),
            Some(x) => eprintln!("bench-gate: ok{scope} {} = {x} ({})", req.key, req.raw),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{file}: gate failed{scope}\n{}\nmatched record: {}",
            failures.join("\n"),
            record.render()
        ))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench-gate: {msg}");
            ExitCode::FAILURE
        }
    }
}
