//! The physical-layout experiment: greedy `set-layout` search picks the
//! column store for the analytic workload's tables and the row heap for
//! the point-lookup tables, and generated-data runs verify both builds
//! answer Q1–Q18 bit-identically — DESIGN.md §16. JSON-lines records
//! (`agg_chose_columnar`, `lookup_columnar_tables`, `results_match`, and
//! the gated `columnar_agg_speedup`) land in `BENCH_layout.json`, or the
//! path in `$LEGODB_BENCH_JSON` when set.

#![forbid(unsafe_code)]
fn main() {
    print!(
        "{}",
        legodb_bench::harness::timed_experiment("layout", legodb_bench::harness::layout)
    );
}
