//! The durability experiment: stream a shredded IMDB corpus into a
//! durable database (WAL append + fsync, midway checkpoint), then reopen
//! and verify the recovered state byte-for-byte (DESIGN.md §14).
//! JSON-lines records — WAL bytes, append MB/s, checkpoint and replay
//! wall clock, and the `replay_match` gate metric — land in
//! `BENCH_recovery.json`, or the path in `$LEGODB_BENCH_JSON` when set.

#![forbid(unsafe_code)]
fn main() {
    print!(
        "{}",
        legodb_bench::harness::timed_experiment("recovery", legodb_bench::harness::recovery)
    );
}
