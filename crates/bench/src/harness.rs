//! Shared experiment machinery: the paper's storage configurations, query
//! costing helpers, and markdown rendering. Each `fig*`/`tab*` function
//! returns the experiment's report as markdown; the binaries print it and
//! `all_experiments` assembles `EXPERIMENTS.md`.

use legodb_core::cost::pschema_cost;
use legodb_core::search::{greedy_search, SearchConfig, StartPoint};
use legodb_core::transform::{apply, Transformation};
use legodb_core::workload::Workload;
use legodb_core::LegoDb;
use legodb_imdb::queries::QUERIES;
use legodb_imdb::stats::with_review_split;
use legodb_imdb::{
    fig5_queries, generate_imdb, imdb_schema, lookup_workload, publish_workload, query,
    scaled_statistics, workload_w1, workload_w2, ScaleConfig,
};
use legodb_optimizer::OptimizerConfig;
use legodb_pschema::{derive_pschema, rel, shred, InlineStyle, PSchema};
use legodb_relational::Database;
use legodb_schema::mega::Occurrence;
use legodb_schema::{mega_schema, MegaConfig, MegaSchema, TypeName};
use legodb_util::fs::DirHandle;
use legodb_util::Scheduler;
use legodb_util::StdRng;
use legodb_xml::stats::Statistics;
use legodb_xquery::XQuery;
use std::fmt::Write as _;

/// Statistics scale used by the experiments (full Appendix A numbers).
pub const STATS_SCALE: f64 = 1.0;

/// The engine over the IMDB application with an arbitrary workload.
pub fn engine(workload: Workload) -> LegoDb {
    LegoDb::new(imdb_schema(), scaled_statistics(STATS_SCALE), workload)
}

/// Storage Map 1 (Figure 4(a)): ALL-INLINED — unions to options, then
/// maximal inlining.
pub fn map_all_inlined() -> PSchema {
    engine(Workload::new()).all_inlined_pschema()
}

/// Storage Map 2 (Figure 4(b)): ALL-INLINED with the review wildcard
/// materialized into NYT vs other sources.
pub fn map_wildcard_materialized() -> PSchema {
    let base = map_all_inlined();
    apply(
        &base,
        &Transformation::WildcardMaterialize {
            wildcard_type: TypeName::new("Review"),
            name: "nyt".into(),
        },
    )
    // lint: allow(no-unwrap-in-lib) — fixture transform on the compiled-in IMDB schema; a failure is a harness bug
    .expect("review wildcard materializes")
    .0
}

/// Storage Map 3 (Figure 4(c)): the Show union distributed into
/// Show_Part1 (movies) / Show_Part2 (TV).
pub fn map_union_distributed() -> PSchema {
    let e = engine(Workload::new());
    let base = e.initial_pschema(StartPoint::MaximallyInlined);
    apply(
        &base,
        &Transformation::UnionDistribute {
            in_type: TypeName::new("Show"),
        },
    )
    // lint: allow(no-unwrap-in-lib) — fixture transform on the compiled-in IMDB schema; a failure is a harness bug
    .expect("show union distributes")
    .0
}

/// Unweighted cost of one query on a configuration.
pub fn query_cost(pschema: &PSchema, stats: &Statistics, name: &str, q: &XQuery) -> f64 {
    let mut w = Workload::new();
    w.push(name, q.clone(), 1.0);
    pschema_cost(pschema, stats, &w, &OptimizerConfig::default())
        .map(|r| r.total)
        .unwrap_or(f64::INFINITY)
}

/// Weighted workload cost of a configuration.
pub fn workload_cost(pschema: &PSchema, stats: &Statistics, w: &Workload) -> f64 {
    pschema_cost(pschema, stats, w, &OptimizerConfig::default())
        .map(|r| r.total)
        .unwrap_or(f64::INFINITY)
}

/// Render a markdown table.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

fn fmt3(x: f64) -> String {
    format!("{x:.2}")
}

// ------------------------------------------------------------------ E1

/// Figure 6 (§2): normalized estimated costs of the four Figure 5 queries
/// and workloads W1/W2 across Storage Maps 1–3.
pub fn fig06() -> String {
    let stats = scaled_statistics(STATS_SCALE);
    let maps = [
        ("Map 1 (all-inlined)", map_all_inlined()),
        ("Map 2 (wildcard split)", map_wildcard_materialized()),
        ("Map 3 (union dist.)", map_union_distributed()),
    ];
    let queries = fig5_queries();
    let mut rows = Vec::new();
    let mut baseline: Vec<f64> = Vec::new();
    for (qi, (name, q)) in queries.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (mi, (_, map)) in maps.iter().enumerate() {
            let c = query_cost(map, &stats, name, q);
            if mi == 0 {
                baseline.push(c);
            }
            row.push(fmt3(c / baseline[qi]));
        }
        rows.push(row);
    }
    for (wname, w) in [("W1", workload_w1()), ("W2", workload_w2())] {
        let mut row = vec![wname.to_string()];
        let base = workload_cost(&maps[0].1, &stats, &w);
        for (_, map) in &maps {
            row.push(fmt3(workload_cost(map, &stats, &w) / base));
        }
        rows.push(row);
    }
    let mut out =
        String::from("## E1 — Figure 6: storage map comparison (costs normalized by Map 1)\n\n");
    out.push_str(&md_table(
        &[
            "Query",
            "Map 1 (Fig 4a)",
            "Map 2 (Fig 4b)",
            "Map 3 (Fig 4c)",
        ],
        &rows,
    ));
    out.push_str(
        "\nPaper shape: Map 2 wins review-heavy queries (Q1/W1-style), Map 3 wins \
         lookups and W2 (union distribution narrows Show), Map 1 never wins.\n",
    );
    out
}

// ------------------------------------------------------------------ E2

/// Figure 10 (§5.2): greedy-so vs greedy-si cost per iteration for the
/// lookup and publish workloads.
pub fn fig10() -> String {
    let schema = imdb_schema();
    let stats = scaled_statistics(STATS_SCALE);
    let mut out = String::from("## E2 — Figure 10: greedy convergence per iteration\n\n");
    for (wname, workload) in [
        ("lookup", lookup_workload()),
        ("publish", publish_workload()),
    ] {
        let mut rows = Vec::new();
        let mut columns: Vec<Vec<f64>> = Vec::new();
        for start in [StartPoint::MaximallyOutlined, StartPoint::MaximallyInlined] {
            let result = greedy_search(
                &schema,
                &stats,
                &workload,
                &SearchConfig {
                    start,
                    parallel: true,
                    ..Default::default()
                },
            )
            // lint: allow(no-unwrap-in-lib) — experiment harness: abort on a failed search is the right failure mode
            .expect("search succeeds");
            columns.push(result.trajectory.iter().map(|r| r.cost).collect());
        }
        let iterations = columns.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..iterations {
            rows.push(vec![
                i.to_string(),
                columns[0]
                    .get(i)
                    .map(|&c| fmt3(c))
                    .unwrap_or_else(|| "—".into()),
                columns[1]
                    .get(i)
                    .map(|&c| fmt3(c))
                    .unwrap_or_else(|| "—".into()),
            ]);
        }
        let _ = writeln!(out, "### {wname} workload\n");
        out.push_str(&md_table(&["Iteration", "greedy-so", "greedy-si"], &rows));
        out.push('\n');
    }
    out.push_str(
        "Paper shape: greedy-so starts much higher (every element its own table, \
         joins everywhere) and both strategies converge to similar final costs.\n",
    );
    out
}

// ------------------------------------------------------------------ E3

/// Figure 11 (§5.3): workload-sensitivity spectrum.
pub fn fig11() -> String {
    let schema = imdb_schema();
    let stats = scaled_statistics(STATS_SCALE);
    let lookup = lookup_workload();
    let publish = publish_workload();
    let grid: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();

    // Tune configurations for k = 0.25, 0.50, 0.75.
    let mut tuned = Vec::new();
    for k in [0.25, 0.50, 0.75] {
        let mix = lookup.mix(&publish, k);
        let result = greedy_search(
            &schema,
            &stats,
            &mix,
            &SearchConfig {
                parallel: true,
                ..Default::default()
            },
        )
        // lint: allow(no-unwrap-in-lib) — experiment harness: abort on a failed search is the right failure mode
        .expect("search succeeds");
        tuned.push((format!("C[{k:.2}]"), result.pschema));
    }
    tuned.push(("C[ALL-INLINED]".to_string(), map_all_inlined()));

    let mut rows = Vec::new();
    for &k in &grid {
        let mix = lookup.mix(&publish, k);
        let mut row = vec![format!("{k:.1}")];
        for (_, config) in &tuned {
            row.push(fmt3(workload_cost(config, &stats, &mix)));
        }
        // OPT: a fresh greedy search tuned for this k.
        let opt = greedy_search(
            &schema,
            &stats,
            &mix,
            &SearchConfig {
                parallel: true,
                ..Default::default()
            },
        )
        .map(|r| r.cost)
        .unwrap_or(f64::INFINITY);
        row.push(fmt3(opt));
        rows.push(row);
    }
    let mut out = String::from("## E3 — Figure 11: sensitivity to workload variation\n\n");
    out.push_str("k = fraction of lookup queries in the mix; cells are workload costs.\n\n");
    let headers: Vec<&str> = [
        "k",
        "C[0.25]",
        "C[0.50]",
        "C[0.75]",
        "C[ALL-INLINED]",
        "OPT",
    ]
    .to_vec();
    out.push_str(&md_table(&headers, &rows));
    out.push_str(
        "\nPaper shape: the tuned configurations hug OPT over wide regions and \
         cross at a small angle; ALL-INLINED is a constant factor worse across \
         the spectrum.\n",
    );
    out
}

// ------------------------------------------------------------------ E4

/// Figure 13 (§5.4): cost of the union-distributed configuration as a
/// percentage of the all-inlined configuration.
pub fn fig13() -> String {
    let stats = scaled_statistics(STATS_SCALE);
    let inlined = map_all_inlined();
    let distributed = map_union_distributed();
    let mut rows = Vec::new();
    for name in ["Q4", "Q5", "Q6", "Q7", "Q13", "Q16", "Q19"] {
        let q = query(name);
        let a = query_cost(&inlined, &stats, name, &q);
        let c = query_cost(&distributed, &stats, name, &q);
        rows.push(vec![name.to_string(), format!("{:.0}%", 100.0 * c / a)]);
    }
    let mut out = String::from(
        "## E4 — Figure 13: union distribution vs all-inlined (cost as % of all-inlined)\n\n",
    );
    out.push_str(&md_table(
        &["Query", "union-distributed / all-inlined"],
        &rows,
    ));
    out.push_str(
        "\nPaper shape: the union-transformed configuration is cheaper for every \
         query — including Q6, which touches both movie and TV fields. \
         Measured: confirmed for the selection queries (Q4–Q7, Q19, at 45–75%). \
         Deviations: Q13 (the six-way acted-and-directed join) and Q16 \
         (publish-all) come out more expensive under distribution in our model, \
         because every part statement re-scans the shared Aka/Review child \
         tables once per part — a consequence of compiling publishing into \
         independent per-chain SQL statements.\n",
    );
    out
}

// ------------------------------------------------------------------ E5

/// Figure 14 (§5.4): all-inlined vs repetition-split while the number of
/// akas grows.
pub fn fig14() -> String {
    let aka_lookup = Workload::from_sources([(
        "aka-lookup",
        r#"FOR $v IN document("imdbdata")/imdb/show, $a IN $v/aka
           WHERE $v/title = c1
           RETURN $a"#,
        1.0,
    )])
    // lint: allow(no-unwrap-in-lib) — appendix query literal; parse failure is a harness bug
    .expect("query parses");
    let publish_shows = Workload::from_sources([(
        "publish-shows",
        r#"FOR $s IN document("imdbdata")/imdb/show RETURN $s"#,
        1.0,
    )])
    // lint: allow(no-unwrap-in-lib) — appendix query literal; parse failure is a harness bug
    .expect("query parses");

    let mut out = String::from("## E5 — Figure 14: all-inlined vs repetition-split over #akas\n\n");
    let mut rows = Vec::new();
    for total_akas in [40_000u64, 80_000, 160_000, 320_000, 640_000] {
        // The paper's original schema has aka{1,10} (repetition split
        // needs min ≥ 1); annotate the repetition with the per-show
        // average so the split's positional effect (one aka moves inline,
        // the Aka table shrinks by one row per show) is countable.
        let avg = total_akas as f64 / 34_798.0;
        let schema_src = legodb_imdb::schema::IMDB_SCHEMA_SRC
            .replace("Aka{0,10}", &format!("Aka{{1,20}}<#{avg:.3}>"));
        // lint: allow(no-unwrap-in-lib) — schema variant built from the compiled-in constant; parse failure is a harness bug
        let schema = legodb_schema::parse_schema(&schema_src).expect("variant schema parses");
        let mut stats = scaled_statistics(STATS_SCALE);
        stats.set_count(&["imdb", "show", "aka"], total_akas);
        let e = LegoDb::new(schema.clone(), stats.clone(), Workload::new());
        let inlined = e.all_inlined_pschema();
        let split = apply(
            &e.initial_pschema(StartPoint::MaximallyInlined),
            &Transformation::RepetitionSplit {
                in_type: TypeName::new("Show"),
                target: TypeName::new("Aka"),
            },
        )
        // lint: allow(no-unwrap-in-lib) — fixture transform on the compiled-in IMDB schema; a failure is a harness bug
        .expect("aka repetition splits")
        .0;
        // Flatten the remaining union so the comparison isolates the
        // repetition change.
        let split = apply(
            &split,
            &Transformation::UnionToOptions {
                in_type: TypeName::new("Show"),
            },
        )
        .map(|(p, _)| p)
        .unwrap_or(split);
        let price = |w: &Workload, p: &PSchema| workload_cost(p, &stats, w);
        rows.push(vec![
            total_akas.to_string(),
            fmt3(price(&aka_lookup, &inlined)),
            fmt3(price(&aka_lookup, &split)),
            fmt3(price(&publish_shows, &inlined)),
            fmt3(price(&publish_shows, &split)),
        ]);
    }
    out.push_str(&md_table(
        &[
            "total akas",
            "lookup inlined",
            "lookup split",
            "publish inlined",
            "publish split",
        ],
        &rows,
    ));
    out.push_str(
        "\nPaper shape: the split reduces the Aka table's size; the cost \
         difference between the configurations shrinks as the total aka count \
         grows. Measured: the *relative* gap indeed converges toward zero with \
         scale, but in our model the split never wins outright — the split \
         schema answers aka queries from two places (the inlined first \
         occurrence and the residual table), and the extra union branch \
         outweighs the smaller Aka table. Documented deviation.\n",
    );
    out
}

// ------------------------------------------------------------------ E6

/// Table 2 (§5.4): all-inlined vs wildcard-materialized for
/// *find the NYT reviews of 1999 shows*, varying the NYT share.
pub fn tab02() -> String {
    let nyt_query = Workload::from_sources([(
        "nyt-1999",
        r#"FOR $v IN document("imdbdata")/imdb/show, $r IN $v/review
           WHERE $v/year = 1999
           RETURN $v/title, $r/nyt"#,
        1.0,
    )])
    // lint: allow(no-unwrap-in-lib) — appendix query literal; parse failure is a harness bug
    .expect("query parses");
    let mut out = String::from(
        "## E6 — Table 2: all-inlined vs wildcard-materialized (NYT review lookup)\n\n",
    );
    let mut rows = Vec::new();
    for total in [10_000u64, 100_000] {
        for pct in [0.5, 0.25, 0.125] {
            let stats = with_review_split(scaled_statistics(STATS_SCALE), total, pct);
            let e = LegoDb::new(imdb_schema(), stats.clone(), Workload::new());
            let inlined = e.all_inlined_pschema();
            let wild = apply(
                &inlined,
                &Transformation::WildcardMaterialize {
                    wildcard_type: TypeName::new("Review"),
                    name: "nyt".into(),
                },
            )
            // lint: allow(no-unwrap-in-lib) — fixture transform on the compiled-in IMDB schema; a failure is a harness bug
            .expect("review wildcard materializes")
            .0;
            rows.push(vec![
                total.to_string(),
                format!("{:.1}%", pct * 100.0),
                fmt3(workload_cost(&inlined, &stats, &nyt_query)),
                fmt3(workload_cost(&wild, &stats, &nyt_query)),
            ]);
        }
    }
    out.push_str(&md_table(
        &["total reviews", "NYT share", "inlined", "wildcard split"],
        &rows,
    ));
    out.push_str(
        "\nPaper shape: the inlined cost is flat in the NYT share; the \
         materialized cost shrinks proportionally to it, and the advantage grows \
         with the total review count.\n",
    );
    out
}

// ------------------------------------------------------------------ E7

/// Cost-model validation: optimizer estimates vs executor measurements on
/// generated data (the analogue of the paper's ±10% SQL Server check,
/// §5 preamble).
pub fn validate_cost_model() -> String {
    use legodb_imdb::{generate_imdb, ScaleConfig};
    use legodb_pschema::{rel, shred};
    use legodb_relational::exec::run;
    use legodb_util::StdRng;
    use legodb_xquery::translate;

    let schema = imdb_schema();
    let mut rng = StdRng::seed_from_u64(2002);
    let config = ScaleConfig::at_scale(0.002);
    let doc = generate_imdb(&mut rng, &config);
    let measured_stats = Statistics::collect(&doc);
    let e = LegoDb::new(schema, measured_stats.clone(), Workload::new());
    let pschema = e.initial_pschema(StartPoint::MaximallyInlined);
    let mapping = rel(&pschema, &measured_stats);
    // lint: allow(no-unwrap-in-lib) — generator output matches its own schema; abort on mismatch is the right failure mode
    let db = shred(&mapping, &doc).expect("generated data shreds");

    let mut out = String::from(
        "## E7 — Cost-model validation: estimated vs executed\n\n\
         Generated data at 1/500 scale; per-query estimated output rows and read \
         pages vs the executor's observed counters.\n\n",
    );
    let mut rows = Vec::new();
    for name in ["Q1", "Q3", "Q7", "Q16", "Q19"] {
        let q = query(name);
        // lint: allow(no-unwrap-in-lib) — appendix queries translate under every mapping the harness builds
        let t = translate(&mapping, &q).expect("query translates");
        let mut est_rows = 0.0;
        let mut est_pages = 0.0;
        let mut got_rows = 0u64;
        let mut got_pages = 0.0;
        for statement in &t.statements {
            let opt = legodb_optimizer::optimize_statement(
                &mapping.catalog,
                statement,
                &OptimizerConfig::default(),
            )
            // lint: allow(no-unwrap-in-lib) — experiment harness: abort on an optimizer failure is the right failure mode
            .expect("statement optimizes");
            est_rows += opt.rows;
            est_pages += opt.cost.pages_read;
            // lint: allow(no-unwrap-in-lib) — experiment harness: abort on an executor failure is the right failure mode
            let (result, counters) = run(&db, &opt.plan).expect("plan executes");
            got_rows += result.len() as u64;
            got_pages += counters.pages_read;
        }
        rows.push(vec![
            name.to_string(),
            format!("{est_rows:.0}"),
            got_rows.to_string(),
            format!("{est_pages:.1}"),
            format!("{got_pages:.1}"),
        ]);
    }
    out.push_str(&md_table(
        &[
            "Query",
            "est. rows",
            "actual rows",
            "est. pages",
            "actual pages",
        ],
        &rows,
    ));
    out.push_str("\nEstimates should track measurements within a small factor.\n");
    out
}

/// Every Appendix C query priced on the all-inlined configuration — a
/// smoke check that the full workload costs end to end.
pub fn full_workload_costs() -> String {
    let stats = scaled_statistics(STATS_SCALE);
    let inlined = map_all_inlined();
    let mut rows = Vec::new();
    for (name, _) in QUERIES {
        let q = query(name);
        rows.push(vec![
            name.to_string(),
            fmt3(query_cost(&inlined, &stats, name, &q)),
        ]);
    }
    let mut out = String::from("## Appendix — all twenty queries on ALL-INLINED\n\n");
    out.push_str(&md_table(&["Query", "cost"], &rows));
    out
}

// ------------------------------------------------------------------ E7

/// `search_incremental` (DESIGN.md §11): greedy-si over the IMDB
/// application — the §5.2 lookup + publish mix — with incremental
/// costing and memoization on vs. off. The off arm reprices every
/// candidate from scratch (exactly the pre-incremental pipeline), so
/// the two wall clocks measure what the `CostEvaluator` saves, and the
/// final costs must agree bit-for-bit. Records are appended as
/// JSON-lines to `$LEGODB_BENCH_JSON`, or `BENCH_search.json` when
/// unset, so CI can assert a nonzero cache hit rate.
pub fn search_incremental() -> String {
    let schema = imdb_schema();
    let stats = scaled_statistics(STATS_SCALE);
    // The branch-balanced mix of Appendix C lookups: every query whose
    // footprint spans at most four types, covering each schema branch
    // (Show, TV, Movie, Episode, Actor, Played, Director, Directed,
    // Award), equally weighted. Each candidate transformation touches
    // one branch, so this workload exhibits the footprint structure
    // incremental costing exploits; an all-publish workload whose every
    // query reads every table would show the memo floor instead.
    let names = [
        "Q1", "Q2", "Q3", "Q4", "Q5", "Q7", "Q8", "Q9", "Q10", "Q11", "Q15", "Q17", "Q18", "Q20",
    ];
    let mut workload = Workload::new();
    for name in names {
        workload.push(name.to_string(), query(name), 1.0 / names.len() as f64);
    }
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut wall_ms = [0.0f64; 2];
    let mut costs = [0.0f64; 2];
    for (idx, memoize) in [false, true].into_iter().enumerate() {
        // Sequential candidate evaluation: with parallel workers the
        // iteration wall clock is set by the slowest candidate (which
        // must recost everything it touched in both arms), hiding the
        // work the evaluator avoids. The sequential arms compare total
        // evaluation work apples-to-apples.
        let config = SearchConfig {
            start: StartPoint::MaximallyInlined,
            parallel: false,
            memoize,
            ..Default::default()
        };
        let (result, elapsed) = legodb_util::bench::time_once(|| {
            // lint: allow(no-unwrap-in-lib) — experiment harness: abort on a failed search is the right failure mode
            greedy_search(&schema, &stats, &workload, &config).expect("search succeeds")
        });
        let eval = result.eval;
        wall_ms[idx] = elapsed.as_secs_f64() * 1e3;
        costs[idx] = result.cost;
        rows.push(vec![
            if memoize { "on" } else { "off" }.to_string(),
            format!("{:.1}", wall_ms[idx]),
            eval.reused.to_string(),
            eval.memo_hits.to_string(),
            eval.recosted.to_string(),
            format!("{:.0}%", eval.hit_rate() * 100.0),
            fmt3(result.cost),
        ]);
        records.push(
            legodb_util::json::JsonObject::new()
                .str("experiment", "search_incremental")
                .str("memoize", if memoize { "on" } else { "off" })
                .f64("wall_ms", wall_ms[idx])
                .f64("cost", result.cost)
                .u64("reused", eval.reused)
                .u64("memo_hits", eval.memo_hits)
                .u64("recosted", eval.recosted)
                .f64("hit_rate", eval.hit_rate())
                .finish(),
        );
    }
    let speedup = wall_ms[0] / wall_ms[1].max(1e-9);
    records.push(
        legodb_util::json::JsonObject::new()
            .str("experiment", "search_incremental")
            .u64("summary", 1)
            .f64("speedup", speedup)
            .finish(),
    );
    let path = std::env::var_os("LEGODB_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_search.json"));
    if let Err(e) = legodb_util::bench::append_json_lines(&path, records) {
        eprintln!("bench: cannot write {}: {e}", path.display());
    }
    let mut out = String::from("## E7 — incremental candidate costing: memoization on vs. off\n\n");
    out.push_str(&md_table(
        &[
            "Memoization",
            "wall ms",
            "reused",
            "memo hits",
            "recosted",
            "avoided",
            "final cost",
        ],
        &rows,
    ));
    let _ = writeln!(
        out,
        "\nSpeedup: {speedup:.2}x; final costs bit-identical: {}.",
        if costs[0].to_bits() == costs[1].to_bits() {
            "yes"
        } else {
            "NO — INVESTIGATE"
        },
    );
    out
}

// ------------------------------------------------------------------ E8

/// A workload over a generated mega-schema: lookups probing the key
/// column of types spread across the whole tree (narrow footprints —
/// the shape incremental costing exploits), plus publishes of two
/// root-child subtrees (wide footprints that must recost often). All
/// paths are absolute document-rooted descents, the same dialect as the
/// Appendix C queries.
pub fn mega_workload(mega: &MegaSchema) -> Workload {
    let targets: Vec<&legodb_schema::MegaType> = mega
        .types
        .iter()
        .filter(|t| t.depth >= 1 && t.occurrence != Occurrence::UnionBranch)
        .collect();
    let mut w = Workload::new();
    if targets.is_empty() {
        // A 1-type schema: probe the root itself.
        let root = &mega.types[0];
        let path = root.path.join("/");
        let src = format!(
            r#"FOR $v IN document("mega")/{path} WHERE $v/{} = c1 RETURN $v/{}"#,
            root.key, root.payload
        );
        // lint: allow(no-unwrap-in-lib) — generated query text is valid by construction; tests cover the generator
        w.push_src("lookup0", &src, 1.0).expect("lookup parses");
        return w;
    }
    // Twelve lookups, evenly spaced over the BFS order so every depth
    // band and branch is represented.
    let lookups = 12.min(targets.len());
    let mut picked = Vec::with_capacity(lookups);
    for k in 0..lookups {
        picked.push(targets[k * targets.len() / lookups]);
    }
    let weight = 1.0 / (picked.len() as f64 + 2.0);
    for t in picked {
        let path = t.path.join("/");
        let src = format!(
            r#"FOR $v IN document("mega")/{path} WHERE $v/{} = c1 RETURN $v/{}"#,
            t.key, t.payload
        );
        w.push_src(format!("lookup{}", t.index), &src, weight)
            // lint: allow(no-unwrap-in-lib) — generated query text is valid by construction; tests cover the generator
            .expect("lookup parses");
    }
    // Two publishes of root-child subtrees (or the root when the tree is
    // a single spine).
    let publishes: Vec<&&legodb_schema::MegaType> =
        targets.iter().filter(|t| t.depth == 1).take(2).collect();
    for t in publishes {
        let path = t.path.join("/");
        let src = format!(r#"FOR $v IN document("mega")/{path} RETURN $v"#);
        w.push_src(format!("publish{}", t.index), &src, weight)
            // lint: allow(no-unwrap-in-lib) — generated query text is valid by construction; tests cover the generator
            .expect("publish parses");
    }
    w
}

/// Greedy-iteration cap per scale: at 1× the search runs to convergence
/// (the paper's regime); at larger scales the iteration count is capped
/// so the bench measures *scheduling* at a fixed amount of search work
/// rather than letting wall-clock grow with the (scale-dependent) number
/// of improving moves.
fn scale_iteration_cap(scale: usize) -> usize {
    match scale {
        0..=1 => 0,
        2..=10 => 8,
        _ => 1,
    }
}

/// `search_scale` (DESIGN.md §13): the greedy search over generated
/// mega-schemas at 1×/10×/100× the IMDB type count, run under three
/// candidate-evaluation disciplines — sequential, chunked parallel, and
/// the work-stealing deque scheduler. All three must agree on the final
/// cost bit-for-bit (scheduling never changes results); the JSON records
/// capture wall-clock, steal counts, and worker occupancy, and a
/// per-scale summary records the steal-vs-chunked speedup the CI gate
/// enforces at 10×.
///
/// Knobs: `LEGODB_SCALE_LIST` (comma-separated scale factors, default
/// `1,10,100`) and `LEGODB_SCALE_REPS` (wall-clock repetitions per arm,
/// minimum taken, default 2).
pub fn search_scale() -> String {
    let scales: Vec<usize> = std::env::var("LEGODB_SCALE_LIST")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|x| x.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 10, 100]);
    let reps: usize = std::env::var("LEGODB_SCALE_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);

    let arms: [(&str, bool, Scheduler); 3] = [
        ("sequential", false, Scheduler::WorkStealing),
        ("chunked", true, Scheduler::Chunked),
        ("work-stealing", true, Scheduler::WorkStealing),
    ];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut out = String::from(
        "## E8 — search at scale: sequential vs chunked vs work-stealing\n\n\
         Generated mega-schemas (seed 0), 12 lookups + 2 publishes, \
         greedy-si, incremental costing on.\n\n",
    );
    for &scale in &scales {
        let mega = mega_schema(&MegaConfig::imdb_scaled(scale));
        let workload = mega_workload(&mega);
        let cap = scale_iteration_cap(scale);
        let mut wall = vec![f64::INFINITY; arms.len()];
        let mut cost_bits = vec![0u64; arms.len()];
        let mut iterations = vec![0usize; arms.len()];
        let mut steal_line = String::new();
        for (a, (arm, parallel, scheduler)) in arms.iter().enumerate() {
            let config = SearchConfig {
                start: StartPoint::MaximallyInlined,
                parallel: *parallel,
                scheduler: *scheduler,
                max_iterations: cap,
                ..Default::default()
            };
            let mut last = None;
            for _ in 0..reps {
                let (result, elapsed) = legodb_util::bench::time_once(|| {
                    greedy_search(&mega.schema, &mega.stats, &workload, &config)
                        // lint: allow(no-unwrap-in-lib) — experiment harness: abort on a failed search is the right failure mode
                        .expect("search succeeds")
                });
                // Minimum across repetitions: scheduling wins are about
                // the achievable wall-clock, not scheduler-independent
                // noise from the shared CI machine.
                wall[a] = wall[a].min(elapsed.as_secs_f64() * 1e3);
                last = Some(result);
            }
            // lint: allow(no-unwrap-in-lib) — reps >= 1, so the loop body ran
            let result = last.expect("at least one repetition ran");
            cost_bits[a] = result.cost.to_bits();
            iterations[a] = result.trajectory.len() - 1;
            let mut record = legodb_util::json::JsonObject::new()
                .str("experiment", "search_scale")
                .u64("scale", scale as u64)
                .str("arm", arm)
                .f64("wall_ms", wall[a])
                .f64("cost", result.cost)
                .u64("iterations", iterations[a] as u64)
                .u64("evaluations", result.eval.total());
            let mut occupancy_cell = "—".to_string();
            let mut steals_cell = "—".to_string();
            if let Some(sched) = &result.sched {
                record = record
                    .u64("workers", sched.workers as u64)
                    .u64("steals", sched.steals)
                    .u64("failed_steals", sched.failed_steals)
                    .f64("occupancy", sched.occupancy());
                occupancy_cell = format!("{:.0}%", sched.occupancy() * 100.0);
                steals_cell = sched.steals.to_string();
                steal_line = format!(
                    "scale {scale}: {} steals over {} items on {} workers",
                    sched.steals,
                    sched.items(),
                    sched.workers
                );
            }
            records.push(record.finish());
            rows.push(vec![
                format!("{scale}x"),
                mega.types.len().to_string(),
                arm.to_string(),
                format!("{:.1}", wall[a]),
                iterations[a].to_string(),
                steals_cell,
                occupancy_cell,
                fmt3(f64::from_bits(cost_bits[a])),
            ]);
        }
        let cost_match = cost_bits.iter().all(|&b| b == cost_bits[0]);
        let speedup_vs_chunked = wall[1] / wall[2].max(1e-9);
        let speedup_vs_sequential = wall[0] / wall[2].max(1e-9);
        records.push(
            legodb_util::json::JsonObject::new()
                .str("experiment", "search_scale")
                .u64("scale", scale as u64)
                .u64("summary", 1)
                .f64("steal_speedup_vs_chunked", speedup_vs_chunked)
                .f64("steal_speedup_vs_sequential", speedup_vs_sequential)
                .u64("cost_match", u64::from(cost_match))
                .finish(),
        );
        let _ = writeln!(
            out,
            "- {scale}×: work-stealing {speedup_vs_chunked:.2}x vs chunked, \
             {speedup_vs_sequential:.2}x vs sequential; {steal_line}; \
             final costs bit-identical: {}.",
            if cost_match {
                "yes"
            } else {
                "NO — INVESTIGATE"
            }
        );
    }
    let path = std::env::var_os("LEGODB_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_search.json"));
    if let Err(e) = legodb_util::bench::append_json_lines(&path, records) {
        eprintln!("bench: cannot write {}: {e}", path.display());
    }
    out.push('\n');
    out.push_str(&md_table(
        &[
            "Scale",
            "types",
            "arm",
            "wall ms",
            "iters",
            "steals",
            "occupancy",
            "final cost",
        ],
        &rows,
    ));
    out
}

// ------------------------------------------------------------------ E9

/// Abort the experiment with context on an infrastructure failure — for
/// a bench harness that is the right failure mode, and it keeps the
/// `no-unwrap-in-lib` discipline (one panic site with a message instead
/// of bare `.expect(…)` calls on every durable operation).
fn must<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    match result {
        Ok(v) => v,
        Err(e) => panic!("recovery bench: {what}: {e}"),
    }
}

/// Scales for the durability experiment: `LEGODB_RECOVERY_SCALES` is a
/// comma list of corpus percentages (scale unit = 1% of the Appendix A
/// IMDB corpus, ~348 shows); the default `1,10` probes a 10× spread.
fn recovery_scales() -> Vec<u64> {
    std::env::var("LEGODB_RECOVERY_SCALES")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 10])
}

/// The durability experiment (DESIGN.md §14): shred a generated IMDB
/// document, stream it into a durable database (WAL append + fsync per
/// table, checkpoint at the halfway point so recovery exercises both the
/// checkpoint restore *and* the WAL tail replay), then reopen and check
/// the recovered state is byte-identical. JSON-lines records land in
/// `BENCH_recovery.json` (or `$LEGODB_BENCH_JSON`); CI gates on
/// `replay_match == 1` at every scale.
pub fn recovery() -> String {
    let pschema = derive_pschema(&imdb_schema(), InlineStyle::Inlined);
    let root = must(
        DirHandle::create("target/bench_recovery"),
        "create working dir",
    );
    let mut rows_out = Vec::new();
    let mut records = Vec::new();

    fn load_tables(db: &mut Database, src: &Database, names: &[String]) {
        for name in names {
            let table = must(src.table(name), "source table");
            must(db.create_table(table.def.clone()), "create table");
            table.for_each(|row| must(db.insert(name, row.clone()), "insert row"));
        }
        must(db.commit(), "commit");
    }

    for scale in recovery_scales() {
        let mut rng = StdRng::seed_from_u64(0x001E_60DB ^ scale);
        let doc = generate_imdb(&mut rng, &ScaleConfig::at_scale(0.01 * scale as f64));
        let stats = Statistics::collect(&doc);
        let mapping = rel(&pschema, &stats);
        let src = must(shred(&mapping, &doc), "shred document");

        let sub = format!("scale_{scale}");
        let _ = root.remove_tree(&sub);
        let dir = must(root.create_subdir(&sub), "create scale dir");
        let mut db = must(Database::open(&dir), "open durable database");
        let names: Vec<String> = src.tables().map(|t| t.def.name.clone()).collect();
        let half = names.len() / 2;

        let ((), first_wall) = legodb_util::bench::time_once(|| {
            load_tables(&mut db, &src, &names[..half]);
        });
        let first_bytes = must(db.wal().map_or(Ok(0), |w| w.len_bytes()), "WAL size");
        let ((), checkpoint_wall) =
            legodb_util::bench::time_once(|| must(db.checkpoint(&dir), "checkpoint"));
        let ((), second_wall) = legodb_util::bench::time_once(|| {
            load_tables(&mut db, &src, &names[half..]);
        });
        let second_bytes = must(db.wal().map_or(Ok(0), |w| w.len_bytes()), "WAL size");

        let wal_bytes = first_bytes + second_bytes;
        let append_secs = (first_wall + second_wall).as_secs_f64();
        let append_mb_s = wal_bytes as f64 / 1e6 / append_secs.max(1e-9);
        let checkpoint_ms = checkpoint_wall.as_secs_f64() * 1e3;

        let (recovered, replay_wall) =
            legodb_util::bench::time_once(|| must(Database::open(&dir), "recovery open"));
        let replay_ms = replay_wall.as_secs_f64() * 1e3;
        let replay_match = recovered.snapshot_json() == db.snapshot_json();
        let total_rows = db.total_rows() as u64;

        rows_out.push(vec![
            format!("{scale}"),
            total_rows.to_string(),
            format!("{:.2}", wal_bytes as f64 / 1e6),
            format!("{append_mb_s:.1}"),
            format!("{checkpoint_ms:.1}"),
            format!("{replay_ms:.1}"),
            if replay_match {
                "yes".to_string()
            } else {
                "NO — INVESTIGATE".to_string()
            },
        ]);
        records.push(
            legodb_util::json::JsonObject::new()
                .str("experiment", "recovery")
                .u64("scale", scale)
                .u64("rows", total_rows)
                .u64("wal_bytes", wal_bytes)
                .f64("append_mb_s", append_mb_s)
                .f64("checkpoint_ms", checkpoint_ms)
                .f64("replay_ms", replay_ms)
                .u64("replay_match", u64::from(replay_match))
                .finish(),
        );
    }

    let path = std::env::var_os("LEGODB_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_recovery.json"));
    if let Err(e) = legodb_util::bench::append_json_lines(&path, records) {
        eprintln!("bench: cannot write {}: {e}", path.display());
    }
    let mut out =
        String::from("## E9 — durable load, checkpoint, and WAL replay (scale unit = 1% IMDB)\n\n");
    out.push_str(&md_table(
        &[
            "Scale",
            "rows",
            "WAL MB",
            "append MB/s",
            "checkpoint ms",
            "replay ms",
            "recovered identical",
        ],
        &rows_out,
    ));
    out
}

// ----------------------------------------------------------------- E10

/// Scales for the ingest experiment (`LEGODB_INGEST_SCALES`, same 1% unit
/// as the recovery bench; default `1,10`).
fn ingest_scales() -> Vec<u64> {
    std::env::var("LEGODB_INGEST_SCALES")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 10])
}

/// The streaming-ingest experiment (DESIGN.md §15): shred a generated
/// IMDB corpus twice — the DOM path (`parse` then `shred_dom`: build the
/// whole tree, validate it upfront, walk it) and the streaming path
/// (`shred_events`: tokenize, buffer one root-child subtree at a time) —
/// and compare wall clock, throughput, and peak resident elements. The
/// hard invariant is bit-identical output (`rows_match`, gated in CI
/// together with `streaming_speedup > 1`). A third arm loads the shredded
/// rows into a durable database through `Database::insert_batch`, one
/// batch per table, counting WAL fsyncs to demonstrate group commit
/// (`fsyncs_per_batch <= 1`).
pub fn ingest() -> String {
    use legodb_pschema::{shred_dom, shred_events_report};
    use legodb_xml::{events, parse};

    let reps: usize = std::env::var("LEGODB_INGEST_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);
    let pschema = derive_pschema(&imdb_schema(), InlineStyle::Inlined);
    let root = must(
        DirHandle::create("target/bench_ingest"),
        "create working dir",
    );
    let mut rows_out = Vec::new();
    let mut records = Vec::new();

    for scale in ingest_scales() {
        let mut rng = StdRng::seed_from_u64(0x001A_6E57 ^ scale);
        let doc = generate_imdb(&mut rng, &ScaleConfig::at_scale(0.01 * scale as f64));
        let xml = doc.to_xml();
        let stats = Statistics::collect(&doc);
        let mapping = rel(&pschema, &stats);
        let mb = xml.len() as f64 / 1e6;
        drop(doc); // both arms start from the serialized bytes

        // DOM arm: materialize the tree, then the classic shredder.
        let mut dom_secs = f64::INFINITY;
        let mut dom_result = None;
        for _ in 0..reps {
            let (r, elapsed) = legodb_util::bench::time_once(|| {
                let doc = must(parse(&xml), "parse corpus");
                let db = must(shred_dom(&mapping, &doc), "DOM shred");
                (db, doc.element_count())
            });
            dom_secs = dom_secs.min(elapsed.as_secs_f64());
            dom_result = Some(r);
        }
        // lint: allow(no-unwrap-in-lib) — reps >= 1, so the loop body ran
        let (dom_db, dom_nodes) = dom_result.expect("at least one repetition ran");

        // Streaming arm: tokenizer events straight into the shredder.
        let mut stream_secs = f64::INFINITY;
        let mut stream_result = None;
        for _ in 0..reps {
            let (r, elapsed) = legodb_util::bench::time_once(|| {
                must(
                    shred_events_report(&mapping, events(&xml)),
                    "streaming shred",
                )
            });
            stream_secs = stream_secs.min(elapsed.as_secs_f64());
            stream_result = Some(r);
        }
        // lint: allow(no-unwrap-in-lib) — reps >= 1, so the loop body ran
        let (stream_db, report) = stream_result.expect("at least one repetition ran");

        let rows = dom_db.total_rows() as u64;
        let rows_match = dom_db.snapshot_json() == stream_db.snapshot_json();
        let speedup = dom_secs / stream_secs.max(1e-9);
        let stream_mb_s = mb / stream_secs.max(1e-9);
        let dom_mb_s = mb / dom_secs.max(1e-9);
        let stream_rows_s = rows as f64 / stream_secs.max(1e-9);
        // Bounded-memory demonstration: under a working-set budget of a
        // tenth of the document, the DOM path cannot load this corpus but
        // the streaming path fits with room to spare.
        let budget_nodes = dom_nodes / 10;
        let within_budget = report.streamed && report.peak_resident_elements < budget_nodes;

        // Durable batched load: one insert_batch (= one WAL frame, one
        // fsync) per table.
        let sub = format!("scale_{scale}");
        let _ = root.remove_tree(&sub);
        let dir = must(root.create_subdir(&sub), "create scale dir");
        let mut durable = must(Database::open(&dir), "open durable database");
        let mut batches = 0u64;
        for table in stream_db.tables() {
            must(durable.create_table(table.def.clone()), "create table");
        }
        must(durable.commit(), "commit schema");
        let before_syncs = durable.wal().map_or(0, |w| w.sync_count());
        for table in stream_db.tables() {
            let mut batch = Vec::with_capacity(table.len());
            table.for_each(|row| batch.push(row.clone()));
            must(durable.insert_batch(&table.def.name, batch), "insert batch");
            batches += 1;
        }
        let fsyncs = durable.wal().map_or(0, |w| w.sync_count()) - before_syncs;
        let fsyncs_per_batch = fsyncs as f64 / batches.max(1) as f64;

        rows_out.push(vec![
            format!("{scale}"),
            format!("{mb:.2}"),
            rows.to_string(),
            format!("{dom_mb_s:.1}"),
            format!("{stream_mb_s:.1}"),
            format!("{speedup:.2}x"),
            dom_nodes.to_string(),
            report.peak_resident_elements.to_string(),
            format!("{fsyncs_per_batch:.2}"),
            if rows_match {
                "yes".to_string()
            } else {
                "NO — INVESTIGATE".to_string()
            },
        ]);
        records.push(
            legodb_util::json::JsonObject::new()
                .str("experiment", "ingest")
                .u64("scale", scale)
                .f64("mb", mb)
                .u64("rows", rows)
                .f64("dom_mb_s", dom_mb_s)
                .f64("stream_mb_s", stream_mb_s)
                .f64("stream_rows_s", stream_rows_s)
                .f64("streaming_speedup", speedup)
                .u64("dom_nodes", dom_nodes as u64)
                .u64("stream_peak_nodes", report.peak_resident_elements as u64)
                .u64("budget_nodes", budget_nodes as u64)
                .u64("within_budget", u64::from(within_budget))
                .u64("batches", batches)
                .u64("fsyncs", fsyncs)
                .f64("fsyncs_per_batch", fsyncs_per_batch)
                .u64("rows_match", u64::from(rows_match))
                .finish(),
        );
    }

    let path = std::env::var_os("LEGODB_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_ingest.json"));
    if let Err(e) = legodb_util::bench::append_json_lines(&path, records) {
        eprintln!("bench: cannot write {}: {e}", path.display());
    }
    let mut out = String::from(
        "## E10 — streaming ingest: DOM shred vs event-pull shred (scale unit = 1% IMDB)\n\n\
         Peak = resident XML elements; budget demo: the streaming path stays \
         under a tenth of the DOM working set. Durable arm: batched appends, \
         one WAL fsync per batch.\n\n",
    );
    out.push_str(&md_table(
        &[
            "Scale",
            "MB",
            "rows",
            "DOM MB/s",
            "stream MB/s",
            "speedup",
            "DOM nodes",
            "stream peak",
            "fsyncs/batch",
            "identical",
        ],
        &rows_out,
    ));
    out
}

// ----------------------------------------------------------------- E11

/// Scales for the layout experiment (`LEGODB_LAYOUT_SCALES`, same 1% unit
/// as the recovery bench; default `1,10`).
fn layout_scales() -> Vec<u64> {
    std::env::var("LEGODB_LAYOUT_SCALES")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 10])
}

/// The point-lookup side of the layout decision: Appendix C's Q1–Q6, the
/// show lookups that fetch whole tuples through an index.
const LAYOUT_LOOKUPS: [&str; 6] = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"];

/// The analytic side: Q11–Q18 — the character scan, the acted-and-directed
/// joins, and the publish-all sweeps, all dominated by sequential reads.
const LAYOUT_AGGS: [&str; 8] = ["Q11", "Q12", "Q13", "Q14", "Q15", "Q16", "Q17", "Q18"];

fn layout_workload(names: &[&str]) -> Workload {
    let mut w = Workload::new();
    for name in names {
        w.push(name.to_string(), query(name), 1.0 / names.len() as f64);
    }
    w
}

/// Execute one query end to end under `mapping` — the layout experiment's
/// version of the pipeline test's `run_query`. Returns the sorted result
/// rows plus the executor's `columns_read` counter, the observable that
/// distinguishes a projected column scan from a full row scan.
fn layout_run(
    mapping: &legodb_pschema::Mapping,
    db: &Database,
    q: &XQuery,
) -> (Vec<legodb_relational::Row>, u64) {
    use legodb_xquery::translate;
    // lint: allow(no-unwrap-in-lib) — appendix queries translate under every mapping the harness builds
    let t = translate(mapping, q).expect("query translates");
    let mut out = Vec::new();
    let mut columns_read = 0u64;
    for statement in &t.statements {
        let opt = legodb_optimizer::optimize_statement(
            &mapping.catalog,
            statement,
            &OptimizerConfig::default(),
        )
        // lint: allow(no-unwrap-in-lib) — experiment harness: abort on an optimizer failure is the right failure mode
        .expect("statement optimizes");
        // lint: allow(no-unwrap-in-lib) — experiment harness: abort on an executor failure is the right failure mode
        let (rows, counters) = legodb_relational::run(db, &opt.plan).expect("plan executes");
        columns_read += counters.columns_read;
        out.extend(rows);
    }
    out.retain(|row| !row.iter().all(|v| v.is_null()));
    out.sort();
    (out, columns_read)
}

/// The physical-layout experiment (DESIGN.md §16): let the greedy search
/// pick per-table layouts (`SetLayout` moves only, all-filtered index
/// assumption), then verify the choice on generated data. The analytic
/// workload (Q11–Q18) must drive at least one of its tables columnar and
/// the point-lookup workload (Q1–Q6) must leave every table on the row
/// heap; the all-row and mixed-layout builds must answer Q1–Q18
/// bit-identically (`results_match`, gated in CI); and narrow-projection
/// analytic scans must run faster against the column store
/// (`columnar_agg_speedup`, gated at 10×). JSON-lines records land in
/// `BENCH_layout.json` (or `$LEGODB_BENCH_JSON`).
pub fn layout() -> String {
    use legodb_core::transform::TransformationSet;
    use legodb_optimizer::IndexAssumption;
    use legodb_xquery::parse_xquery;

    let reps: usize = std::env::var("LEGODB_LAYOUT_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    // Analytic scan set: narrow projections over the wide entity tables.
    // The row path clones whole tuples (50-byte titles, 120-byte
    // descriptions) and projects afterwards; the column store reads only
    // the referenced vectors.
    let scans: Vec<XQuery> = [
        r#"FOR $v IN document("imdbdata")/imdb/show RETURN $v/year"#,
        r#"FOR $v IN document("imdbdata")/imdb/show
           WHERE $v/year = 1999
           RETURN $v/title, $v/year"#,
        r#"FOR $v IN document("imdbdata")/imdb/actor RETURN $v/name"#,
    ]
    .iter()
    // lint: allow(no-unwrap-in-lib) — scan query literals; a parse failure is a harness bug
    .map(|src| parse_xquery(src).expect("scan query parses"))
    .collect();

    let schema = imdb_schema();
    let lookup_w = layout_workload(&LAYOUT_LOOKUPS);
    let agg_w = layout_workload(&LAYOUT_AGGS);
    // All-filtered is the honest assumption for the lookup side: Q1–Q6
    // filter on title/year, and pricing them as full scans would make the
    // column store look good for the wrong reason (every scan likes
    // narrow pages; only *random access* separates the layouts).
    let config = SearchConfig {
        start: StartPoint::MaximallyInlined,
        transformations: Some(TransformationSet::layouts_only()),
        optimizer: OptimizerConfig {
            indexes: IndexAssumption::AllFiltered,
            ..OptimizerConfig::default()
        },
        parallel: true,
        ..SearchConfig::default()
    };

    let mut rows_out = Vec::new();
    let mut records = Vec::new();
    let mut decision_lines = String::new();
    // Layout selection prices against the Appendix A statistics (the
    // production-scale numbers every other experiment tunes for), not the
    // sample corpus: on a 1%-scale sample every table fits in a handful of
    // pages and a narrow columnar scan undercuts even an index probe, so
    // pricing at sample scale would flip the lookup tables columnar for a
    // reason that evaporates at production size.
    let design_stats = scaled_statistics(STATS_SCALE);

    for scale in layout_scales() {
        let mut rng = StdRng::seed_from_u64(0x001A_707E ^ scale);
        let doc = generate_imdb(&mut rng, &ScaleConfig::at_scale(0.01 * scale as f64));
        let stats = Statistics::collect(&doc);

        // Layout selection: the same logical schema, two workloads.
        let agg_search = greedy_search(&schema, &design_stats, &agg_w, &config)
            // lint: allow(no-unwrap-in-lib) — experiment harness: abort on a failed search is the right failure mode
            .expect("search succeeds");
        let lookup_search = greedy_search(&schema, &design_stats, &lookup_w, &config)
            // lint: allow(no-unwrap-in-lib) — experiment harness: abort on a failed search is the right failure mode
            .expect("search succeeds");
        let agg_columnar: Vec<String> = agg_search
            .pschema
            .layouts()
            .keys()
            .map(|n| n.to_string())
            .collect();
        let lookup_columnar: Vec<String> = lookup_search
            .pschema
            .layouts()
            .keys()
            .map(|n| n.to_string())
            .collect();
        let lookup_columnar_tables = lookup_columnar.len() as u64;

        // Two builds of the chosen logical schema: all-row vs mixed.
        let chosen = agg_search.pschema.clone();
        let row_ps = PSchema::try_new(chosen.schema().clone())
            // lint: allow(no-unwrap-in-lib) — the searched schema already stratifies; dropping layouts cannot break it
            .expect("stripping layouts preserves stratification");
        let mapping_col = rel(&chosen, &stats);
        let mapping_row = rel(&row_ps, &stats);
        let db_col = must(shred(&mapping_col, &doc), "shred (columnar)");
        let db_row = must(shred(&mapping_row, &doc), "shred (row)");

        // The hard invariant: layout never changes answers. Q1–Q18 plus
        // the scan set, bit-compared between the two builds.
        let mut results_match = true;
        for i in 1..=18u32 {
            let q = query(&format!("Q{i}"));
            if layout_run(&mapping_row, &db_row, &q).0 != layout_run(&mapping_col, &db_col, &q).0 {
                results_match = false;
            }
        }
        let mut scan_columns_row = 0u64;
        let mut scan_columns_col = 0u64;
        for q in &scans {
            let (a, ca) = layout_run(&mapping_row, &db_row, q);
            let (b, cb) = layout_run(&mapping_col, &db_col, q);
            scan_columns_row += ca;
            scan_columns_col += cb;
            if a != b {
                results_match = false;
            }
        }

        // Analytic scan wall clock: eight passes per sample, minimum over
        // repetitions (same discipline as the scheduler bench).
        let inner = 8usize;
        let mut row_secs = f64::INFINITY;
        let mut col_secs = f64::INFINITY;
        for _ in 0..reps {
            let (_, elapsed) = legodb_util::bench::time_once(|| {
                let mut n = 0usize;
                for _ in 0..inner {
                    for q in &scans {
                        n += layout_run(&mapping_row, &db_row, q).0.len();
                    }
                }
                n
            });
            row_secs = row_secs.min(elapsed.as_secs_f64());
            let (_, elapsed) = legodb_util::bench::time_once(|| {
                let mut n = 0usize;
                for _ in 0..inner {
                    for q in &scans {
                        n += layout_run(&mapping_col, &db_col, q).0.len();
                    }
                }
                n
            });
            col_secs = col_secs.min(elapsed.as_secs_f64());
        }
        let speedup = row_secs / col_secs.max(1e-9);

        let _ = writeln!(
            decision_lines,
            "- {scale}×: analytic workload drives {} table(s) columnar ({}); \
             lookup workload leaves {lookup_columnar_tables} columnar [{}]; \
             projected scans read {scan_columns_col} columns instead of \
             {scan_columns_row}.",
            agg_columnar.len(),
            if agg_columnar.is_empty() {
                "none".to_string()
            } else {
                agg_columnar.join(", ")
            },
            lookup_columnar.join(", "),
        );
        rows_out.push(vec![
            format!("{scale}"),
            agg_columnar.len().to_string(),
            lookup_columnar_tables.to_string(),
            format!("{:.2}", row_secs * 1e3),
            format!("{:.2}", col_secs * 1e3),
            format!("{speedup:.2}x"),
            format!("{scan_columns_row}/{scan_columns_col}"),
            if results_match {
                "yes".to_string()
            } else {
                "NO — INVESTIGATE".to_string()
            },
        ]);
        records.push(
            legodb_util::json::JsonObject::new()
                .str("experiment", "layout")
                .u64("scale", scale)
                .u64("agg_columnar_tables", agg_columnar.len() as u64)
                .u64("agg_chose_columnar", u64::from(!agg_columnar.is_empty()))
                .u64("lookup_columnar_tables", lookup_columnar_tables)
                .u64("results_match", u64::from(results_match))
                .f64("row_scan_ms", row_secs * 1e3)
                .f64("columnar_scan_ms", col_secs * 1e3)
                .f64("columnar_agg_speedup", speedup)
                .u64("scan_columns_row", scan_columns_row)
                .u64("scan_columns_col", scan_columns_col)
                .f64(
                    "agg_cost_start",
                    agg_search
                        .trajectory
                        .first()
                        .map(|r| r.cost)
                        .unwrap_or(agg_search.cost),
                )
                .f64("agg_cost_final", agg_search.cost)
                .finish(),
        );
    }

    let path = std::env::var_os("LEGODB_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_layout.json"));
    if let Err(e) = legodb_util::bench::append_json_lines(&path, records) {
        eprintln!("bench: cannot write {}: {e}", path.display());
    }
    let mut out = String::from(
        "## E11 — layout-aware search: row heap vs column store (scale unit = 1% IMDB)\n\n\
         Per-table layouts chosen by greedy `set-layout` moves under the \
         all-filtered index assumption; scan times are the narrow-projection \
         analytic set on the same data under both layouts.\n\n",
    );
    out.push_str(&decision_lines);
    out.push('\n');
    out.push_str(&md_table(
        &[
            "Scale",
            "agg columnar",
            "lookup columnar",
            "row scan ms",
            "columnar scan ms",
            "speedup",
            "cols read row/col",
            "identical",
        ],
        &rows_out,
    ));
    out
}

/// Run one experiment section on the `legodb_util::bench` monotonic
/// clock. The rendered markdown is returned unchanged; when
/// `LEGODB_BENCH_JSON` is set, a `{"experiment": ..., "wall_ms": ...}`
/// record is appended to that file so CI archives experiment wall times
/// alongside the micro-bench samples.
pub fn timed_experiment(name: &str, f: impl FnOnce() -> String) -> String {
    let (report, elapsed) = legodb_util::bench::time_once(f);
    eprintln!(
        "{name}: {}",
        legodb_util::bench::fmt_ns(elapsed.as_nanos() as f64)
    );
    if let Some(path) = std::env::var_os("LEGODB_BENCH_JSON") {
        let path = std::path::PathBuf::from(path);
        let line = legodb_util::json::JsonObject::new()
            .str("experiment", name)
            .f64("wall_ms", elapsed.as_secs_f64() * 1e3)
            .finish();
        if let Err(e) = legodb_util::bench::append_json_lines(&path, [line]) {
            eprintln!("bench: cannot write {}: {e}", path.display());
        }
    }
    report
}
