//! # legodb-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`), shared helpers here, and Criterion benches for the
//! machinery itself under `benches/`.

#![forbid(unsafe_code)]

pub mod harness;
