//! Micro-benchmarks of the LegoDB machinery itself — the moving parts
//! whose speed bounds the search (the paper reports ~3 s per greedy
//! iteration on 2001 hardware; these benches track our per-component
//! budgets). Runs on the `legodb_util::bench` harness: warmup + batched
//! samples on a monotonic clock, median/p95 reporting, and JSON-lines
//! output to `$LEGODB_BENCH_JSON` when set.

use legodb_core::cost::pschema_cost;
use legodb_core::transform::{apply, enumerate_candidates, Transformation, TransformationSet};
use legodb_core::workload::Workload;
use legodb_imdb::{
    generate_imdb, imdb_schema, lookup_workload, query, scaled_statistics, ScaleConfig,
};
use legodb_optimizer::{optimize_statement, OptimizerConfig};
use legodb_pschema::{derive_pschema, rel, shred, InlineStyle};
use legodb_schema::{parse_schema, TypeName};
use legodb_util::bench::{black_box, Bench};
use legodb_util::StdRng;
use legodb_xml::stats::Statistics;
use legodb_xquery::translate;

fn bench_xml_parse(c: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(1);
    let doc = generate_imdb(&mut rng, &ScaleConfig::at_scale(0.002));
    let text = doc.to_xml();
    c.bench_function("xml_parse_imdb_0.002", |b| {
        b.iter(|| legodb_xml::parse(black_box(&text)).unwrap())
    });
}

fn bench_stats_collect(c: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(1);
    let doc = generate_imdb(&mut rng, &ScaleConfig::at_scale(0.002));
    c.bench_function("stats_collect_imdb_0.002", |b| {
        b.iter(|| Statistics::collect(black_box(&doc)))
    });
}

fn bench_schema_parse(c: &mut Bench) {
    c.bench_function("schema_parse_imdb", |b| {
        b.iter(|| parse_schema(black_box(legodb_imdb::schema::IMDB_SCHEMA_SRC)).unwrap())
    });
}

fn bench_derive_and_rel(c: &mut Bench) {
    let schema = imdb_schema();
    let stats = scaled_statistics(1.0);
    c.bench_function("derive_pschema_inlined", |b| {
        b.iter(|| derive_pschema(black_box(&schema), InlineStyle::Inlined))
    });
    let pschema = derive_pschema(&schema, InlineStyle::Inlined);
    c.bench_function("rel_mapping_imdb", |b| {
        b.iter(|| rel(black_box(&pschema), &stats))
    });
}

fn bench_shred(c: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(1);
    let doc = generate_imdb(&mut rng, &ScaleConfig::at_scale(0.002));
    let stats = Statistics::collect(&doc);
    let mapping = rel(
        &derive_pschema(&imdb_schema(), InlineStyle::Inlined),
        &stats,
    );
    c.bench_function("shred_imdb_0.002", |b| {
        b.iter(|| shred(&mapping, black_box(&doc)).unwrap())
    });
}

fn bench_translate_and_optimize(c: &mut Bench) {
    let stats = scaled_statistics(1.0);
    let mapping = rel(
        &derive_pschema(&imdb_schema(), InlineStyle::Inlined),
        &stats,
    );
    let q13 = query("Q13");
    c.bench_function("translate_q13", |b| {
        b.iter(|| translate(&mapping, black_box(&q13)).unwrap())
    });
    let t = translate(&mapping, &q13).unwrap();
    let cfg = OptimizerConfig::default();
    c.bench_function("optimize_q13_statements", |b| {
        b.iter(|| {
            for s in &t.statements {
                black_box(optimize_statement(&mapping.catalog, s, &cfg).unwrap());
            }
        })
    });
}

fn bench_get_pschema_cost(c: &mut Bench) {
    let schema = imdb_schema();
    let stats = scaled_statistics(1.0);
    let pschema = derive_pschema(&schema, InlineStyle::Inlined);
    let workload = lookup_workload();
    let cfg = OptimizerConfig::default();
    c.bench_function("get_pschema_cost_lookup", |b| {
        b.iter(|| pschema_cost(black_box(&pschema), &stats, &workload, &cfg).unwrap())
    });
}

fn bench_transformations(c: &mut Bench) {
    let pschema = derive_pschema(&imdb_schema(), InlineStyle::Inlined);
    c.bench_function("enumerate_candidates", |b| {
        b.iter(|| {
            enumerate_candidates(
                black_box(&pschema),
                &TransformationSet::all(vec!["nyt".into()]),
            )
        })
    });
    c.bench_function("apply_union_distribute", |b| {
        b.iter(|| {
            apply(
                black_box(&pschema),
                &Transformation::UnionDistribute {
                    in_type: TypeName::new("Show"),
                },
            )
            .unwrap()
        })
    });
}

fn bench_greedy_iteration(c: &mut Bench) {
    // One full greedy iteration: enumerate + evaluate every candidate.
    let schema = imdb_schema();
    let stats = scaled_statistics(1.0);
    let pschema = derive_pschema(&schema, InlineStyle::Inlined);
    let workload = {
        let mut w = Workload::new();
        w.push("Q1", query("Q1"), 0.5);
        w.push("Q16", query("Q16"), 0.5);
        w
    };
    let cfg = OptimizerConfig::default();
    c.bench_function("greedy_iteration_2_queries", |b| {
        b.iter(|| {
            let candidates = enumerate_candidates(&pschema, &TransformationSet::outline_only());
            for t in &candidates {
                if let Ok((p, _)) = apply(&pschema, t) {
                    let _ = black_box(pschema_cost(&p, &stats, &workload, &cfg));
                }
            }
        })
    });
}

fn main() {
    let mut bench = Bench::from_args();
    bench_xml_parse(&mut bench);
    bench_stats_collect(&mut bench);
    bench_schema_parse(&mut bench);
    bench_derive_and_rel(&mut bench);
    bench_shred(&mut bench);
    bench_translate_and_optimize(&mut bench);
    bench_get_pschema_cost(&mut bench);
    bench_transformations(&mut bench);
    bench_greedy_iteration(&mut bench);
    bench.finish();
}
