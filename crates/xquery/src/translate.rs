//! XQuery → relational translation over a storage [`Mapping`].
//!
//! Each FLWR block is compiled into a set of *worlds*: alternative
//! conjunctive interpretations of the query, one per combination of union
//! alternatives met while resolving paths (the paper's union rewriting:
//! a query over a horizontally partitioned `show` becomes a `UNION ALL`).
//! Each world yields one SPJ block; `RETURN $v` subtree publishing emits
//! one additional statement per descendant-table chain (Silkroute-style),
//! whose costs the caller sums.

use crate::ast::{Flwr, Operand, PathExpr, PathRoot, ReturnItem, XQuery};
use crate::resolve::{descendant_chains, step_from};
use legodb_optimizer::{ColRef, FilterPred, SpjQuery, Statement};
use legodb_pschema::Mapping;
use legodb_relational::{CmpOp, Value};
use legodb_schema::TypeName;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Translation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateError {
    /// A binding path could not be resolved in any world.
    UnresolvedBinding(String),
    /// The document-rooted path does not start at the schema root element.
    BadRoot(String),
    /// A WHERE path did not land on a scalar column in any world.
    UnresolvedPredicate(String),
    /// A variable was used before being bound.
    UnboundVariable(String),
    /// The query produced no statements at all.
    Empty,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnresolvedBinding(p) => write!(f, "cannot resolve binding path {p}"),
            TranslateError::BadRoot(s) => {
                write!(f, "path does not start at the document root: {s}")
            }
            TranslateError::UnresolvedPredicate(p) => {
                write!(f, "WHERE path {p} does not resolve to a column")
            }
            TranslateError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            TranslateError::Empty => write!(f, "query translated to no statements"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// The translation result: one or more SQL statements whose combined cost
/// is the query's cost.
#[derive(Debug, Clone)]
pub struct TranslatedQuery {
    /// The statements (a lookup query is usually one; a publish query is
    /// one per subtree chain).
    pub statements: Vec<Statement>,
    /// Every named type instantiated while translating, recorded *before*
    /// world pruning — including union forks later dropped and publish
    /// chains. This is the query's invalidation footprint: if none of
    /// these types' tables changed between two mappings, re-translating
    /// the query yields the same statements over the same table
    /// definitions (pruned pass-through types can still fork worlds, so
    /// statement tables alone would be an unsound footprint).
    pub footprint: BTreeSet<String>,
}

impl TranslatedQuery {
    /// Render all statements as SQL, separated by `;`.
    pub fn to_sql(&self) -> String {
        self.statements
            .iter()
            .map(Statement::to_sql)
            .collect::<Vec<_>>()
            .join(";\n")
    }
}

/// A table instance in a world.
#[derive(Debug, Clone)]
struct Inst {
    ty: TypeName,
    parent: Option<usize>,
}

/// A position: a table instance plus a relative path inside it.
type Pos = (usize, Vec<String>);

/// One conjunctive interpretation of the query.
#[derive(Debug, Clone, Default)]
struct World {
    instances: Vec<Inst>,
    vars: HashMap<String, Pos>,
    filters: Vec<(Pos, CmpOp, Operand)>,
    value_joins: Vec<(Pos, Pos)>,
    columns_out: Vec<Pos>,
    publishes: Vec<usize>,
}

impl World {
    fn add_instance(&mut self, ty: TypeName, parent: Option<usize>) -> usize {
        self.instances.push(Inst { ty, parent });
        self.instances.len() - 1
    }
}

/// Translate a query against a mapping.
pub fn translate(mapping: &Mapping, query: &XQuery) -> Result<TranslatedQuery, TranslateError> {
    let mut t = Translator {
        mapping,
        touched: RefCell::new(BTreeSet::new()),
    };
    let mut worlds = vec![World::default()];
    t.process_flwr(&query.flwr, &mut worlds)?;
    t.finish(worlds)
}

struct Translator<'a> {
    mapping: &'a Mapping,
    /// Types instantiated in any world so far (pre-pruning) — becomes
    /// [`TranslatedQuery::footprint`].
    touched: RefCell<BTreeSet<String>>,
}

impl Translator<'_> {
    fn schema(&self) -> &legodb_schema::Schema {
        self.mapping.pschema.schema()
    }

    fn touch(&self, ty: &TypeName) {
        self.touched.borrow_mut().insert(ty.to_string());
    }

    fn process_flwr(&mut self, flwr: &Flwr, worlds: &mut Vec<World>) -> Result<(), TranslateError> {
        for binding in &flwr.bindings {
            let next = self.resolve_path_in_worlds(worlds, &binding.source, true)?;
            if next.is_empty() {
                return Err(TranslateError::UnresolvedBinding(
                    binding.source.to_string(),
                ));
            }
            *worlds = next
                .into_iter()
                .map(|(mut world, pos)| {
                    world.vars.insert(binding.var.clone(), pos);
                    world
                })
                .collect();
        }
        for pred in &flwr.predicates {
            let resolved = self.resolve_path_in_worlds(worlds, &pred.left, false)?;
            let mut next = Vec::new();
            for (world, pos) in resolved {
                if !self.is_column(&world, &pos) {
                    continue; // predicate on missing structure: no matches
                }
                match &pred.right {
                    Operand::Path(right_path) => {
                        let rhs =
                            self.resolve_path_in_worlds(&mut vec![world], right_path, false)?;
                        for (mut w2, rpos) in rhs {
                            if self.is_column(&w2, &rpos) {
                                w2.value_joins.push((pos.clone(), rpos));
                                next.push(w2);
                            }
                        }
                    }
                    other => {
                        let mut w = world;
                        w.filters.push((pos, pred.op, other.clone()));
                        next.push(w);
                    }
                }
            }
            if next.is_empty() {
                return Err(TranslateError::UnresolvedPredicate(pred.left.to_string()));
            }
            *worlds = next;
        }
        self.process_returns(&flwr.returns, worlds)?;
        Ok(())
    }

    fn process_returns(
        &mut self,
        items: &[ReturnItem],
        worlds: &mut Vec<World>,
    ) -> Result<(), TranslateError> {
        for item in items {
            match item {
                ReturnItem::Path(path) => {
                    // Resolution failures in a world skip the item there
                    // (XQuery returns empty for missing structure).
                    let resolved = self.resolve_path_in_worlds_lossy(worlds, path)?;
                    *worlds = resolved
                        .into_iter()
                        .map(|(mut world, pos)| {
                            match pos {
                                Some(pos) if self.is_column(&world, &pos) => {
                                    world.columns_out.push(pos)
                                }
                                Some((inst, _)) => world.publishes.push(inst),
                                None => {}
                            }
                            world
                        })
                        .collect();
                }
                ReturnItem::Element { items, .. } => self.process_returns(items, worlds)?,
                ReturnItem::Nested(flwr) => self.process_flwr(flwr, worlds)?,
            }
        }
        Ok(())
    }

    /// Resolve a path in every world, forking on union alternatives.
    /// `strict` drops worlds where the path is unresolvable.
    fn resolve_path_in_worlds(
        &self,
        worlds: &mut Vec<World>,
        path: &PathExpr,
        _strict: bool,
    ) -> Result<Vec<(World, Pos)>, TranslateError> {
        let mut out = Vec::new();
        for world in worlds.drain(..) {
            out.extend(self.resolve_path(world, path)?);
        }
        Ok(out)
    }

    /// Like [`Self::resolve_path_in_worlds`], but keeps worlds where the
    /// path is unresolvable, marking the position as `None`.
    fn resolve_path_in_worlds_lossy(
        &self,
        worlds: &mut Vec<World>,
        path: &PathExpr,
    ) -> Result<Vec<(World, Option<Pos>)>, TranslateError> {
        let mut out = Vec::new();
        for world in worlds.drain(..) {
            let resolved = self.resolve_path(world.clone(), path)?;
            if resolved.is_empty() {
                out.push((world, None));
            } else {
                out.extend(resolved.into_iter().map(|(w, p)| (w, Some(p))));
            }
        }
        Ok(out)
    }

    /// Resolve one path in one world, returning a forked world per
    /// alternative landing position.
    fn resolve_path(
        &self,
        world: World,
        path: &PathExpr,
    ) -> Result<Vec<(World, Pos)>, TranslateError> {
        // Establish the starting position.
        let (mut states, steps): (Vec<(World, Pos)>, &[String]) = match &path.root {
            PathRoot::Document => {
                let root_ty = self.mapping.root().clone();
                let root_def = self
                    .schema()
                    .get(&root_ty)
                    .ok_or_else(|| TranslateError::BadRoot(format!("{root_ty} is undefined")))?;
                // The first step must name the root element.
                let Some(first) = path.steps.first() else {
                    return Err(TranslateError::BadRoot(path.to_string()));
                };
                let matches_root = match root_def {
                    legodb_schema::Type::Element { name, .. } => name.matches(first),
                    _ => false,
                };
                if !matches_root {
                    return Err(TranslateError::BadRoot(path.to_string()));
                }
                let mut w = world;
                self.touch(&root_ty);
                let inst = w.add_instance(root_ty, None);
                (vec![(w, (inst, Vec::new()))], &path.steps[1..])
            }
            PathRoot::Var(v) => {
                let pos = world
                    .vars
                    .get(v)
                    .cloned()
                    .ok_or_else(|| TranslateError::UnboundVariable(v.clone()))?;
                (vec![(world, pos)], &path.steps[..])
            }
        };

        for step in steps {
            let mut next = Vec::new();
            for (world, (inst, rel)) in states {
                let owner_ty = world.instances[inst].ty.clone();
                for target in step_from(self.schema(), &owner_ty, &rel, step) {
                    let mut w = world.clone();
                    let mut cur = inst;
                    for ct in &target.chain {
                        self.touch(ct);
                        cur = w.add_instance(ct.clone(), Some(cur));
                    }
                    if let Some((tilde_rel, tag)) = &target.tag_filter {
                        w.filters.push((
                            (cur, tilde_rel.clone()),
                            CmpOp::Eq,
                            Operand::Str(tag.clone()),
                        ));
                    }
                    next.push((w, (cur, target.rel.clone())));
                }
            }
            states = next;
            if states.is_empty() {
                break;
            }
        }
        Ok(states)
    }

    /// Does a position address a scalar column?
    fn is_column(&self, world: &World, pos: &Pos) -> bool {
        let ty = &world.instances[pos.0].ty;
        self.mapping
            .table(ty)
            .is_some_and(|tm| tm.columns.contains_key(&pos.1))
    }

    /// Build the final statements.
    fn finish(&self, worlds: Vec<World>) -> Result<TranslatedQuery, TranslateError> {
        let mut base_blocks = Vec::new();
        let mut publish_statements = Vec::new();
        for world in &worlds {
            // A world contributes a base block only when some RETURN item
            // resolved to a column there: in a union alternative where the
            // requested fields don't exist, XQuery returns empty content.
            if !world.columns_out.is_empty() {
                if let Some(block) = self.world_to_block(world, None) {
                    base_blocks.push(block);
                }
            }
            for &publish in &world.publishes {
                let ty = world.instances[publish].ty.clone();
                // The instance's own columns.
                if let Some(block) = self.world_to_block(world, Some((publish, Vec::new()))) {
                    publish_statements.push(Statement::Select(block));
                }
                // One statement per descendant chain.
                for chain in descendant_chains(self.schema(), &ty) {
                    if let Some(block) = self.world_to_block(world, Some((publish, chain))) {
                        publish_statements.push(Statement::Select(block));
                    }
                }
            }
        }
        let mut statements = Vec::new();
        if !base_blocks.is_empty() {
            statements.push(Statement::from_blocks(base_blocks));
        }
        statements.extend(publish_statements);
        if statements.is_empty() {
            // No RETURN item resolved anywhere: the bindings and filters
            // still execute (a real engine must enumerate the matches), so
            // cost the bare blocks.
            let blocks: Vec<SpjQuery> = worlds
                .iter()
                .filter_map(|w| self.world_to_block(w, None))
                .collect();
            if blocks.is_empty() {
                return Err(TranslateError::Empty);
            }
            statements.push(Statement::from_blocks(blocks));
        }
        Ok(TranslatedQuery {
            statements,
            footprint: self.touched.borrow().clone(),
        })
    }

    /// Render one world (+ optional publish chain) as an SPJ block.
    fn world_to_block(
        &self,
        world: &World,
        publish: Option<(usize, Vec<TypeName>)>,
    ) -> Option<SpjQuery> {
        // Extend the instance list with the publish chain.
        let mut instances = world.instances.clone();
        let mut publish_tables: Vec<usize> = Vec::new();
        if let Some((anchor, chain)) = &publish {
            publish_tables.push(*anchor);
            let mut cur = *anchor;
            for ct in chain {
                self.touch(ct);
                instances.push(Inst {
                    ty: ct.clone(),
                    parent: Some(cur),
                });
                cur = instances.len() - 1;
                publish_tables.push(cur);
            }
        }

        // Keep only instances that matter: referenced by filters, joins,
        // outputs, publishes — or on the FK path between kept instances.
        let mut needed = vec![false; instances.len()];
        for (pos, _, _) in &world.filters {
            needed[pos.0] = true;
        }
        for (a, b) in &world.value_joins {
            needed[a.0] = true;
            needed[b.0] = true;
        }
        if publish.is_none() {
            for pos in &world.columns_out {
                needed[pos.0] = true;
            }
        }
        for &i in &publish_tables {
            needed[i] = true;
        }
        // Need every ancestor between two needed instances? FK edges join
        // child→parent; dropping an unneeded *interior* ancestor would
        // disconnect the query. Keep ancestors of needed nodes up to the
        // lowest needed ancestor — conservatively, keep ancestors that have
        // a needed descendant AND a needed ancestor... Simpler and sound:
        // keep all ancestors of needed instances except maximal unneeded
        // prefixes (pure root chains with one child and no role).
        let mut keep = needed.clone();
        for i in 0..instances.len() {
            if needed[i] {
                let mut p = instances[i].parent;
                while let Some(pi) = p {
                    keep[pi] = true;
                    p = instances[pi].parent;
                }
            }
        }
        // Prune unneeded pure-root prefixes: a kept instance that is not
        // needed, has no kept parent, and is the parent of exactly one kept
        // instance can be dropped (its join only multiplies by one row of
        // context — e.g. the IMDB root table).
        loop {
            let mut dropped = false;
            for i in 0..instances.len() {
                if keep[i] && !needed[i] && instances[i].parent.is_none_or(|p| !keep[p]) {
                    let children: Vec<usize> = (0..instances.len())
                        .filter(|&c| keep[c] && instances[c].parent == Some(i))
                        .collect();
                    if children.len() == 1 {
                        keep[i] = false;
                        dropped = true;
                    }
                }
            }
            if !dropped {
                break;
            }
        }
        if !keep.iter().any(|&k| k) {
            return None;
        }

        // Assign FROM positions.
        let mut from_index = vec![usize::MAX; instances.len()];
        let mut q = SpjQuery::default();
        for (i, inst) in instances.iter().enumerate() {
            if keep[i] {
                let tm = self.mapping.table(&inst.ty)?;
                from_index[i] = q.add_table(tm.table.clone(), format!("t{i}"));
            }
        }
        // FK join edges.
        for (i, inst) in instances.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let Some(parent) = inst.parent else { continue };
            if !keep[parent] {
                continue;
            }
            let child_tm = self.mapping.table(&inst.ty)?;
            let parent_ty = &instances[parent].ty;
            let parent_tm = self.mapping.table(parent_ty)?;
            let fk = child_tm.parent_fk.get(parent_ty)?;
            q.add_join(
                ColRef::new(from_index[parent], parent_tm.key.clone()),
                ColRef::new(from_index[i], fk.clone()),
            );
        }
        // Filters.
        for (pos, op, operand) in &world.filters {
            if !keep[pos.0] {
                continue;
            }
            let col = self.col_ref(&instances, &from_index, pos)?;
            let value = self.operand_value(&instances[pos.0].ty, &pos.1, operand);
            q.filters.push(FilterPred::Cmp {
                col,
                op: *op,
                value,
            });
        }
        // Value joins.
        for (a, b) in &world.value_joins {
            if !keep[a.0] || !keep[b.0] {
                continue;
            }
            let left = self.col_ref(&instances, &from_index, a)?;
            let right = self.col_ref(&instances, &from_index, b)?;
            q.add_join(left, right);
        }
        // Projection.
        match &publish {
            None => {
                for pos in &world.columns_out {
                    if keep[pos.0] {
                        if let Some(col) = self.col_ref(&instances, &from_index, pos) {
                            q.projection.push(col);
                        }
                    }
                }
            }
            Some(_) => {
                // Publish, Silkroute-style sorted-outer-union shape: the
                // leaf table of the chain contributes all its columns; the
                // tables above it contribute only their keys (enough to
                // stitch results back into a tree). Parent *data* columns
                // are emitted once, by the anchor's own statement.
                let (&leaf, ancestors) = publish_tables
                    .split_last()
                    // lint: allow(no-unwrap-in-lib) — the publish chain always contains at least the leaf table
                    .expect("publish chain is non-empty");
                for &i in ancestors {
                    let tm = self.mapping.table(&instances[i].ty)?;
                    q.projection
                        .push(ColRef::new(from_index[i], tm.key.clone()));
                }
                let tm = self.mapping.table(&instances[leaf].ty)?;
                let table = self.mapping.catalog.table(&tm.table)?;
                for col in &table.columns {
                    q.projection
                        .push(ColRef::new(from_index[leaf], col.name.clone()));
                }
            }
        }
        Some(q)
    }

    fn col_ref(&self, instances: &[Inst], from_index: &[usize], pos: &Pos) -> Option<ColRef> {
        let tm = self.mapping.table(&instances[pos.0].ty)?;
        let target = tm.columns.get(&pos.1)?;
        Some(ColRef::new(from_index[pos.0], target.column.clone()))
    }

    /// Concretize an operand into a [`Value`] appropriate for the target
    /// column (placeholders synthesize a mid-domain value: only the
    /// *selectivity* of the predicate matters for costing).
    fn operand_value(&self, ty: &TypeName, rel: &[String], operand: &Operand) -> Value {
        match operand {
            Operand::Int(n) => Value::Int(*n),
            Operand::Str(s) => Value::str(s.clone()),
            Operand::Placeholder(name) => {
                let kind = self
                    .mapping
                    .table(ty)
                    .and_then(|tm| tm.columns.get(rel))
                    .map(|c| c.kind);
                match kind {
                    Some(legodb_schema::ScalarKind::Integer) => {
                        // Mid-domain synthetic value.
                        let (min, max) = self
                            .mapping
                            .table(ty)
                            .and_then(|tm| {
                                let col = tm.columns.get(rel)?;
                                let table = self.mapping.catalog.table(&tm.table)?;
                                let stats = &table.column(&col.column)?.stats;
                                Some((stats.min.unwrap_or(0), stats.max.unwrap_or(1000)))
                            })
                            .unwrap_or((0, 1000));
                        Value::Int((min + max) / 2)
                    }
                    _ => Value::str(name.clone()),
                }
            }
            Operand::Path(_) => unreachable!("paths handled as value joins"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_xquery;
    use legodb_pschema::{rel, PSchema};
    use legodb_schema::parse_schema;
    use legodb_xml::stats::Statistics;

    fn imdb_mapping() -> Mapping {
        let schema = parse_schema(
            "type IMDB = imdb[ Show{0,*} ]
             type Show = show [ @type[ String ], title[ String ], year[ Integer ],
                                Aka{1,10}, Review{0,*}, ( Movie | TV ) ]
             type Aka = aka[ String ]
             type Review = review[ ~[ String ] ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]
             type TV = seasons[ Integer ], description[ String ], Episode{0,*}
             type Episode = episode[ name[ String ], guest_director[ String ] ]",
        )
        .unwrap();
        rel(&PSchema::try_new(schema).unwrap(), &Statistics::new())
    }

    fn sql_for(query: &str) -> String {
        let m = imdb_mapping();
        let q = parse_xquery(query).unwrap();
        translate(&m, &q).unwrap().to_sql()
    }

    #[test]
    fn lookup_query_translates_to_one_select() {
        let sql = sql_for(
            r#"FOR $v IN document("x")/imdb/show
               WHERE $v/title = c1
               RETURN $v/title, $v/year"#,
        );
        assert!(sql.contains("FROM Show"), "{sql}");
        assert!(sql.contains("title = 'c1'"), "{sql}");
        assert!(!sql.contains("IMDB"), "root table should be pruned: {sql}");
        assert!(!sql.contains("UNION"), "{sql}");
    }

    #[test]
    fn child_navigation_joins_via_fk() {
        let sql = sql_for(
            r#"FOR $v IN document("x")/imdb/show, $a IN $v/aka
               WHERE $v/title = c1
               RETURN $a"#,
        );
        assert!(sql.contains("Aka"), "{sql}");
        assert!(
            sql.contains("Show_id = ") && sql.contains("parent_Show"),
            "{sql}"
        );
    }

    #[test]
    fn union_alternative_fields_join_their_table() {
        // description only exists in the TV alternative.
        let sql = sql_for(
            r#"FOR $v IN document("x")/imdb/show
               WHERE $v/title = c1
               RETURN $v/description"#,
        );
        assert!(sql.contains("FROM Show"), "{sql}");
        assert!(sql.contains("TV"), "{sql}");
        assert!(sql.contains("description"), "{sql}");
    }

    #[test]
    fn wildcard_step_adds_tilde_filter() {
        let sql = sql_for(
            r#"FOR $v IN document("x")/imdb/show, $r IN $v/review
               WHERE $v/year = 1999
               RETURN $r/nyt"#,
        );
        assert!(sql.contains("= 'nyt'"), "{sql}");
    }

    #[test]
    fn publish_query_emits_one_statement_per_chain() {
        let m = imdb_mapping();
        let q = parse_xquery(r#"FOR $v IN document("x")/imdb/show RETURN $v"#).unwrap();
        let t = translate(&m, &q).unwrap();
        // Show itself + Aka, Review, Movie, TV, TV/Episode = 6 statements.
        assert_eq!(t.statements.len(), 6, "{}", t.to_sql());
        let sql = t.to_sql();
        assert!(sql.contains("Episode"), "{sql}");
    }

    #[test]
    fn nested_flwr_joins_into_parent() {
        let sql = sql_for(
            r#"FOR $v IN document("x")/imdb/show
               RETURN $v/title, $v/year,
                 FOR $v/episode $e
                 WHERE $e/guest_director = c4
                 RETURN $e/guest_director"#,
        );
        assert!(sql.contains("Episode"), "{sql}");
        assert!(sql.contains("guest_director = 'c4'"), "{sql}");
        // Chain passes through TV.
        assert!(sql.contains("TV"), "{sql}");
    }

    #[test]
    fn value_joins_between_variables() {
        let schema = parse_schema(
            "type IMDB = imdb[ Show{0,*}, Actor{0,*}, Director{0,*} ]
             type Show = show[ title[ String ] ]
             type Actor = actor[ name[ String ], Played{0,*} ]
             type Played = played[ title[ String ], year[ Integer ] ]
             type Director = director[ name[ String ], Directed{0,*} ]
             type Directed = directed[ title[ String ], year[ Integer ] ]",
        )
        .unwrap();
        let m = rel(&PSchema::try_new(schema).unwrap(), &Statistics::new());
        let q = parse_xquery(
            r#"FOR $i IN document("x")/imdb
                   $a IN $i/actor,
                   $m1 IN $a/played,
                   $d IN $i/director
                   $m2 IN $d/directed
               WHERE $a/name = $d/name AND $m1/title = $m2/title
               RETURN <result> $a/name $m1/title $m1/year </result>"#,
        )
        .unwrap();
        let t = translate(&m, &q).unwrap();
        let sql = t.to_sql();
        assert!(sql.contains("Actor"), "{sql}");
        assert!(sql.contains("Director"), "{sql}");
        assert!(
            sql.contains(".name = ") && sql.contains(".title = "),
            "{sql}"
        );
    }

    #[test]
    fn missing_return_fields_are_skipped_not_fatal() {
        // box_office on a TV-only path: resolvable via Movie, so fine; but
        // a bogus field is skipped.
        let sql = sql_for(
            r#"FOR $v IN document("x")/imdb/show
               WHERE $v/title = c1
               RETURN $v/title, $v/nonexistent_field"#,
        );
        assert!(sql.contains("title"), "{sql}");
    }

    #[test]
    fn unresolvable_binding_is_an_error() {
        let m = imdb_mapping();
        let q = parse_xquery(r#"FOR $v IN document("x")/imdb/bogus RETURN $v"#).unwrap();
        assert!(matches!(
            translate(&m, &q),
            Err(TranslateError::UnresolvedBinding(_))
        ));
    }

    #[test]
    fn bad_document_root_is_an_error() {
        let m = imdb_mapping();
        let q = parse_xquery(r#"FOR $v IN document("x")/wrong/show RETURN $v"#).unwrap();
        assert!(matches!(translate(&m, &q), Err(TranslateError::BadRoot(_))));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let m = imdb_mapping();
        let q = parse_xquery(r#"FOR $v IN $w/show RETURN $v"#).unwrap();
        assert!(matches!(
            translate(&m, &q),
            Err(TranslateError::UnboundVariable(_))
        ));
    }

    #[test]
    fn footprint_includes_pruned_and_publish_types() {
        let m = imdb_mapping();
        // The IMDB root table is pruned out of the SQL but must stay in
        // the footprint: a transformation rewriting it can change how
        // worlds fork even though it never appears in the statements.
        let q = parse_xquery(
            r#"FOR $v IN document("x")/imdb/show
               WHERE $v/title = c1
               RETURN $v/description"#,
        )
        .unwrap();
        let t = translate(&m, &q).unwrap();
        assert!(!t.to_sql().contains("IMDB"), "{}", t.to_sql());
        assert!(t.footprint.contains("IMDB"), "{:?}", t.footprint);
        assert!(t.footprint.contains("Show"), "{:?}", t.footprint);
        assert!(t.footprint.contains("TV"), "{:?}", t.footprint);
        // Publish queries record every descendant chain they emit.
        let q = parse_xquery(r#"FOR $v IN document("x")/imdb/show RETURN $v"#).unwrap();
        let t = translate(&m, &q).unwrap();
        for ty in ["Show", "Aka", "Review", "Movie", "TV", "Episode"] {
            assert!(t.footprint.contains(ty), "missing {ty}: {:?}", t.footprint);
        }
    }

    #[test]
    fn placeholder_on_integer_column_synthesizes_integer() {
        let sql = sql_for(
            r#"FOR $v IN document("x")/imdb/show
               WHERE $v/year = c1
               RETURN $v/title"#,
        );
        // mid-domain integer, not the string 'c1'
        assert!(!sql.contains("'c1'"), "{sql}");
    }
}
