//! Path resolution against a storage mapping: where does one child step
//! land, starting from a position inside a type?
//!
//! A position is `(owner type, relative element path)`. A step can stay in
//! the owner's table (an inlined element → longer relative path), cross
//! into a child table (a `Ref` whose element matches → chain extension), or
//! pass *through* sequence-shaped types (`Movie`, `TV`) that anchor at the
//! parent's element. Wildcard positions match any step name and induce an
//! equality filter on the `tilde` column.

use legodb_pschema::mapping::{ANY_STEP, TILDE_STEP};
use legodb_schema::{NameTest, Schema, Type, TypeName};
use std::collections::BTreeSet;

/// Where one step lands.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTarget {
    /// Types appended to the join chain (empty = same table).
    pub chain: Vec<TypeName>,
    /// New relative path within the final owner.
    pub rel: Vec<String>,
    /// Required filter on a wildcard name column:
    /// `(tilde column's relative path, required tag)`.
    pub tag_filter: Option<(Vec<String>, String)>,
}

/// The content term of `owner_def` at relative path `rel`.
/// Returns `None` when the path does not navigate to a term.
pub fn term_at<'a>(owner_def: &'a Type, rel: &[String]) -> Option<&'a Type> {
    let mut term = match owner_def {
        Type::Element { content, .. } => content.as_ref(),
        other => other,
    };
    for step in rel {
        let element = if step == ANY_STEP {
            find_element(term, &|nt| nt.is_wildcard())?
        } else {
            find_element(term, &|nt| nt.literal() == Some(step.as_str()))?
        };
        let Type::Element { content, .. } = element else {
            return None;
        };
        term = content;
    }
    Some(term)
}

/// Find an element node in the column world of a term (crossing sequences
/// and the optional layer, not crossing other elements or the named layer).
fn find_element<'a>(term: &'a Type, pred: &dyn Fn(&NameTest) -> bool) -> Option<&'a Type> {
    match term {
        Type::Element { name, .. } if pred(name) => Some(term),
        Type::Seq(items) => items.iter().find_map(|t| find_element(t, pred)),
        Type::Rep { inner, occurs, .. } if !occurs.multi_valued() => find_element(inner, pred),
        _ => None,
    }
}

/// The type references reachable in a term without entering nested
/// elements (those belong to deeper relative paths).
fn ref_sites(term: &Type, out: &mut Vec<TypeName>) {
    match term {
        Type::Ref(n) => out.push(n.clone()),
        Type::Seq(items) | Type::Choice(items) => items.iter().for_each(|t| ref_sites(t, out)),
        Type::Rep { inner, .. } => ref_sites(inner, out),
        _ => {}
    }
}

/// Resolve one child step from `(owner, rel)`. Multiple targets arise from
/// union alternatives.
pub fn step_from(schema: &Schema, owner: &TypeName, rel: &[String], step: &str) -> Vec<StepTarget> {
    let mut visiting = BTreeSet::new();
    step_from_guarded(schema, owner, rel, step, &mut visiting)
}

fn step_from_guarded(
    schema: &Schema,
    owner: &TypeName,
    rel: &[String],
    step: &str,
    visiting: &mut BTreeSet<TypeName>,
) -> Vec<StepTarget> {
    let Some(owner_def) = schema.get(owner) else {
        return Vec::new();
    };
    let Some(term) = term_at(owner_def, rel) else {
        return Vec::new();
    };
    let mut targets = Vec::new();

    // 1. Inlined element with this literal name.
    if find_element(term, &|nt| nt.literal() == Some(step)).is_some() {
        let mut new_rel = rel.to_vec();
        new_rel.push(step.to_string());
        targets.push(StepTarget {
            chain: Vec::new(),
            rel: new_rel,
            tag_filter: None,
        });
    }
    // 2. Inlined wildcard element admitting this name.
    if find_element(term, &|nt| nt.is_wildcard() && nt.matches(step)).is_some() {
        let mut new_rel = rel.to_vec();
        new_rel.push(ANY_STEP.to_string());
        let mut tilde = new_rel.clone();
        tilde.push(TILDE_STEP.to_string());
        targets.push(StepTarget {
            chain: Vec::new(),
            rel: new_rel,
            tag_filter: Some((tilde, step.to_string())),
        });
    }

    // 3. Referenced child types.
    let mut refs = Vec::new();
    ref_sites(term, &mut refs);
    for ct in refs {
        let Some(ct_def) = schema.get(&ct) else {
            continue;
        };
        match ct_def {
            Type::Element {
                name: NameTest::Name(n),
                ..
            } if n == step => {
                targets.push(StepTarget {
                    chain: vec![ct.clone()],
                    rel: Vec::new(),
                    tag_filter: None,
                });
            }
            Type::Element { name, .. } if name.is_wildcard() && name.matches(step) => {
                targets.push(StepTarget {
                    chain: vec![ct.clone()],
                    rel: Vec::new(),
                    tag_filter: Some((vec![TILDE_STEP.to_string()], step.to_string())),
                });
            }
            Type::Element { .. } => {}
            _ => {
                // Sequence-shaped type: step through it (its instance is
                // anchored at the parent's element).
                if visiting.insert(ct.clone()) {
                    for sub in step_from_guarded(schema, &ct, &[], step, visiting) {
                        let mut chain = vec![ct.clone()];
                        chain.extend(sub.chain);
                        targets.push(StepTarget {
                            chain,
                            rel: sub.rel,
                            tag_filter: sub.tag_filter,
                        });
                    }
                    visiting.remove(&ct);
                }
            }
        }
    }
    targets
}

/// All descendant type chains under a type (excluding the empty chain),
/// used to compile `RETURN $v` into one query per chain. Recursion is cut
/// when a type repeats within a chain; chains are depth-capped.
pub fn descendant_chains(schema: &Schema, ty: &TypeName) -> Vec<Vec<TypeName>> {
    const MAX_DEPTH: usize = 8;
    let mut out = Vec::new();
    let mut path = Vec::new();
    fn dfs(schema: &Schema, ty: &TypeName, path: &mut Vec<TypeName>, out: &mut Vec<Vec<TypeName>>) {
        if path.len() >= MAX_DEPTH {
            return;
        }
        let Some(def) = schema.get(ty) else { return };
        for child in def.referenced_types() {
            if path.contains(&child) || &child == ty {
                continue;
            }
            path.push(child.clone());
            out.push(path.clone());
            dfs(schema, &child, path, out);
            path.pop();
        }
    }
    dfs(schema, ty, &mut path, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use legodb_schema::parse_schema;

    fn imdb() -> Schema {
        parse_schema(
            "type IMDB = imdb[ Show{0,*} ]
             type Show = show [ @type[ String ], title[ String ], year[ Integer ],
                                Aka{1,10}, Review{0,*}, ( Movie | TV ) ]
             type Aka = aka[ String ]
             type Review = review[ ~[ String ] ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]
             type TV = seasons[ Integer ], description[ String ], Episode{0,*}
             type Episode = episode[ name[ String ], guest_director[ String ] ]",
        )
        .unwrap()
    }

    fn step(owner: &str, rel: &[&str], step_name: &str) -> Vec<StepTarget> {
        let schema = imdb();
        let rel: Vec<String> = rel.iter().map(|s| s.to_string()).collect();
        step_from(&schema, &TypeName::new(owner), &rel, step_name)
    }

    #[test]
    fn inlined_scalar_step() {
        let t = step("Show", &[], "title");
        assert_eq!(t.len(), 1);
        assert!(t[0].chain.is_empty());
        assert_eq!(t[0].rel, ["title"]);
    }

    #[test]
    fn child_table_step() {
        let t = step("Show", &[], "aka");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].chain, vec![TypeName::new("Aka")]);
        assert!(t[0].rel.is_empty());
    }

    #[test]
    fn step_through_sequence_types() {
        // box_office lives in the Movie alternative.
        let t = step("Show", &[], "box_office");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].chain, vec![TypeName::new("Movie")]);
        assert_eq!(t[0].rel, ["box_office"]);
        // episode is two levels deep: TV, then Episode.
        let t = step("Show", &[], "episode");
        assert_eq!(t.len(), 1);
        assert_eq!(
            t[0].chain,
            vec![TypeName::new("TV"), TypeName::new("Episode")]
        );
    }

    #[test]
    fn wildcard_step_induces_tag_filter() {
        // review's content is ~[String]: stepping `nyt` under review.
        let t = step("Review", &[], "nyt");
        assert_eq!(t.len(), 1);
        assert!(t[0].chain.is_empty());
        assert_eq!(t[0].rel, [ANY_STEP]);
        let (tilde_path, tag) = t[0].tag_filter.clone().unwrap();
        assert_eq!(tilde_path, [ANY_STEP, TILDE_STEP]);
        assert_eq!(tag, "nyt");
    }

    #[test]
    fn unresolvable_step_returns_empty() {
        assert!(step("Show", &[], "bogus").is_empty());
        // description exists only via TV.
        let t = step("Show", &[], "description");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].chain, vec![TypeName::new("TV")]);
    }

    #[test]
    fn term_navigation() {
        let schema = imdb();
        let show = schema.get_str("Show").unwrap();
        let term = term_at(show, &["title".to_string()]).unwrap();
        assert!(matches!(term, Type::Scalar { .. }));
        assert!(term_at(show, &["bogus".to_string()]).is_none());
    }

    #[test]
    fn descendant_chains_enumerate_subtree_tables() {
        let schema = imdb();
        let chains = descendant_chains(&schema, &TypeName::new("Show"));
        let rendered: Vec<String> = chains
            .iter()
            .map(|c| c.iter().map(|t| t.as_str()).collect::<Vec<_>>().join("/"))
            .collect();
        assert!(rendered.contains(&"Aka".to_string()));
        assert!(rendered.contains(&"Review".to_string()));
        assert!(rendered.contains(&"Movie".to_string()));
        assert!(rendered.contains(&"TV".to_string()));
        assert!(rendered.contains(&"TV/Episode".to_string()));
        assert_eq!(chains.len(), 5, "{rendered:?}");
    }

    #[test]
    fn recursive_schemas_have_bounded_chains() {
        let schema = parse_schema(
            "type Doc = doc[ AnyElement{0,*} ]
             type AnyElement = ~[ (AnyElement | AnyScalar){0,*} ]
             type AnyScalar = String",
        )
        .unwrap();
        let chains = descendant_chains(&schema, &TypeName::new("Doc"));
        // AnyElement, AnyElement/AnyScalar — recursion cut on repeat.
        assert!(chains.len() >= 2);
        assert!(chains.iter().all(|c| c.len() <= 8));
    }
}
