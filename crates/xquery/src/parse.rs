//! Recursive-descent parser for the FLWR subset.
//!
//! Accepts both binding orders seen in the paper: `FOR $v IN path` and the
//! appendix's `FOR path $v` shorthand (e.g. `FOR $v/episode $e`). Keywords
//! are case-insensitive; RETURN items may be separated by commas or
//! whitespace.

use crate::ast::{BindingDef, Flwr, Operand, PathExpr, PathRoot, Predicate, ReturnItem, XQuery};
use legodb_relational::CmpOp;
use std::fmt;

/// Hard input limits for the XQuery parser: nested FLWR expressions and
/// element constructors recurse, so depth must be bounded to keep hostile
/// queries from overflowing the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XQueryLimits {
    /// Maximum nesting depth of FLWR expressions and constructors.
    pub max_depth: usize,
    /// Maximum input length in bytes (checked before parsing starts).
    pub max_input_bytes: usize,
}

impl Default for XQueryLimits {
    fn default() -> Self {
        XQueryLimits {
            max_depth: 64,
            max_input_bytes: 1 << 20,
        }
    }
}

/// What kind of parse failure occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XQueryErrorKind {
    /// Lexical or grammatical failure.
    Syntax,
    /// Nesting exceeded the configured depth limit.
    TooDeep {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The input is larger than the configured byte limit.
    InputTooLarge {
        /// The limit that was exceeded.
        limit: usize,
        /// The actual input length in bytes.
        actual: usize,
    },
}

/// A parse failure with an offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XQueryParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// Explanation.
    pub message: String,
    /// Structured failure class.
    pub kind: XQueryErrorKind,
}

impl fmt::Display for XQueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XQuery syntax error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XQueryParseError {}

/// Parse one query under the default [`XQueryLimits`].
pub fn parse_xquery(src: &str) -> Result<XQuery, XQueryParseError> {
    parse_xquery_with_limits(src, &XQueryLimits::default())
}

/// Parse one query under explicit [`XQueryLimits`].
pub fn parse_xquery_with_limits(
    src: &str,
    limits: &XQueryLimits,
) -> Result<XQuery, XQueryParseError> {
    if src.len() > limits.max_input_bytes {
        return Err(XQueryParseError {
            offset: 0,
            message: format!(
                "input of {} bytes exceeds the limit of {}",
                src.len(),
                limits.max_input_bytes
            ),
            kind: XQueryErrorKind::InputTooLarge {
                limit: limits.max_input_bytes,
                actual: src.len(),
            },
        });
    }
    let mut p = P {
        src,
        pos: 0,
        limits: *limits,
        depth: 0,
    };
    let flwr = p.parse_flwr()?;
    p.ws();
    if !p.eof() {
        return Err(p.err("trailing input after query"));
    }
    Ok(XQuery { flwr })
}

struct P<'a> {
    src: &'a str,
    pos: usize,
    limits: XQueryLimits,
    depth: usize,
}

impl P<'_> {
    fn err(&self, message: impl Into<String>) -> XQueryParseError {
        XQueryParseError {
            offset: self.pos,
            message: message.into(),
            kind: XQueryErrorKind::Syntax,
        }
    }

    /// Enter one nesting level (FLWR or constructor); errors when the
    /// depth limit is exceeded. Callers must pair with `leave`.
    fn enter(&mut self) -> Result<(), XQueryParseError> {
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            return Err(XQueryParseError {
                offset: self.pos,
                message: format!(
                    "nesting exceeds the depth limit of {}",
                    self.limits.max_depth
                ),
                kind: XQueryErrorKind::TooDeep {
                    limit: self.limits.max_depth,
                },
            });
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.ws();
        let r = self.rest();
        r.len() >= kw.len()
            && r[..kw.len()].eq_ignore_ascii_case(kw)
            && !r[kw.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, XQueryParseError> {
        self.ws();
        let r = self.rest();
        let end = r
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(r.len());
        if end == 0 {
            return Err(self.err("expected an identifier"));
        }
        let out = r[..end].to_string();
        self.pos += end;
        Ok(out)
    }

    fn parse_flwr(&mut self) -> Result<Flwr, XQueryParseError> {
        self.enter()?;
        if !self.eat_keyword("FOR") {
            return Err(self.err("expected FOR"));
        }
        let mut bindings = vec![self.parse_binding()?];
        loop {
            let checkpoint = self.pos;
            let had_comma = self.eat(",");
            // Further bindings may follow with or without a comma (the
            // appendix formats them one per line, comma-optional).
            if self.peek_keyword("WHERE") || self.peek_keyword("RETURN") {
                if had_comma {
                    self.pos = checkpoint;
                }
                break;
            }
            match self.parse_binding() {
                Ok(b) => bindings.push(b),
                Err(_) => {
                    self.pos = checkpoint;
                    break;
                }
            }
        }
        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            predicates.push(self.parse_predicate()?);
            while self.eat_keyword("AND") {
                predicates.push(self.parse_predicate()?);
            }
        }
        if !self.eat_keyword("RETURN") {
            return Err(self.err("expected RETURN"));
        }
        let returns = self.parse_return_items()?;
        self.leave();
        Ok(Flwr {
            bindings,
            predicates,
            returns,
        })
    }

    fn parse_binding(&mut self) -> Result<BindingDef, XQueryParseError> {
        self.ws();
        if self.rest().starts_with('$') {
            let start = self.pos;
            let path = self.parse_path()?;
            // `$v IN path` (variable first) or `$v/episode $e` (path first).
            if self.eat_keyword("IN") {
                let PathRoot::Var(var) = path.root else {
                    return Err(self.err("binding variable must be a plain $var"));
                };
                if !path.steps.is_empty() {
                    self.pos = start;
                    return Err(self.err("binding variable must be a plain $var"));
                }
                let source = self.parse_path()?;
                return Ok(BindingDef { var, source });
            }
            // Path-first shorthand: the next token is the bound variable.
            self.ws();
            if self.rest().starts_with('$') {
                self.pos += 1;
                let var = self.ident()?;
                return Ok(BindingDef { var, source: path });
            }
            Err(self.err("expected IN or a binding variable after path"))
        } else {
            Err(self.err("expected a $variable binding"))
        }
    }

    fn parse_path(&mut self) -> Result<PathExpr, XQueryParseError> {
        self.ws();
        let root = if self.eat_keyword("document") {
            if !self.eat("(") {
                return Err(self.err("expected ( after document"));
            }
            // Skip the quoted document name.
            self.ws();
            if self.eat("\"") {
                match self.rest().find('"') {
                    Some(i) => self.pos += i + 1,
                    None => return Err(self.err("unterminated document name")),
                }
            }
            if !self.eat(")") {
                return Err(self.err("expected ) after document name"));
            }
            PathRoot::Document
        } else if self.eat("$") {
            PathRoot::Var(self.ident()?)
        } else {
            return Err(self.err("expected a path (document(...) or $var)"));
        };
        let mut steps = Vec::new();
        while self.eat("/") {
            steps.push(self.ident()?);
        }
        Ok(PathExpr { root, steps })
    }

    fn parse_predicate(&mut self) -> Result<Predicate, XQueryParseError> {
        let left = self.parse_path()?;
        self.ws();
        let op = if self.eat("<=") {
            CmpOp::Le
        } else if self.eat(">=") {
            CmpOp::Ge
        } else if self.eat("!=") || self.eat("<>") {
            CmpOp::Ne
        } else if self.eat("=") {
            CmpOp::Eq
        } else if self.eat("<") {
            CmpOp::Lt
        } else if self.eat(">") {
            CmpOp::Gt
        } else {
            return Err(self.err("expected a comparison operator"));
        };
        let right = self.parse_operand()?;
        Ok(Predicate { left, op, right })
    }

    fn parse_operand(&mut self) -> Result<Operand, XQueryParseError> {
        self.ws();
        let r = self.rest();
        if r.starts_with('$') || r.len() >= 9 && r[..9].eq_ignore_ascii_case("document(") {
            return Ok(Operand::Path(self.parse_path()?));
        }
        if r.starts_with('"') || r.starts_with('\'') {
            // lint: allow(no-unwrap-in-lib) — starts_with ensured the string is non-empty
            let quote = r.chars().next().expect("nonempty");
            self.pos += 1;
            match self.rest().find(quote) {
                Some(i) => {
                    let s = self.rest()[..i].to_string();
                    self.pos += i + 1;
                    return Ok(Operand::Str(s));
                }
                None => return Err(self.err("unterminated string literal")),
            }
        }
        if r.starts_with(|c: char| c.is_ascii_digit() || c == '-') {
            let end = r
                .char_indices()
                .find(|&(i, c)| !(c.is_ascii_digit() || (c == '-' && i == 0)))
                .map(|(i, _)| i)
                .unwrap_or(r.len());
            let n: i64 = r[..end]
                .parse()
                .map_err(|e| self.err(format!("bad integer literal: {e}")))?;
            self.pos += end;
            return Ok(Operand::Int(n));
        }
        // Bare identifier: a named constant placeholder (c1, c2, ...).
        Ok(Operand::Placeholder(self.ident()?))
    }

    fn parse_return_items(&mut self) -> Result<Vec<ReturnItem>, XQueryParseError> {
        let mut items = Vec::new();
        loop {
            self.ws();
            let at_close = self.rest().is_empty() || self.rest().starts_with("</");
            if at_close {
                break;
            }
            if self.rest().starts_with('<') {
                items.push(self.parse_constructor()?);
            } else if self.peek_keyword("FOR") {
                items.push(ReturnItem::Nested(self.parse_flwr()?));
            } else if self.rest().starts_with('$') {
                items.push(ReturnItem::Path(self.parse_path()?));
            } else {
                break;
            }
            self.eat(",");
        }
        if items.is_empty() {
            return Err(self.err("RETURN clause has no items"));
        }
        Ok(items)
    }

    fn parse_constructor(&mut self) -> Result<ReturnItem, XQueryParseError> {
        self.enter()?;
        if !self.eat("<") {
            return Err(self.err("expected <"));
        }
        let name = self.ident()?;
        if !self.eat(">") {
            return Err(self.err("expected > in constructor"));
        }
        let items = self.parse_return_items()?;
        if !self.eat("</") {
            return Err(self.err("expected closing tag"));
        }
        let close = self.ident()?;
        if close != name {
            return Err(self.err(format!("constructor <{name}> closed by </{close}>")));
        }
        if !self.eat(">") {
            return Err(self.err("expected > in closing tag"));
        }
        self.leave();
        Ok(ReturnItem::Element { name, items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1_lookup() {
        let q = parse_xquery(
            r#"FOR $v IN document("imdbdata")/imdb/show
               WHERE $v/title = c1
               RETURN $v/title, $v/year, $v/type"#,
        )
        .unwrap();
        assert_eq!(q.flwr.bindings.len(), 1);
        assert_eq!(q.flwr.bindings[0].var, "v");
        assert_eq!(q.flwr.bindings[0].source.steps, ["imdb", "show"]);
        assert_eq!(q.flwr.predicates.len(), 1);
        assert!(matches!(
            q.flwr.predicates[0].right,
            Operand::Placeholder(_)
        ));
        assert_eq!(q.flwr.returns.len(), 3);
    }

    #[test]
    fn parses_integer_and_string_literals() {
        let q = parse_xquery(
            r#"FOR $v IN document("x")/imdb/show WHERE $v/year = 1999 RETURN $v/title"#,
        )
        .unwrap();
        assert!(matches!(q.flwr.predicates[0].right, Operand::Int(1999)));
        let q = parse_xquery(
            r#"FOR $v IN document("x")/imdb/show WHERE $v/title = "The Fugitive" RETURN $v/year"#,
        )
        .unwrap();
        assert!(matches!(&q.flwr.predicates[0].right, Operand::Str(s) if s == "The Fugitive"));
    }

    #[test]
    fn parses_publish_all() {
        let q = parse_xquery(r#"FOR $v IN document("x")/imdb/show RETURN $v"#).unwrap();
        assert!(q.flwr.predicates.is_empty());
        assert!(matches!(&q.flwr.returns[0], ReturnItem::Path(p) if p.steps.is_empty()));
    }

    #[test]
    fn parses_multi_variable_joins() {
        // Q12-style: actors who also directed.
        let q = parse_xquery(
            r#"FOR $i IN document("x")/imdb
                   $a IN $i/actor,
                   $m1 IN $a/played,
                   $d IN $i/director
                   $m2 IN $d/directed
               WHERE $a/name = $d/name AND $m1/title = $m2/title
               RETURN <result> $a/name $m1/title $m1/year </result>"#,
        )
        .unwrap();
        assert_eq!(q.flwr.bindings.len(), 5);
        assert_eq!(q.flwr.predicates.len(), 2);
        assert!(matches!(&q.flwr.predicates[0].right, Operand::Path(_)));
        assert!(
            matches!(&q.flwr.returns[0], ReturnItem::Element { name, items }
            if name == "result" && items.len() == 3)
        );
    }

    #[test]
    fn parses_nested_flwr_with_path_first_binding() {
        // Q7-style: nested FOR with the appendix's `FOR $v/episode $e` order.
        let q = parse_xquery(
            r#"FOR $v IN document("x")/imdb/show
               RETURN $v/title, $v/year,
                 FOR $v/episode $e
                 WHERE $e/guest_director = c1
                 RETURN $e/guest_director"#,
        )
        .unwrap();
        assert_eq!(q.flwr.returns.len(), 3);
        let ReturnItem::Nested(inner) = &q.flwr.returns[2] else {
            panic!("expected nested FLWR, got {:?}", q.flwr.returns[2]);
        };
        assert_eq!(inner.bindings[0].var, "e");
        assert_eq!(inner.bindings[0].source.steps, ["episode"]);
    }

    #[test]
    fn parses_constructor_with_nested_for() {
        let q = parse_xquery(
            r#"FOR $a IN document("x")/imdb/actor
               RETURN <result>
                  $a/name
                  FOR $a/played $p WHERE $p/character = c1
                  RETURN $p/order_of_appearance
               </result>"#,
        )
        .unwrap();
        let ReturnItem::Element { items, .. } = &q.flwr.returns[0] else {
            panic!()
        };
        assert_eq!(items.len(), 2);
        assert!(matches!(items[1], ReturnItem::Nested(_)));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_xquery("WHERE x RETURN y").is_err());
        assert!(parse_xquery("FOR $v IN document(\"x\")/a WHERE RETURN $v").is_err());
        assert!(parse_xquery("FOR $v IN document(\"x\")/a RETURN").is_err());
        assert!(parse_xquery("FOR $v IN document(\"x\")/a RETURN <r> $v </wrong>").is_err());
    }

    #[test]
    fn deep_flwr_nesting_is_rejected_not_overflowed() {
        let depth = 10_000;
        let src = format!("{}$v", "FOR $v IN document(\"x\")/a RETURN ".repeat(depth));
        let err = parse_xquery(&src).unwrap_err();
        assert!(matches!(err.kind, XQueryErrorKind::TooDeep { limit: 64 }));
    }

    #[test]
    fn deep_constructor_nesting_is_rejected() {
        let depth = 10_000;
        let src = format!(
            "FOR $v IN document(\"x\")/a RETURN {}$v{}",
            "<r> ".repeat(depth),
            " </r>".repeat(depth)
        );
        let err = parse_xquery(&src).unwrap_err();
        assert!(matches!(err.kind, XQueryErrorKind::TooDeep { limit: 64 }));
    }

    #[test]
    fn nesting_under_the_limit_parses() {
        let limits = XQueryLimits::default();
        // The outer FLWR takes one level; constructors take the rest.
        let depth = limits.max_depth - 1;
        let src = format!(
            "FOR $v IN document(\"x\")/a RETURN {}$v{}",
            "<r> ".repeat(depth),
            " </r>".repeat(depth)
        );
        assert!(parse_xquery_with_limits(&src, &limits).is_ok());
    }

    #[test]
    fn oversized_input_is_rejected_upfront() {
        let limits = XQueryLimits {
            max_input_bytes: 32,
            ..Default::default()
        };
        let src = format!(
            "FOR $v IN document(\"x\")/a WHERE $v/t = \"{}\" RETURN $v",
            "x".repeat(64)
        );
        let err = parse_xquery_with_limits(&src, &limits).unwrap_err();
        assert!(matches!(
            err.kind,
            XQueryErrorKind::InputTooLarge { limit: 32, .. }
        ));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q =
            parse_xquery(r#"for $v in document("x")/imdb/show where $v/year = 1 return $v/title"#)
                .unwrap();
        assert_eq!(q.flwr.bindings.len(), 1);
    }
}
