//! # legodb-xquery
//!
//! The XQuery side of LegoDB: a parser for the FLWR subset the paper's
//! workloads use (Appendix C, queries Q1–Q20), and the translation of
//! those queries into relational statements over a given storage mapping
//! (§3.3 — the paper delegates this to Silkroute/XPERANTO-style
//! algorithms [10, 3]; we implement the needed subset directly).
//!
//! Supported query shape:
//!
//! ```text
//! FOR $v IN document("imdb")/imdb/show, $a IN $v/aka
//! WHERE $v/year = 1999 AND $v/title = $a/title
//! RETURN $v/title, $v/year, $v/nyt_reviews
//! ```
//!
//! plus nested `FOR ... WHERE ... RETURN` inside RETURN bodies and
//! `<result> ... </result>` element constructors — enough for every query
//! in the paper.
//!
//! ## Translation model
//!
//! Each variable binds to a set of *resolutions* against the mapping: a
//! chain of types from the root joined by `parent_T` foreign keys, plus a
//! residual element path for positions inlined into a table. Unions in the
//! schema (e.g. a union-distributed `Show`) multiply resolutions, so one
//! XQuery becomes a `UNION ALL` of SPJ blocks. `RETURN $v` (publishing a
//! whole subtree) is compiled Silkroute-style into one SPJ block per
//! descendant-table chain; the statement set's cost is the sum over
//! blocks.

#![forbid(unsafe_code)]

pub mod ast;
pub mod parse;
pub mod resolve;
pub mod translate;

pub use ast::{Flwr, PathExpr, Predicate, ReturnItem, XQuery};
pub use parse::{
    parse_xquery, parse_xquery_with_limits, XQueryErrorKind, XQueryLimits, XQueryParseError,
};
pub use translate::{translate, TranslateError, TranslatedQuery};
