//! The XQuery FLWR AST covering the paper's workloads.

use legodb_relational::CmpOp;
use std::fmt;

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct XQuery {
    /// The outermost FLWR block.
    pub flwr: Flwr,
}

/// A `FOR ... WHERE ... RETURN ...` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Flwr {
    /// Variable bindings, in order.
    pub bindings: Vec<BindingDef>,
    /// Conjunctive WHERE predicates.
    pub predicates: Vec<Predicate>,
    /// RETURN items.
    pub returns: Vec<ReturnItem>,
}

/// One `$var IN path` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct BindingDef {
    /// Variable name without the `$`.
    pub var: String,
    /// Source path.
    pub source: PathExpr,
}

/// Where a path starts.
#[derive(Debug, Clone, PartialEq)]
pub enum PathRoot {
    /// `document("...")` — the document root.
    Document,
    /// `$v` — a bound variable.
    Var(String),
}

/// A path expression: a root plus child steps.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// Starting point.
    pub root: PathRoot,
    /// Child element steps (attributes are spelled as plain names in the
    /// paper's queries, e.g. `$v/type`).
    pub steps: Vec<String>,
}

impl PathExpr {
    /// A path rooted at a variable.
    pub fn var(name: impl Into<String>, steps: impl IntoIterator<Item = &'static str>) -> Self {
        PathExpr {
            root: PathRoot::Var(name.into()),
            steps: steps.into_iter().map(str::to_string).collect(),
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.root {
            PathRoot::Document => write!(f, "document(\"…\")")?,
            PathRoot::Var(v) => write!(f, "${v}")?,
        }
        for s in &self.steps {
            write!(f, "/{s}")?;
        }
        Ok(())
    }
}

/// The right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// An integer literal.
    Int(i64),
    /// A string literal.
    Str(String),
    /// A named constant placeholder (`c1`, `c4` in the paper). Its value is
    /// synthesized at translation time from the target column's type.
    Placeholder(String),
    /// Another path (a value join).
    Path(PathExpr),
}

/// A WHERE predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left path.
    pub left: PathExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Operand,
}

/// An item in a RETURN clause.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnItem {
    /// A path — a column when it lands on a scalar, a subtree publish when
    /// it lands on structure (`RETURN $v`).
    Path(PathExpr),
    /// An element constructor `<result> ... </result>`.
    Element {
        /// Constructor tag.
        name: String,
        /// Contained items.
        items: Vec<ReturnItem>,
    },
    /// A nested FLWR block.
    Nested(Flwr),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_display() {
        let p = PathExpr::var("v", ["title"]);
        assert_eq!(p.to_string(), "$v/title");
        let p = PathExpr {
            root: PathRoot::Document,
            steps: vec!["imdb".into(), "show".into()],
        };
        assert_eq!(p.to_string(), "document(\"…\")/imdb/show");
    }
}
