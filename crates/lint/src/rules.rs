//! The rule engine: token-stream checks for the workspace's determinism
//! and robustness invariants, plus the `// lint: allow(<rule>) — <why>`
//! escape hatch.
//!
//! Every rule here pins an invariant an earlier PR established (see
//! DESIGN.md §12 for the rule-by-rule rationale). Rules work on the lexed
//! token stream from [`crate::lexer`], with `#[cfg(test)]` items masked
//! out, so string literals, comments, and doc-examples never trip them.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeMap;
use std::fmt;

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under some `src/` (not `src/bin/`, not `main.rs`).
    Lib,
    /// Binary code: `src/main.rs` or `src/bin/*.rs`.
    Bin,
    /// Integration tests and benches: `tests/`, `benches/`.
    Test,
    /// Runnable examples: `examples/`.
    Example,
}

/// One structured finding: `file:line:col`, a stable rule id, a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

impl Diagnostic {
    /// Render as one JSON-lines record via `legodb_util::json`.
    pub fn to_json(&self) -> String {
        legodb_util::json::JsonObject::new()
            .str("path", &self.path)
            .u64("line", u64::from(self.line))
            .u64("col", u64::from(self.col))
            .str("rule", self.rule)
            .str("message", &self.message)
            .finish()
    }
}

/// Every enforceable rule id, in reporting order. The last three are the
/// flow-aware workspace rules ([`crate::callgraph`], DESIGN.md §17).
/// Two meta-rules sit outside this list and cannot themselves be
/// allowed: `allow-syntax` (malformed directives) and `allow-unused` (a
/// directive whose rule no longer fires on the line it excuses).
pub const RULES: &[&str] = &[
    "no-unwrap-in-lib",
    "float-total-cmp",
    "deterministic-collections",
    "no-ambient-authority",
    "parser-limit-guard",
    "crate-hygiene",
    "lock-order",
    "wal-before-apply",
    "guard-across-fsync",
];

/// Files whose `.max(..)` / `.min(..)` calls sit on float-typed cost
/// paths: computed-vs-computed comparisons there must use `total_cmp`
/// (constant clamps like `.max(0.0)` are exempt — `f64::max(NaN, c)` is
/// defined and the non-finite guard upstream already rejects NaN costs).
const COST_PATH_FILES: &[&str] = &[
    "crates/core/src/cost.rs",
    "crates/core/src/search.rs",
    "crates/optimizer/src/cost.rs",
    "crates/optimizer/src/estimate.rs",
    "crates/optimizer/src/optimize.rs",
];

/// Crates exempt from `no-ambient-authority`: `util` owns the clocks and
/// threads (governor, bench harness, scoped map), `bench` measures
/// wall-clock by design.
const AMBIENT_EXEMPT_CRATES: &[&str] = &["util", "bench"];

/// Crates exempt from the filesystem half of `no-ambient-authority`:
/// only `util` — it owns the `fs::DirHandle` capability type. `bench`
/// is deliberately NOT here; its record writers route through util.
const FS_EXEMPT_CRATES: &[&str] = &["util"];

/// Crates whose parsers must route through `_with_limits` entry points.
const LIMIT_GUARDED_CRATES: &[&str] = &["xml", "schema", "xquery"];

/// One allow directive found in a file, tracked through the workspace
/// pass so stale directives can be reported (`allow-unused`).
#[derive(Debug, Clone)]
pub struct AllowSite {
    pub line: u32,
    pub col: u32,
    pub rule: String,
    /// Did any diagnostic actually get suppressed by this directive?
    pub used: bool,
    /// Directives inside `#[cfg(test)]`/`#[test]` regions are exempt
    /// from `allow-unused` — rules skip masked code, so an allow there
    /// can never be "used" in the first place.
    pub in_test: bool,
}

/// Tier-one output for one file: its per-file diagnostics, plus the
/// function facts and allow directives the workspace pass consumes.
pub struct AnalyzedFile {
    pub rel: String,
    pub kind: FileKind,
    /// Per-function facts for the call-graph rules.
    pub fns: Vec<crate::facts::FnFacts>,
    diags: Vec<Diagnostic>,
    allows: Vec<AllowSite>,
}

/// Analyze one source file: run every per-file rule and extract the
/// function facts ([`crate::facts`]) the workspace pass needs. `rel` is
/// the workspace-relative path with `/` separators (it scopes several
/// rules); `kind` is where the file sits.
pub fn check_file(rel: &str, kind: FileKind, src: &str) -> AnalyzedFile {
    let toks = lex(src);
    let mut check = FileCheck::new(rel, kind, &toks);
    check.mark_test_items();
    check.rule_no_unwrap_in_lib();
    check.rule_float_total_cmp();
    check.rule_deterministic_collections();
    check.rule_no_ambient_authority();
    check.rule_parser_limit_guard();
    check.rule_crate_hygiene();
    check.into_analyzed()
}

/// Tier two: run the workspace-level flow rules over every analyzed
/// file's facts ([`crate::callgraph`]), apply allow directives to their
/// findings, then report any directive that suppressed nothing
/// (`allow-unused`). Returns all diagnostics sorted by
/// (path, line, col, rule).
pub fn finish_workspace(mut files: Vec<AnalyzedFile>) -> Vec<Diagnostic> {
    let fns: Vec<crate::facts::FnFacts> =
        files.iter().flat_map(|f| f.fns.iter().cloned()).collect();
    let mut diags = Vec::new();
    for d in crate::callgraph::analyze(&fns) {
        // Same contract as per-file rules: an allow on the offending
        // line or the line above suppresses, and counts as used.
        let allowed = files.iter_mut().find(|f| f.rel == d.path).is_some_and(|f| {
            let mut hit = false;
            for a in f.allows.iter_mut() {
                if a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line) {
                    a.used = true;
                    hit = true;
                }
            }
            hit
        });
        if !allowed {
            diags.push(d);
        }
    }
    for f in &files {
        diags.extend(f.diags.iter().cloned());
        for a in &f.allows {
            if a.used || a.in_test {
                continue;
            }
            diags.push(Diagnostic {
                path: f.rel.clone(),
                line: a.line,
                col: a.col,
                rule: "allow-unused",
                message: format!(
                    "`lint: allow({})` suppresses nothing — the code it excused \
                     is gone or no longer trips the rule; delete the stale \
                     directive",
                    a.rule
                ),
            });
        }
    }
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    diags
}

/// Lint one source file in isolation: [`check_file`] plus a
/// single-file [`finish_workspace`]. Interprocedural rules see only
/// this file's functions.
pub fn lint_source(rel: &str, kind: FileKind, src: &str) -> Vec<Diagnostic> {
    finish_workspace(vec![check_file(rel, kind, src)])
}

struct Allow {
    rule: String,
    col: u32,
    used: bool,
}

struct FileCheck<'a> {
    rel: &'a str,
    kind: FileKind,
    /// Code tokens only (comments stripped), for pattern matching.
    code: Vec<Tok<'a>>,
    /// Parallel to `code`: true if the token is inside a `#[cfg(test)]`
    /// or `#[test]` item.
    in_test: Vec<bool>,
    /// Allow directives by source line.
    allows: BTreeMap<u32, Vec<Allow>>,
    diags: Vec<Diagnostic>,
}

impl<'a> FileCheck<'a> {
    fn new(rel: &'a str, kind: FileKind, toks: &[Tok<'a>]) -> FileCheck<'a> {
        let mut code = Vec::with_capacity(toks.len());
        let mut comments = Vec::new();
        for t in toks {
            if t.is_comment() {
                comments.push(*t);
            } else {
                code.push(*t);
            }
        }
        let n = code.len();
        let mut fc = FileCheck {
            rel,
            kind,
            code,
            in_test: vec![false; n],
            allows: BTreeMap::new(),
            diags: Vec::new(),
        };
        fc.parse_allow_comments(&comments);
        fc
    }

    /// Crate name for paths like `crates/<name>/…`, if any.
    fn crate_name(&self) -> Option<&str> {
        self.rel.strip_prefix("crates/")?.split('/').next()
    }

    fn in_crate(&self, names: &[&str]) -> bool {
        self.crate_name().is_some_and(|c| names.contains(&c))
    }

    fn emit(&mut self, rule: &'static str, line: u32, col: u32, message: String) {
        if rule != "allow-syntax" && self.is_allowed(rule, line) {
            return;
        }
        self.diags.push(Diagnostic {
            path: self.rel.to_string(),
            line,
            col,
            rule,
            message,
        });
    }

    /// An allow on the offending line or the line above suppresses it.
    fn is_allowed(&mut self, rule: &str, line: u32) -> bool {
        for l in [line, line.saturating_sub(1)] {
            if let Some(entries) = self.allows.get_mut(&l) {
                for a in entries {
                    if a.rule == rule {
                        a.used = true;
                        return true;
                    }
                }
            }
        }
        false
    }

    // ---- allow directive parsing -----------------------------------

    /// `// lint: allow(rule-a, rule-b) — why this is sound`
    ///
    /// The reason is mandatory: an allow with no prose after the closing
    /// paren is itself a diagnostic (`allow-syntax`), as is an unknown
    /// rule id. The directive must sit on the offending line or the line
    /// directly above it.
    fn parse_allow_comments(&mut self, comments: &[Tok<'a>]) {
        for c in comments {
            // The directive must *start* the comment body (after the
            // `//`/`/*` sigil) — prose that merely mentions the syntax,
            // like this sentence, is not a directive.
            let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
            let Some(after) = body.strip_prefix("lint: allow(") else {
                continue;
            };
            let Some(close) = after.find(')') else {
                self.diags.push(Diagnostic {
                    path: self.rel.to_string(),
                    line: c.line,
                    col: c.col,
                    rule: "allow-syntax",
                    message: "unterminated `lint: allow(` directive".to_string(),
                });
                continue;
            };
            let rules_part = &after[..close];
            let reason = after[close + 1..]
                .trim_start()
                .trim_start_matches(['—', '–', '-', ':', ' '])
                .trim();
            if reason.is_empty() {
                self.diags.push(Diagnostic {
                    path: self.rel.to_string(),
                    line: c.line,
                    col: c.col,
                    rule: "allow-syntax",
                    message: format!(
                        "`lint: allow({rules_part})` has no reason — write \
                         `// lint: allow({rules_part}) — <why this is sound>`"
                    ),
                });
                continue;
            }
            for rule in rules_part
                .split(',')
                .map(str::trim)
                .filter(|r| !r.is_empty())
            {
                if !RULES.contains(&rule) {
                    self.diags.push(Diagnostic {
                        path: self.rel.to_string(),
                        line: c.line,
                        col: c.col,
                        rule: "allow-syntax",
                        message: format!("unknown rule `{rule}` in lint: allow directive"),
                    });
                    continue;
                }
                self.allows.entry(c.line).or_default().push(Allow {
                    rule: rule.to_string(),
                    col: c.col,
                    used: false,
                });
            }
        }
    }

    // ---- #[cfg(test)] masking --------------------------------------

    /// Mark every token belonging to a `#[cfg(test)]`- or `#[test]`-
    /// gated item, so rules about *shipping* code skip test code that
    /// happens to live in a lib file.
    fn mark_test_items(&mut self) {
        let mut i = 0usize;
        while i < self.code.len() {
            if self.code[i].is_punct('#') && self.peek_punct(i + 1, '[') {
                let attr_end = self.matching_bracket(i + 1);
                let is_test_attr = self.attr_is_test(i + 2, attr_end);
                if is_test_attr {
                    let item_end = self.item_end(attr_end + 1);
                    for k in i..item_end.min(self.code.len()) {
                        self.in_test[k] = true;
                    }
                    i = item_end;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
            i += 1;
        }
    }

    fn peek_punct(&self, i: usize, c: char) -> bool {
        self.code.get(i).is_some_and(|t| t.is_punct(c))
    }

    /// `i` points at `[`; return the index of its matching `]` (or the
    /// last index if unbalanced).
    fn matching_bracket(&self, i: usize) -> usize {
        let mut depth = 0i32;
        for k in i..self.code.len() {
            if self.code[k].is_punct('[') {
                depth += 1;
            } else if self.code[k].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
        self.code.len().saturating_sub(1)
    }

    /// Do the attribute tokens in `(start..end)` denote test-only code?
    /// Matches `#[test]`, `#[cfg(test)]`, and compositions like
    /// `#[cfg(all(test, unix))]`.
    fn attr_is_test(&self, start: usize, end: usize) -> bool {
        let toks = &self.code[start..end.min(self.code.len())];
        let Some(first) = toks.first() else {
            return false;
        };
        if first.is_ident("test") && toks.len() == 1 {
            return true;
        }
        if first.is_ident("cfg") {
            return toks.iter().any(|t| t.is_ident("test"));
        }
        false
    }

    /// Starting right after an attribute, find the index one past the end
    /// of the item it decorates: past the matching `}` of the first
    /// top-level `{`, or past the first top-level `;`.
    fn item_end(&self, mut i: usize) -> usize {
        // Skip any further attributes on the same item.
        while i < self.code.len() && self.code[i].is_punct('#') && self.peek_punct(i + 1, '[') {
            i = self.matching_bracket(i + 1) + 1;
        }
        let mut depth = 0i32;
        let mut entered_brace = false;
        while i < self.code.len() {
            let t = &self.code[i];
            if t.is_punct('{') {
                depth += 1;
                entered_brace = true;
            } else if t.is_punct('}') {
                depth -= 1;
                if entered_brace && depth == 0 {
                    return i + 1;
                }
            } else if t.is_punct(';') && depth == 0 {
                return i + 1;
            }
            i += 1;
        }
        self.code.len()
    }

    /// Code token at `i`, unless it is masked as test code.
    fn lib_tok(&self, i: usize) -> Option<&Tok<'a>> {
        if *self.in_test.get(i)? {
            None
        } else {
            self.code.get(i)
        }
    }

    // ---- rules ------------------------------------------------------

    /// `no-unwrap-in-lib`: no `.unwrap()` / `.expect(…)` in shipping
    /// library code — robustness demands typed errors (PR 2).
    fn rule_no_unwrap_in_lib(&mut self) {
        if self.kind != FileKind::Lib {
            return;
        }
        let mut hits = Vec::new();
        for i in 0..self.code.len() {
            let Some(t) = self.lib_tok(i) else { continue };
            if !(t.is_ident("unwrap") || t.is_ident("expect")) {
                continue;
            }
            let dotted = i > 0 && self.code[i - 1].is_punct('.');
            let called = self.peek_punct(i + 1, '(');
            if dotted && called {
                hits.push((t.line, t.col, t.text.to_string()));
            }
        }
        for (line, col, name) in hits {
            self.emit(
                "no-unwrap-in-lib",
                line,
                col,
                format!(
                    "`.{name}(…)` in library code can panic — return a typed error, \
                     or annotate `// lint: allow(no-unwrap-in-lib) — <why>`"
                ),
            );
        }
    }

    /// `float-total-cmp`: NaN-safe float ordering (PR 2's fix must not
    /// regress). Bans `partial_cmp` calls outright, and on cost-path
    /// files bans `.max(x)` / `.min(x)` between two *computed* floats
    /// (constant clamps like `.max(0.0)` stay legal).
    fn rule_float_total_cmp(&mut self) {
        if !matches!(self.kind, FileKind::Lib | FileKind::Bin) {
            return;
        }
        let mut hits = Vec::new();
        for i in 0..self.code.len() {
            let Some(t) = self.lib_tok(i) else { continue };
            // A `partial_cmp` *call or import* — `fn partial_cmp` (a
            // PartialOrd impl, which must exist) is exempt.
            if t.is_ident("partial_cmp") {
                let is_def = i > 0 && self.code[i - 1].is_ident("fn");
                if !is_def {
                    hits.push((
                        t.line,
                        t.col,
                        "`partial_cmp` returns None on NaN and poisons ordering — \
                         use `f64::total_cmp`"
                            .to_string(),
                    ));
                }
                continue;
            }
            if !COST_PATH_FILES.contains(&self.rel) {
                continue;
            }
            if (t.is_ident("max") || t.is_ident("min"))
                && i > 0
                && self.code[i - 1].is_punct('.')
                && self.peek_punct(i + 1, '(')
                && !self.max_min_arg_is_constant(i + 2)
            {
                hits.push((
                    t.line,
                    t.col,
                    format!(
                        "`.{}(…)` between computed floats on a cost path silently \
                         drops NaN — order with `total_cmp` or clamp against a \
                         constant",
                        t.text
                    ),
                ));
            }
        }
        for (line, col, msg) in hits {
            self.emit("float-total-cmp", line, col, msg);
        }
    }

    /// Is the first argument token at `i` a constant (numeric literal,
    /// possibly negated, or a `f64::CONST` path)? Constant clamps have
    /// defined NaN behavior and are allowed.
    fn max_min_arg_is_constant(&self, mut i: usize) -> bool {
        if self.peek_punct(i, '-') {
            i += 1;
        }
        match self.code.get(i) {
            Some(t) if t.kind == TokKind::Num => true,
            // `f64::MIN_POSITIVE` etc. — a const path (but not `f64::max`)
            Some(t) if t.is_ident("f64") || t.is_ident("f32") => {
                self.peek_punct(i + 1, ':')
                    && self.peek_punct(i + 2, ':')
                    && self.code.get(i + 3).is_some_and(|n| {
                        n.kind == TokKind::Ident && !n.is_ident("max") && !n.is_ident("min")
                    })
            }
            _ => false,
        }
    }

    /// `deterministic-collections`: no default-hasher `HashMap`/`HashSet`
    /// where iteration order feeds fingerprints (PR 3): all of
    /// `crates/pschema`, `crates/core/src/cost.rs`, and the column store
    /// (`crates/relational/src/column.rs`, PR 9), whose snapshots and
    /// storage stats must serialize identically across runs.
    fn rule_deterministic_collections(&mut self) {
        let scoped = self.rel.starts_with("crates/pschema/src/")
            || self.rel == "crates/core/src/cost.rs"
            || self.rel == "crates/relational/src/column.rs";
        if !scoped || self.kind != FileKind::Lib {
            return;
        }
        let mut hits = Vec::new();
        for i in 0..self.code.len() {
            let Some(t) = self.lib_tok(i) else { continue };
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                hits.push((t.line, t.col, t.text.to_string()));
            }
        }
        for (line, col, name) in hits {
            self.emit(
                "deterministic-collections",
                line,
                col,
                format!(
                    "`{name}` iteration order is hash-randomized and this file \
                     feeds fingerprints — use `BTreeMap`/`BTreeSet` or sort \
                     before iterating"
                ),
            );
        }
    }

    /// `no-ambient-authority`: no clocks, env reads, or thread spawns
    /// outside `crates/util` and `crates/bench` — fault-injection
    /// decisions must be pure in (seed, site, key) and parallel must
    /// equal sequential (PR 2) — and no direct filesystem access
    /// (`std::fs` / `File::` / `OpenOptions`) outside `crates/util`:
    /// durable code must be *handed* a `legodb_util::fs::DirHandle`
    /// capability, so crash-recovery failpoints stay the only I/O
    /// failure model (PR 7).
    fn rule_no_ambient_authority(&mut self) {
        let clock_exempt = self.in_crate(AMBIENT_EXEMPT_CRATES);
        let fs_exempt = self.in_crate(FS_EXEMPT_CRATES);
        if self.kind == FileKind::Test || (clock_exempt && fs_exempt) {
            return;
        }
        let mut hits = Vec::new();
        for i in 0..self.code.len() {
            let Some(t) = self.lib_tok(i) else { continue };
            let path_call = |name: &str, members: &[&str]| -> bool {
                t.is_ident(name)
                    && self.peek_punct(i + 1, ':')
                    && self.peek_punct(i + 2, ':')
                    && self
                        .code
                        .get(i + 3)
                        .is_some_and(|m| members.iter().any(|w| m.is_ident(w)))
            };
            // The path segment right before token `i`, if `i` follows `::`.
            let prev_segment = |name: &str| -> bool {
                i >= 3
                    && self.peek_punct(i - 1, ':')
                    && self.peek_punct(i - 2, ':')
                    && self.code[i - 3].is_ident(name)
            };
            // `legodb_util::fs::DirHandle` is the sanctioned capability
            // path — an `fs` segment right after `legodb_util::` is fine.
            let sanctioned_fs = || prev_segment("legodb_util");
            // `std::fs::File`/`std::fs::OpenOptions` already flag at the
            // `fs` segment; don't double-report the same path.
            let via_fs_segment = || prev_segment("fs");
            let clock_hit = if clock_exempt {
                None
            } else if path_call("env", &["var", "var_os", "vars", "vars_os"]) {
                Some("`std::env::var` reads ambient environment")
            } else if path_call("SystemTime", &["now"]) || path_call("Instant", &["now"]) {
                Some("ambient clock reads break deterministic replay")
            } else if path_call("thread", &["spawn"]) {
                Some("raw `thread::spawn` bypasses the fault-isolating scoped map")
            } else {
                None
            };
            if let Some(what) = clock_hit {
                hits.push((
                    t.line,
                    t.col,
                    format!(
                        "{what} — only `crates/util` (governor/fault/bench) and \
                         `crates/bench` may touch ambient authority"
                    ),
                ));
                continue;
            }
            let fs_hit = if fs_exempt {
                None
            } else if t.is_ident("fs")
                && self.peek_punct(i + 1, ':')
                && self.peek_punct(i + 2, ':')
                && !sanctioned_fs()
            {
                Some("`fs::...` is ambient filesystem authority")
            } else if t.is_ident("File")
                && self.peek_punct(i + 1, ':')
                && self.peek_punct(i + 2, ':')
                && !via_fs_segment()
            {
                Some("`File::...` opens files directly")
            } else if t.is_ident("OpenOptions") && !via_fs_segment() {
                Some("`OpenOptions` opens files directly")
            } else {
                None
            };
            if let Some(what) = fs_hit {
                hits.push((
                    t.line,
                    t.col,
                    format!(
                        "{what} — only `crates/util` may touch the filesystem; \
                         take a `legodb_util::fs::DirHandle` capability instead"
                    ),
                ));
            }
        }
        for (line, col, msg) in hits {
            self.emit("no-ambient-authority", line, col, msg);
        }
    }

    /// `parser-limit-guard`: every `pub fn parse*` or `pub fn events*` in
    /// the parser crates must route through a `_with_limits` variant (PR
    /// 2's hard input limits must stay un-bypassable; the streaming-ingest
    /// event iterators are entry points just like the tree parsers).
    fn rule_parser_limit_guard(&mut self) {
        if self.kind != FileKind::Lib || !self.in_crate(LIMIT_GUARDED_CRATES) {
            return;
        }
        let mut hits = Vec::new();
        let mut i = 0usize;
        while i < self.code.len() {
            if self.lib_tok(i).is_none() || !self.code[i].is_ident("pub") {
                i += 1;
                continue;
            }
            // skip a `pub(crate)` / `pub(super)` qualifier
            let mut j = i + 1;
            if self.peek_punct(j, '(') {
                j = self.matching_paren(j) + 1;
            }
            if !self.code.get(j).is_some_and(|t| t.is_ident("fn")) {
                i += 1;
                continue;
            }
            let Some(name_tok) = self.code.get(j + 1).copied() else {
                break;
            };
            let name = name_tok.text;
            let guarded = name.starts_with("parse") || name.starts_with("events");
            if !guarded || name.ends_with("_with_limits") {
                i = j + 1;
                continue;
            }
            let (body_start, body_end) = self.fn_body(j + 1);
            let delegated = self.code[body_start..body_end].iter().any(|t| {
                t.kind == TokKind::Ident
                    && (t.text.ends_with("_with_limits") || t.text.contains("Limits"))
            });
            if !delegated {
                hits.push((name_tok.line, name_tok.col, name.to_string()));
            }
            i = body_end;
        }
        for (line, col, name) in hits {
            self.emit(
                "parser-limit-guard",
                line,
                col,
                format!(
                    "`pub fn {name}` does not route through a `_with_limits` \
                     variant — unlimited parser entry points regress the \
                     resource-limit guarantees"
                ),
            );
        }
    }

    /// `i` points at `(`; return the index of its matching `)`.
    fn matching_paren(&self, i: usize) -> usize {
        let mut depth = 0i32;
        for k in i..self.code.len() {
            if self.code[k].is_punct('(') {
                depth += 1;
            } else if self.code[k].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
        self.code.len().saturating_sub(1)
    }

    /// From a fn's name token index, locate its `{ … }` body; returns
    /// `(start, end)` token indices (end exclusive). A bodyless trait
    /// method returns an empty range.
    fn fn_body(&self, name_idx: usize) -> (usize, usize) {
        let mut depth = 0i32;
        let mut i = name_idx;
        while i < self.code.len() {
            let t = &self.code[i];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') && depth == 0 {
                // matching brace
                let mut bd = 0i32;
                for k in i..self.code.len() {
                    if self.code[k].is_punct('{') {
                        bd += 1;
                    } else if self.code[k].is_punct('}') {
                        bd -= 1;
                        if bd == 0 {
                            return (i + 1, k);
                        }
                    }
                }
                return (i + 1, self.code.len());
            } else if t.is_punct(';') && depth == 0 {
                return (i, i); // declaration without body
            }
            i += 1;
        }
        (i, i)
    }

    /// `crate-hygiene`: every crate root must carry
    /// `#![forbid(unsafe_code)]`.
    fn rule_crate_hygiene(&mut self) {
        if !is_crate_root(self.rel) {
            return;
        }
        let mut i = 0usize;
        while i + 7 < self.code.len() {
            if self.code[i].is_punct('#')
                && self.code[i + 1].is_punct('!')
                && self.code[i + 2].is_punct('[')
                && self.code[i + 3].is_ident("forbid")
                && self.code[i + 4].is_punct('(')
                && self.code[i + 5].is_ident("unsafe_code")
                && self.code[i + 6].is_punct(')')
                && self.code[i + 7].is_punct(']')
            {
                return;
            }
            i += 1;
        }
        self.emit(
            "crate-hygiene",
            1,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    fn into_analyzed(mut self) -> AnalyzedFile {
        // Function facts feed the workspace call-graph rules. Test and
        // example files are excluded wholesale: their functions are free
        // to take locks in adversarial orders (the runtime sanitizer's
        // own tests invert a pair on purpose).
        let fns = if matches!(self.kind, FileKind::Lib | FileKind::Bin) {
            let items = crate::parse::parse_items(&self.code, &self.in_test);
            crate::facts::extract(self.rel, &self.code, &self.in_test, &items)
        } else {
            Vec::new()
        };
        let test_lines: std::collections::BTreeSet<u32> = self
            .code
            .iter()
            .zip(&self.in_test)
            .filter(|(_, masked)| **masked)
            .map(|(t, _)| t.line)
            .collect();
        let mut allows = Vec::new();
        for (line, entries) in &self.allows {
            for a in entries {
                allows.push(AllowSite {
                    line: *line,
                    col: a.col,
                    rule: a.rule.clone(),
                    used: a.used,
                    // A directive sits on the offending line or the line
                    // above it, so either line being masked makes it a
                    // test-code directive.
                    in_test: test_lines.contains(line) || test_lines.contains(&(line + 1)),
                });
            }
        }
        self.diags
            .sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
        AnalyzedFile {
            rel: self.rel.to_string(),
            kind: self.kind,
            fns,
            diags: self.diags,
            allows,
        }
    }
}

/// Is this workspace-relative path a crate root (`lib.rs`, `main.rs`, or
/// a `src/bin/*.rs` binary root)?
pub fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || (rel.starts_with("crates/")
            && (rel.ends_with("/src/lib.rs")
                || rel.ends_with("/src/main.rs")
                || (rel.contains("/src/bin/") && rel.ends_with(".rs"))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(rel: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(rel, FileKind::Lib, src)
    }

    #[test]
    fn unwrap_flagged_in_lib_but_not_in_cfg_test_mod() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n  fn g(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        let d = lint_lib("crates/core/src/engine.rs", src);
        let unwraps: Vec<_> = d.iter().filter(|d| d.rule == "no-unwrap-in-lib").collect();
        assert_eq!(unwraps.len(), 1, "{d:?}");
        assert_eq!(unwraps[0].line, 1);
    }

    #[test]
    fn unwrap_in_string_or_comment_is_ignored() {
        let src = "// .unwrap() in a comment\npub fn f() -> &'static str { \".unwrap()\" }\n";
        let d = lint_lib("crates/core/src/engine.rs", src);
        assert!(d.iter().all(|d| d.rule != "no-unwrap-in-lib"), "{d:?}");
    }

    #[test]
    fn allow_with_reason_suppresses_without_reason_errors() {
        let with_reason = "pub fn f(x: Option<u8>) -> u8 {\n    \
            // lint: allow(no-unwrap-in-lib) — checked two lines up\n    x.unwrap()\n}\n";
        let d = lint_lib("crates/core/src/engine.rs", with_reason);
        assert!(d.is_empty(), "{d:?}");

        let no_reason = "pub fn f(x: Option<u8>) -> u8 {\n    \
            // lint: allow(no-unwrap-in-lib)\n    x.unwrap()\n}\n";
        let d = lint_lib("crates/core/src/engine.rs", no_reason);
        assert!(d.iter().any(|d| d.rule == "allow-syntax"), "{d:?}");
    }

    #[test]
    fn partial_cmp_impl_is_exempt_but_call_is_not() {
        let src = "impl PartialOrd for V { fn partial_cmp(&self, o: &V) -> Option<Ordering> \
                   { self.0.partial_cmp(&o.0) } }";
        let d = lint_lib("crates/relational/src/types.rs", src);
        let hits: Vec<_> = d.iter().filter(|d| d.rule == "float-total-cmp").collect();
        assert_eq!(hits.len(), 1, "{d:?}");
    }

    #[test]
    fn max_against_constant_is_fine_on_cost_paths() {
        let ok = "fn f(a: f64) -> f64 { a.max(0.0).max(f64::MIN_POSITIVE) }";
        assert!(lint_lib("crates/core/src/cost.rs", ok).is_empty());
        let bad = "fn f(a: f64, b: f64) -> f64 { a.max(b) }";
        let d = lint_lib("crates/core/src/cost.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "float-total-cmp");
        // outside the cost-path file list, computed max is not flagged
        assert!(lint_lib("crates/xml/src/tree.rs", bad).is_empty());
    }

    #[test]
    fn hashmap_flagged_only_in_fingerprint_scope() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_lib("crates/pschema/src/shred.rs", src).len(), 1);
        assert_eq!(lint_lib("crates/core/src/cost.rs", src).len(), 1);
        assert!(lint_lib("crates/core/src/search.rs", src).is_empty());
    }

    #[test]
    fn ambient_authority_flagged_outside_util_and_bench() {
        let src = "fn f() { let _ = std::env::var(\"X\"); let _ = Instant::now(); }";
        let d = lint_lib("crates/core/src/engine.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(lint_lib("crates/util/src/governor.rs", src).is_empty());
        assert!(lint_lib("crates/bench/src/harness.rs", src).is_empty());
        assert!(lint_source("tests/pipeline.rs", FileKind::Test, src).is_empty());
    }

    #[test]
    fn filesystem_access_flagged_outside_util() {
        let src = "fn f() { let _ = std::fs::read(\"x\"); \
                   let _ = File::open(\"y\"); \
                   let _ = OpenOptions::new().read(true); }";
        let d = lint_lib("crates/core/src/engine.rs", src);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "no-ambient-authority"));
        assert!(d[0].message.contains("DirHandle"), "{:?}", d[0].message);
        // util owns the capability type, so it alone may touch std::fs
        assert!(lint_lib("crates/util/src/fs.rs", src).is_empty());
        // bench is clock-exempt but NOT fs-exempt
        let d = lint_lib("crates/bench/src/harness.rs", src);
        assert_eq!(d.len(), 3, "{d:?}");
        // tests may use std::fs for scratch dirs
        assert!(lint_source("tests/robustness.rs", FileKind::Test, src).is_empty());
    }

    #[test]
    fn dirhandle_capability_path_is_sanctioned() {
        let src = "use legodb_util::fs::DirHandle;\n\
                   fn f(d: &legodb_util::fs::DirHandle) { let _ = d.read(\"x\"); }";
        assert!(lint_lib("crates/relational/src/wal.rs", src).is_empty());
        // ...but a bare `fs::` path is still ambient
        let src = "use legodb_util::fs;\nfn f() { let _ = fs::DirHandle::open(\".\"); }";
        let d = lint_lib("crates/relational/src/wal.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn parser_limit_guard_requires_delegation() {
        let bad = "pub fn parse(input: &str) -> Result<Doc, E> { run(input) }";
        let d = lint_lib("crates/xml/src/parse.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "parser-limit-guard");
        let good = "pub fn parse(input: &str) -> Result<Doc, E> \
                    { parse_with_limits(input, &ParseLimits::default()) }\n\
                    pub fn parse_with_limits(input: &str, l: &ParseLimits) -> Result<Doc, E> \
                    { run(input, l) }";
        assert!(lint_lib("crates/xml/src/parse.rs", good).is_empty());
        // other crates are out of scope
        assert!(lint_lib("crates/imdb/src/gen.rs", bad).is_empty());
    }

    #[test]
    fn parser_limit_guard_covers_event_iterators() {
        // Streaming entry points are entry points: `pub fn events*` must
        // route through limits just like `pub fn parse*`.
        let bad = "pub fn events(input: &str) -> Events<'_> { Events::new(input) }";
        let d = lint_lib("crates/xml/src/events.rs", bad);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "parser-limit-guard");
        assert!(d[0].message.contains("events"), "{:?}", d[0].message);
        let good = "pub fn events(input: &str) -> Events<'_> \
                    { events_with_limits(input, &ParseLimits::default()) }\n\
                    pub fn events_with_limits(input: &str, l: &ParseLimits) -> Events<'_> \
                    { Events::new(input, l) }";
        assert!(lint_lib("crates/xml/src/events.rs", good).is_empty());
    }

    #[test]
    fn crate_hygiene_wants_forbid_unsafe() {
        let d = lint_lib("crates/xml/src/lib.rs", "pub fn f() {}");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "crate-hygiene");
        assert!(lint_lib(
            "crates/xml/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}"
        )
        .is_empty());
        // non-roots don't need it
        assert!(lint_lib("crates/xml/src/parse.rs", "pub fn f() {}").is_empty());
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// lint: allow(no-such-rule) — whatever\nfn f() {}\n";
        let d = lint_lib("crates/core/src/engine.rs", src);
        assert!(d.iter().any(|d| d.rule == "allow-syntax"));
    }

    #[test]
    fn stale_allow_is_itself_a_diagnostic() {
        // The rule no longer fires on the excused line — the directive
        // is dead weight and must be deleted.
        let src = "// lint: allow(no-unwrap-in-lib) — was needed before the refactor\n\
                   pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        let d = lint_lib("crates/core/src/engine.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "allow-unused");
        assert_eq!(d[0].line, 1);
        // ...while a directive that suppresses something stays silent.
        let used = "pub fn f(x: Option<u8>) -> u8 {\n    \
            // lint: allow(no-unwrap-in-lib) — checked two lines up\n    x.unwrap()\n}\n";
        assert!(lint_lib("crates/core/src/engine.rs", used).is_empty());
    }

    #[test]
    fn allow_inside_test_code_is_exempt_from_allow_unused() {
        // Rules skip masked code, so an allow there can never be used;
        // it must not be punished for that.
        let src = "#[cfg(test)]\nmod tests {\n    \
                   // lint: allow(no-unwrap-in-lib) — test scaffolding\n    \
                   fn g(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        assert!(lint_lib("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn flow_rules_respect_allow_directives() {
        let src = "impl W { fn commit(&self) {\n    \
                   let inner = self.inner.write();\n    \
                   // lint: allow(guard-across-fsync) — single-writer WAL holds the seam\n    \
                   inner.log.sync();\n} }";
        let d = lint_lib("crates/relational/src/wal2.rs", src);
        assert!(d.is_empty(), "{d:?}");
        // Without the directive the rule fires through lint_source too.
        let bare = "impl W { fn commit(&self) {\n    \
                    let inner = self.inner.write();\n    inner.log.sync();\n} }";
        let d = lint_lib("crates/relational/src/wal2.rs", bare);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "guard-across-fsync");
    }

    #[test]
    fn test_files_contribute_no_flow_facts() {
        // Integration tests may invert lock orders on purpose (the
        // runtime sanitizer's own tests do); they are out of scope.
        let src = "fn helper() { let b = B.write(); let a = A.read(); }\n\
                   fn other() { let a = A.write(); let b = B.read(); }\n";
        assert!(lint_source("tests/locks.rs", FileKind::Test, src).is_empty());
        let d = lint_source("crates/core/src/locks.rs", FileKind::Lib, src);
        assert!(d.iter().any(|d| d.rule == "lock-order"), "{d:?}");
    }
}
