//! `legodb-lint` — the workspace's static analysis gate.
//!
//! ```text
//! legodb-lint [--root <dir>] [--json <file>]
//! ```
//!
//! Walks every covered source file under the workspace root (default:
//! the current directory, which is the workspace root under
//! `cargo run -p legodb-lint`), prints human-readable diagnostics to
//! stdout, optionally mirrors them as JSON-lines, and exits non-zero if
//! anything is flagged.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage("--json needs a file path"),
            },
            "--help" | "-h" => {
                println!("usage: legodb-lint [--root <dir>] [--json <file>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let (diags, stats) = match legodb_lint::lint_workspace_with_stats(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("legodb-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for d in &diags {
        println!("{d}");
    }
    if let Some(path) = json_path {
        let mut buf = String::new();
        for d in &diags {
            buf.push_str(&d.to_json());
            buf.push('\n');
        }
        // Ambient authority enters at the CLI boundary: the operator's
        // argv path becomes a DirHandle on its parent directory.
        let written = legodb_util::fs::DirHandle::create_containing(&path)
            .and_then(|(dir, name)| dir.write_atomic(&name, buf.as_bytes()));
        if let Err(e) = written {
            eprintln!("legodb-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let mut err = std::io::stderr();
    let _ = writeln!(
        err,
        "legodb-lint: flow analysis over {} functions, {} lock acquisitions, \
         {} lock classes, {} resolved call edges",
        stats.functions, stats.acquisitions, stats.lock_classes, stats.resolved_calls
    );
    if diags.is_empty() {
        let _ = writeln!(err, "legodb-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        let _ = writeln!(err, "legodb-lint: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("legodb-lint: {msg}\nusage: legodb-lint [--root <dir>] [--json <file>]");
    ExitCode::from(2)
}
