//! Per-function fact extraction: lock/guard acquisitions (with an
//! approximate liveness range), calls, and WAL interactions. These feed
//! the workspace call graph in [`crate::callgraph`] (DESIGN.md §17).
//!
//! All facts are token-positional approximations: "dominates" means
//! "earlier in token order", and a guard's life is a token range, not a
//! dataflow result. The known false-negative shapes this buys are
//! documented with the rules.

use crate::lexer::{Tok, TokKind};
use crate::parse::FnItem;

/// Method names whose zero-argument call on some receiver takes a lock.
/// The zero-argument requirement is what separates `rows.read()` (a
/// `sync::RwLock` acquisition) from `file.read(&mut buf)` (I/O).
const ACQUIRE_METHODS: &[&str] = &["read", "write", "lock"];

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Lock class: `<crate>/<receiver>` — e.g. `relational/indexes` for
    /// `self.indexes.write()`. Striped accesses resolve through the
    /// `.stripe(…)` call to the striped field (`core/cache`).
    pub class: String,
    /// Which method acquired it (`read`/`write`/`lock`).
    pub method: String,
    /// Token index of the acquiring method name.
    pub tok: usize,
    /// Token index one past the last token at which the guard is assumed
    /// live: end of statement for temporaries, end of the enclosing
    /// block for `let`-bound guards.
    pub live_end: usize,
    pub line: u32,
    pub col: u32,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name as written.
    pub name: String,
    /// `Some(Q)` for a path call `Q::name(…)`.
    pub qual: Option<String>,
    /// `Some(recv)` for a method call `recv.name(…)` (the identifier
    /// nearest the dot: `self.wal.append(…)` → `wal`; `self.f(…)` →
    /// `self`).
    pub recv: Option<String>,
    /// Token index of the callee name.
    pub tok: usize,
    pub line: u32,
    pub col: u32,
}

impl Call {
    /// Can the workspace call graph resolve this call by name? Only
    /// shapes whose target is nameable: bare `g(…)`, `self.g(…)`, and
    /// `Q::g(…)`. Arbitrary-receiver method calls (`x.g(…)`) are *not*
    /// resolved — linking them by bare name would invent edges (e.g.
    /// `indexes.insert(…)` is `BTreeMap::insert`, not `Table::insert`).
    pub fn resolvable(&self) -> bool {
        self.qual.is_some() || self.recv.is_none() || self.recv.as_deref() == Some("self")
    }
}

/// Everything the analyzer knows about one function.
#[derive(Debug, Clone)]
pub struct FnFacts {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Crate the file belongs to (`relational` for `crates/relational/…`,
    /// `root` for the façade's own sources).
    pub crate_name: String,
    pub name: String,
    pub owner: Option<String>,
    pub line: u32,
    pub col: u32,
    pub acquires: Vec<Acquire>,
    pub calls: Vec<Call>,
}

impl FnFacts {
    /// `Owner::name` or `name` — the label diagnostics use.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Crate component of a workspace-relative path.
pub fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
}

/// Extract facts for every non-test function in a file. `items` comes
/// from [`crate::parse::parse_items`] over the same `code`/`in_test`.
pub fn extract(rel: &str, code: &[Tok], in_test: &[bool], items: &[FnItem]) -> Vec<FnFacts> {
    let crate_name = crate_of(rel);
    let mut out = Vec::new();
    for (idx, item) in items.iter().enumerate() {
        if item.is_test {
            continue;
        }
        // Token ranges of fns nested inside this one — their facts are
        // their own, not the enclosing fn's.
        let nested: Vec<(usize, usize)> = items
            .iter()
            .enumerate()
            .filter(|(j, n)| *j != idx && n.fn_tok >= item.body.0 && n.body.1 <= item.body.1)
            .map(|(_, n)| (n.fn_tok, n.body.1 + 1))
            .collect();
        let mut facts = FnFacts {
            path: rel.to_string(),
            crate_name: crate_name.to_string(),
            name: item.name.clone(),
            owner: item.owner.clone(),
            line: item.line,
            col: item.col,
            acquires: Vec::new(),
            calls: Vec::new(),
        };
        let mut i = item.body.0;
        while i < item.body.1 {
            if let Some(&(_, skip_to)) = nested.iter().find(|(s, e)| (*s..*e).contains(&i)) {
                i = skip_to;
                continue;
            }
            if in_test.get(i).copied().unwrap_or(false) {
                i += 1;
                continue;
            }
            scan_token(code, i, item.body.1, &mut facts);
            i += 1;
        }
        out.push(facts);
    }
    out
}

/// Classify the token at `i` as an acquisition or a call, if either.
fn scan_token(code: &[Tok], i: usize, body_end: usize, facts: &mut FnFacts) {
    let t = &code[i];
    if t.kind != TokKind::Ident {
        return;
    }
    let called = is_punct_at(code, i + 1, '(');
    if !called {
        return;
    }
    let dotted = i > 0 && code[i - 1].is_punct('.');
    // Zero-argument `.read()` / `.write()` / `.lock()` is an acquisition.
    if dotted && ACQUIRE_METHODS.contains(&t.text) && is_punct_at(code, i + 2, ')') {
        if let Some(class) = receiver_class(code, i - 1) {
            facts.acquires.push(Acquire {
                class: format!("{}/{class}", facts.crate_name),
                method: t.text.to_string(),
                tok: i,
                live_end: guard_live_end(code, i, body_end),
                line: t.line,
                col: t.col,
            });
        }
        return;
    }
    let (qual, recv) = if dotted {
        let recv = if i >= 2 && code[i - 2].kind == TokKind::Ident {
            Some(code[i - 2].text.to_string())
        } else {
            None
        };
        (None, recv)
    } else if i >= 3
        && code[i - 1].is_punct(':')
        && code[i - 2].is_punct(':')
        && code[i - 3].kind == TokKind::Ident
    {
        (Some(code[i - 3].text.to_string()), None)
    } else if i > 0 && (code[i - 1].is_punct(':') || code[i - 1].is_punct('.')) {
        // `::name(` with a non-ident qualifier (e.g. `<T as X>::f(…)`),
        // or `.name(` on a non-ident receiver — unresolvable, skip.
        return;
    } else {
        (None, None)
    };
    facts.calls.push(Call {
        name: t.text.to_string(),
        qual,
        recv,
        tok: i,
        line: t.line,
        col: t.col,
    });
}

fn is_punct_at(code: &[Tok], i: usize, c: char) -> bool {
    code.get(i).is_some_and(|t| t.is_punct(c))
}

/// The lock class of the receiver chain ending at the `.` at `dot_idx`:
/// the identifier nearest the dot (`self.indexes.write()` → `indexes`),
/// walking back through a `.stripe(…)` call to the striped field
/// (`self.cache.stripe(h).read()` → `cache`) and through index
/// expressions (`deques[v].lock()` → `deques`). `None` when the
/// receiver is not nameable (a literal, a temporary from an
/// unrecognized call, …).
fn receiver_class(code: &[Tok], dot_idx: usize) -> Option<String> {
    let mut j = dot_idx; // points at a `.`; the receiver ends at j-1
    loop {
        let end = j.checked_sub(1)?;
        let t = code.get(end)?;
        if t.kind == TokKind::Ident {
            return Some(t.text.to_string());
        }
        if t.is_punct(')') {
            let open = matching_open(code, end, '(', ')')?;
            let name = code.get(open.checked_sub(1)?)?;
            if name.kind != TokKind::Ident {
                return None;
            }
            if name.text == "stripe" {
                // Walk through the stripe call to the striped value:
                // `cache.stripe(h)` — continue from the dot before it.
                let before = open.checked_sub(2)?;
                if code.get(before).is_some_and(|d| d.is_punct('.')) {
                    j = before;
                    continue;
                }
                return None;
            }
            // `graph().lock()` — name the producing call.
            return Some(name.text.to_string());
        }
        if t.is_punct(']') {
            // `deques[v].lock()` — skip the index expression.
            let open = matching_open(code, end, '[', ']')?;
            j = open;
            continue;
        }
        return None;
    }
}

/// Index of the `open` matching the `close` at `i`, scanning backwards.
fn matching_open(code: &[Tok], i: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for k in (0..=i).rev() {
        if code[k].is_punct(close) {
            depth += 1;
        } else if code[k].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// How long the guard produced by the acquisition at `acq` (the method
/// name token) is assumed live, as an exclusive token index.
///
/// - `let g = x.read();` — the guard is named: live to the end of the
///   enclosing block (the `}` that closes it).
/// - anything else (`x.read().len()`, `if x.read().is_empty() {`,
///   `f(x.read().get(k))`) — a temporary: live to the end of the
///   current statement or expression arm (`;`, `,`, or a brace at the
///   same nesting depth).
fn guard_live_end(code: &[Tok], acq: usize, body_end: usize) -> usize {
    let close = acq + 2; // the `)` of the zero-arg call
    let bound_by_let = is_punct_at(code, close + 1, ';') && stmt_is_let_binding(code, acq);
    if bound_by_let {
        // Scan to the `}` closing the enclosing block.
        let mut depth = 0i32;
        for (k, t) in code.iter().enumerate().take(body_end).skip(close + 1) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
        }
        return body_end;
    }
    // Temporary: end of statement at the same nesting depth.
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().take(body_end).skip(close + 1) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                return k; // end of an enclosing argument list
            }
            depth -= 1;
        } else if depth == 0
            && (t.is_punct(';') || t.is_punct(',') || t.is_punct('{') || t.is_punct('}'))
        {
            return k;
        }
    }
    body_end
}

/// Does the statement containing the acquisition at `acq` have the shape
/// `let [mut] <name> = <receiver-chain>.read();`? Walks back to the
/// start of the receiver chain and checks for the binding.
fn stmt_is_let_binding(code: &[Tok], acq: usize) -> bool {
    let Some(start) = chain_start(code, acq - 1) else {
        return false;
    };
    if start < 2 || !code[start - 1].is_punct('=') {
        return false;
    }
    if code[start - 2].kind != TokKind::Ident && !code[start - 2].is_punct('_') {
        return false;
    }
    let mut k = start - 2; // the bound name
                           // `let mut name` / `let name`
    k = match k.checked_sub(1) {
        Some(p) if code[p].is_ident("mut") => p,
        Some(p) => return code[p].is_ident("let"),
        None => return false,
    };
    k.checked_sub(1).is_some_and(|p| code[p].is_ident("let"))
}

/// First token of the receiver chain whose last `.` sits at `dot_idx`
/// (`self.cache.stripe(h)` → the `self` token).
fn chain_start(code: &[Tok], dot_idx: usize) -> Option<usize> {
    let mut j = dot_idx; // a `.`; chain continues to the left
    loop {
        let end = j.checked_sub(1)?;
        let t = &code[end];
        let seg_start = if t.kind == TokKind::Ident {
            end
        } else if t.is_punct(')') {
            let open = matching_open(code, end, '(', ')')?;
            let name = open.checked_sub(1)?;
            if code[name].kind != TokKind::Ident {
                return None;
            }
            name
        } else if t.is_punct(']') {
            let open = matching_open(code, end, '[', ']')?;
            let name = open.checked_sub(1)?;
            if code[name].kind != TokKind::Ident {
                return None;
            }
            name
        } else {
            return None;
        };
        match seg_start.checked_sub(1) {
            Some(p) if code[p].is_punct('.') => j = p,
            Some(p) if code[p].is_punct(':') && p >= 1 && code[p - 1].is_punct(':') => {
                // `wal::Wal::open(…)` — path segments; keep walking left.
                j = p - 1;
                // the `::` is not a `.`: the next loop iteration expects
                // `j` to sit one past the segment, which `p-1` provides.
            }
            _ => return Some(seg_start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_items;

    fn facts_of(rel: &str, src: &str) -> Vec<FnFacts> {
        let toks = lex(src);
        let code: Vec<Tok> = toks.into_iter().filter(|t| !t.is_comment()).collect();
        let in_test = vec![false; code.len()];
        let items = parse_items(&code, &in_test);
        extract(rel, &code, &in_test, &items)
    }

    #[test]
    fn zero_arg_acquisitions_are_found_with_classes() {
        let src = "impl T { fn f(&self) {\n\
                     let g = self.indexes.write();\n\
                     let s = self.cache.stripe(h).read();\n\
                     let d = deques[v].lock();\n\
                     file.read(&mut buf);\n\
                   } }";
        let f = &facts_of("crates/relational/src/x.rs", src)[0];
        let classes: Vec<&str> = f.acquires.iter().map(|a| a.class.as_str()).collect();
        assert_eq!(
            classes,
            [
                "relational/indexes",
                "relational/cache",
                "relational/deques"
            ],
            "{:?}",
            f.acquires
        );
    }

    #[test]
    fn let_bound_guards_outlive_temporaries() {
        let src = "fn f() { let g = a.read(); b.write().push(1); use_it(g); }";
        let f = &facts_of("crates/core/src/x.rs", src)[0];
        let a = &f.acquires[0];
        let b = &f.acquires[1];
        // `g` lives past `b`'s acquisition; `b`'s temporary ends at `;`.
        assert!(a.live_end > b.tok, "{f:?}");
        assert!(b.live_end < f.acquires[0].live_end, "{f:?}");
    }

    #[test]
    fn inner_block_scopes_bound_guard_life() {
        let src = "fn f() { let ids = { let g = a.read(); pick(g) }; b.write().touch(); }";
        let f = &facts_of("crates/core/src/x.rs", src)[0];
        let a = &f.acquires[0];
        let b = &f.acquires[1];
        assert!(
            a.live_end < b.tok,
            "guard must die at the inner block: {f:?}"
        );
    }

    #[test]
    fn call_shapes_and_resolvability() {
        let src = "impl D { fn f(&mut self) {\n\
                     helper(1);\n\
                     self.apply(2);\n\
                     Wal::open(dir);\n\
                     self.wal.append_insert(t, &row);\n\
                     mac!(x);\n\
                   } }";
        let f = &facts_of("crates/relational/src/x.rs", src)[0];
        let names: Vec<(&str, bool)> = f
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.resolvable()))
            .collect();
        assert_eq!(
            names,
            [
                ("helper", true),
                ("apply", true),
                ("open", true),
                ("append_insert", false),
            ],
            "{:?}",
            f.calls
        );
        assert_eq!(f.calls[3].recv.as_deref(), Some("wal"));
        assert_eq!(f.calls[2].qual.as_deref(), Some("Wal"));
    }

    #[test]
    fn test_masked_fns_produce_no_facts() {
        let toks = lex("fn f() { a.read(); }");
        let code: Vec<Tok> = toks.into_iter().filter(|t| !t.is_comment()).collect();
        let in_test = vec![true; code.len()];
        let mut items = parse_items(&code, &in_test);
        items[0].is_test = true;
        assert!(extract("crates/x/src/a.rs", &code, &in_test, &items).is_empty());
    }
}
