//! Workspace file discovery: every Rust source the lint gate covers,
//! classified by [`FileKind`], in a deterministic (sorted) order.

use crate::rules::FileKind;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One file to lint: absolute path plus the workspace-relative path
/// (always `/`-separated — rule scoping matches on it).
#[derive(Debug, Clone)]
pub struct FileEntry {
    pub path: PathBuf,
    pub rel: String,
    pub kind: FileKind,
}

/// Directories never scanned: build output, VCS, and the lint crate's
/// own deliberately-bad golden fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "lint_fixtures"];

/// Collect every `.rs` file the gate covers, relative to the workspace
/// root: `crates/*/{src,tests,benches,examples}`, plus the façade
/// crate's `src/`, `tests/`, and `examples/`.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<FileEntry>> {
    let mut out = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect_dir(root, &root.join(top), &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            for sub in ["src", "tests", "benches", "examples"] {
                collect_dir(root, &member.join(sub), &mut out)?;
            }
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn collect_dir(root: &Path, dir: &Path, out: &mut Vec<FileEntry>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                collect_dir(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = rel_unix(root, &path);
            let kind = classify(&rel);
            out.push(FileEntry { path, rel, kind });
        }
    }
    Ok(())
}

fn rel_unix(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Classify a workspace-relative path into the [`FileKind`] that decides
/// rule applicability.
pub fn classify(rel: &str) -> FileKind {
    let in_dir = |d: &str| rel.starts_with(&format!("{d}/")) || rel.contains(&format!("/{d}/"));
    if in_dir("tests") || in_dir("benches") {
        FileKind::Test
    } else if in_dir("examples") {
        FileKind::Example
    } else if rel.ends_with("/main.rs") || rel == "src/main.rs" || rel.contains("/src/bin/") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        assert_eq!(classify("crates/core/src/engine.rs"), FileKind::Lib);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
        assert_eq!(classify("crates/lint/src/main.rs"), FileKind::Bin);
        assert_eq!(
            classify("crates/bench/src/bin/all_experiments.rs"),
            FileKind::Bin
        );
        assert_eq!(classify("tests/pipeline.rs"), FileKind::Test);
        assert_eq!(classify("crates/xml/tests/adversarial.rs"), FileKind::Test);
        assert_eq!(
            classify("crates/bench/benches/machinery.rs"),
            FileKind::Test
        );
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
    }
}
