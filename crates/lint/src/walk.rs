//! Workspace file discovery: every Rust source the lint gate covers,
//! classified by [`FileKind`], in a deterministic (sorted) order.
//!
//! Discovery routes through [`legodb_util::fs::DirHandle`] — the lint
//! gate obeys the same capability discipline it enforces.

use crate::rules::FileKind;
use legodb_util::fs::DirHandle;
use std::io;

/// One file to lint: the workspace-relative path (always `/`-separated —
/// rule scoping matches on it, and [`DirHandle`] reads resolve it) plus
/// its classification.
#[derive(Debug, Clone)]
pub struct FileEntry {
    pub rel: String,
    pub kind: FileKind,
}

/// Directories never scanned: build output, VCS, and the lint crate's
/// own deliberately-bad golden fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "lint_fixtures"];

/// Collect every `.rs` file the gate covers, relative to the workspace
/// root: `crates/*/{src,tests,benches,examples}`, plus the façade
/// crate's `src/`, `tests/`, and `examples/`.
pub fn collect_workspace(root: &DirHandle) -> io::Result<Vec<FileEntry>> {
    let mut out = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect_dir(root, top, &mut out)?;
    }
    if root.exists("crates")? {
        for member in root.subdir("crates")?.list()? {
            if !member.is_dir {
                continue;
            }
            for sub in ["src", "tests", "benches", "examples"] {
                collect_dir(root, &format!("crates/{}/{sub}", member.name), &mut out)?;
            }
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn collect_dir(root: &DirHandle, rel: &str, out: &mut Vec<FileEntry>) -> io::Result<()> {
    if !root.exists(rel)? {
        return Ok(());
    }
    let dir = match root.subdir(rel) {
        Ok(d) => d,
        Err(_) => return Ok(()), // a plain file named like a source dir
    };
    for entry in dir.list()? {
        let child = format!("{rel}/{}", entry.name);
        if entry.is_dir {
            if !SKIP_DIRS.contains(&entry.name.as_str()) && !entry.name.starts_with('.') {
                collect_dir(root, &child, out)?;
            }
        } else if entry.name.ends_with(".rs") {
            let kind = classify(&child);
            out.push(FileEntry { rel: child, kind });
        }
    }
    Ok(())
}

/// Classify a workspace-relative path into the [`FileKind`] that decides
/// rule applicability.
pub fn classify(rel: &str) -> FileKind {
    let in_dir = |d: &str| rel.starts_with(&format!("{d}/")) || rel.contains(&format!("/{d}/"));
    if in_dir("tests") || in_dir("benches") {
        FileKind::Test
    } else if in_dir("examples") {
        FileKind::Example
    } else if rel.ends_with("/main.rs") || rel == "src/main.rs" || rel.contains("/src/bin/") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        assert_eq!(classify("crates/core/src/engine.rs"), FileKind::Lib);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
        assert_eq!(classify("crates/lint/src/main.rs"), FileKind::Bin);
        assert_eq!(
            classify("crates/bench/src/bin/all_experiments.rs"),
            FileKind::Bin
        );
        assert_eq!(classify("tests/pipeline.rs"), FileKind::Test);
        assert_eq!(classify("crates/xml/tests/adversarial.rs"), FileKind::Test);
        assert_eq!(
            classify("crates/bench/benches/machinery.rs"),
            FileKind::Test
        );
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
    }

    #[test]
    fn collect_walks_via_the_capability_handle() {
        let root = std::env::temp_dir().join(format!("legodb-walk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        dir.write_atomic("src/lib.rs", b"pub fn f() {}").unwrap();
        dir.write_atomic("crates/a/src/lib.rs", b"").unwrap();
        dir.write_atomic("crates/a/tests/t.rs", b"").unwrap();
        dir.write_atomic("crates/a/src/target_helper.rs", b"")
            .unwrap();
        dir.write_atomic("crates/a/src/notes.txt", b"").unwrap();
        dir.create_subdir("crates/a/src/target").unwrap(); // skipped dir
        dir.write_atomic("crates/a/src/target/gen.rs", b"").unwrap();
        let files = collect_workspace(&dir).unwrap();
        let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
        assert_eq!(
            rels,
            [
                "crates/a/src/lib.rs",
                "crates/a/src/target_helper.rs",
                "crates/a/tests/t.rs",
                "src/lib.rs",
            ]
        );
        assert_eq!(files[2].kind, FileKind::Test);
        let _ = std::fs::remove_dir_all(&root);
    }
}
