//! Item-level parsing over the lexed token stream: just enough structure
//! to know *which function* a token belongs to and *which type* that
//! function is implemented on. The flow-aware rules (DESIGN.md §17) need
//! function boundaries and impl owners to build a call graph; they do not
//! need expressions, types, or patterns, so this stays a few brace-depth
//! walks rather than a grammar.

use crate::lexer::{Tok, TokKind};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` block's self type, if the fn is an associated item
    /// (`impl Table { fn insert … }` → `Some("Table")`). Trait impls use
    /// the implementing type (`impl Display for Diagnostic` → the type).
    pub owner: Option<String>,
    /// Line/col of the name token (diagnostic anchors).
    pub line: u32,
    pub col: u32,
    /// Token index of the `fn` keyword — the start of the whole item.
    pub fn_tok: usize,
    /// Body token range `(start, end)`, both inside the braces,
    /// end-exclusive. Empty for bodyless trait methods.
    pub body: (usize, usize),
    /// Is this fn inside a `#[cfg(test)]`/`#[test]`-masked region?
    pub is_test: bool,
}

/// Find every `fn` item (including nested ones) in a code-token stream.
/// `in_test` is the parallel test-mask from the rule engine.
pub fn parse_items(code: &[Tok], in_test: &[bool]) -> Vec<FnItem> {
    let mut items = Vec::new();
    // Brace-scope stack: `Some(type)` for an impl block's body, `None`
    // for every other brace (fn bodies, modules, match arms, …). The
    // innermost `Some` is the owner of any `fn` found inside.
    let mut scopes: Vec<Option<String>> = Vec::new();
    let mut pending_owner: Option<String> = None;
    let mut i = 0usize;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('{') {
            scopes.push(pending_owner.take());
        } else if t.is_punct('}') {
            scopes.pop();
        } else if t.is_ident("impl") {
            pending_owner = impl_self_type(code, i);
        } else if t.is_ident("fn") {
            if let Some(name_tok) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                if let Some(body) = fn_body(code, i + 1) {
                    items.push(FnItem {
                        name: name_tok.text.to_string(),
                        owner: scopes.iter().rev().find_map(|o| o.clone()),
                        line: name_tok.line,
                        col: name_tok.col,
                        fn_tok: i,
                        body,
                        is_test: in_test.get(i).copied().unwrap_or(false),
                    });
                }
            }
        }
        i += 1;
    }
    items
}

/// The self type of an `impl` header starting at token `i` (`impl`):
/// the last path segment before the body brace, taken after `for` when
/// present, stopping at `where`. `impl<T> Striped<T>` → `Striped`;
/// `impl fmt::Display for Diagnostic` → `Diagnostic`.
fn impl_self_type(code: &[Tok], i: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut candidate: Option<&str> = None;
    for t in code.iter().skip(i + 1) {
        if t.is_punct('{') || t.is_ident("where") {
            break;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_ident("for") {
            candidate = None; // trait name so far — the self type follows
        } else if angle <= 0 && t.kind == TokKind::Ident && !t.is_ident("dyn") {
            candidate = Some(t.text);
        }
    }
    candidate.map(str::to_string)
}

/// From a fn's name token index, locate its `{ … }` body; returns
/// `(start, end)` token indices (end exclusive, both inside the braces —
/// an empty range for `fn f() {}`). A bodyless trait method (`fn f();`)
/// returns `None`.
fn fn_body(code: &[Tok], name_idx: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut i = name_idx;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            let mut bd = 0i32;
            for (k, b) in code.iter().enumerate().skip(i) {
                if b.is_punct('{') {
                    bd += 1;
                } else if b.is_punct('}') {
                    bd -= 1;
                    if bd == 0 {
                        return Some((i + 1, k));
                    }
                }
            }
            return Some((i + 1, code.len()));
        } else if t.is_punct(';') && depth == 0 {
            return None;
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        let toks = lex(src);
        let code: Vec<Tok> = toks.into_iter().filter(|t| !t.is_comment()).collect();
        let in_test = vec![false; code.len()];
        parse_items(&code, &in_test)
    }

    #[test]
    fn finds_free_and_associated_fns() {
        let src = "fn free() { body(); }\n\
                   impl Table { pub fn insert(&self) -> u8 { 1 } }\n\
                   impl fmt::Display for Diagnostic { fn fmt(&self) -> R { write() } }\n";
        let got = items(src);
        assert_eq!(got.len(), 3, "{got:?}");
        assert_eq!((got[0].name.as_str(), got[0].owner.clone()), ("free", None));
        assert_eq!(got[1].owner.as_deref(), Some("Table"));
        assert_eq!(got[2].owner.as_deref(), Some("Diagnostic"));
    }

    #[test]
    fn generic_impls_and_where_clauses_resolve_the_self_type() {
        let src = "impl<'a, T: Ord> Striped<T> where T: Clone { fn stripe(&self) {} }";
        let got = items(src);
        assert_eq!(got[0].owner.as_deref(), Some("Striped"));
    }

    #[test]
    fn nested_fns_are_found_with_the_outer_owner_scope() {
        let src = "impl W { fn outer(&self) { fn inner() { x(); } inner(); } }";
        let got = items(src);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].name, "outer");
        assert_eq!(got[1].name, "inner");
        // inner's item range nests inside outer's body (the `fn` keyword
        // may be the body's very first token)
        assert!(got[1].fn_tok >= got[0].body.0 && got[1].body.1 <= got[0].body.1);
    }

    #[test]
    fn bodyless_trait_methods_are_skipped() {
        let got = items("trait T { fn sig(&self) -> u8; }");
        assert!(got.is_empty(), "{got:?}");
    }
}
