//! # legodb-lint
//!
//! The in-repo static analysis gate. The engine's headline guarantees
//! are *invariant-shaped*: deterministic fault injection and incremental
//! costing (DESIGN.md §10–11) are only correct while the code stays free
//! of ambient clocks, hash-randomized iteration on fingerprint paths,
//! and NaN-unsafe float ordering — and the robustness story only holds
//! while library code returns typed errors instead of panicking. Nothing
//! in the compiler checks any of that, so this crate does: a small Rust
//! lexer ([`lexer`]) feeds a rule engine ([`rules`]) that walks every
//! workspace source file ([`walk`]) and emits structured diagnostics.
//!
//! Run it with `cargo run --release -p legodb-lint`; `ci.sh` runs it as
//! a hard gate before the test suite. Rules, rationale, and the
//! `// lint: allow(<rule>) — <why>` escape hatch are documented in
//! DESIGN.md §12.
//!
//! Zero dependencies beyond `legodb-util` (for JSON-lines output), per
//! the offline-build policy.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod walk;

pub use rules::{lint_source, Diagnostic, FileKind, RULES};
pub use walk::{classify, collect_workspace, FileEntry};

use legodb_util::fs::DirHandle;
use std::io;
use std::path::Path;

/// Lint every covered file under the workspace root. Diagnostics come
/// back sorted by (path, line, col) — a deterministic report. All reads
/// go through a [`DirHandle`] rooted at `root`: the gate practices the
/// capability discipline its `no-ambient-authority` rule enforces.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let dir = DirHandle::open(root)?;
    let files = collect_workspace(&dir)?;
    let mut diags = Vec::new();
    for f in &files {
        let src = dir.read_to_string(&f.rel)?;
        diags.extend(lint_source(&f.rel, f.kind, &src));
    }
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(diags)
}
