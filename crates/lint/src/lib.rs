//! # legodb-lint
//!
//! The in-repo static analysis gate. The engine's headline guarantees
//! are *invariant-shaped*: deterministic fault injection and incremental
//! costing (DESIGN.md §10–11) are only correct while the code stays free
//! of ambient clocks, hash-randomized iteration on fingerprint paths,
//! and NaN-unsafe float ordering — and the robustness story only holds
//! while library code returns typed errors instead of panicking. Nothing
//! in the compiler checks any of that, so this crate does, in two tiers:
//!
//! 1. **Per-file**: a small Rust lexer ([`lexer`]) feeds a rule engine
//!    ([`rules`]) that walks every workspace source file ([`walk`]) and
//!    emits structured diagnostics. Alongside the rules, a lightweight
//!    item parser ([`parse`]) extracts per-function facts ([`facts`]):
//!    lock acquisitions with liveness ranges, calls, WAL appends.
//! 2. **Workspace**: the facts from every file feed an approximate call
//!    graph ([`callgraph`]) checking flow properties no single file can
//!    show — lock-order cycles, log-before-apply violations, and guards
//!    held across the durability boundary (DESIGN.md §17).
//!
//! Run it with `cargo run --release -p legodb-lint`; `ci.sh` runs it as
//! a hard gate before the test suite. Rules, rationale, and the
//! `// lint: allow(<rule>) — <why>` escape hatch are documented in
//! DESIGN.md §12 and §17. An allow whose rule no longer fires is itself
//! a diagnostic (`allow-unused`), so the suppression count can only
//! shrink.
//!
//! Zero dependencies beyond `legodb-util` (for JSON-lines output), per
//! the offline-build policy.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod facts;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod walk;

pub use callgraph::AnalysisStats;
pub use rules::{
    check_file, finish_workspace, lint_source, AnalyzedFile, Diagnostic, FileKind, RULES,
};
pub use walk::{classify, collect_workspace, FileEntry};

use legodb_util::fs::DirHandle;
use std::io;
use std::path::Path;

/// Lint every covered file under the workspace root. Diagnostics come
/// back sorted by (path, line, col) — a deterministic report. All reads
/// go through a [`DirHandle`] rooted at `root`: the gate practices the
/// capability discipline its `no-ambient-authority` rule enforces.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(lint_workspace_with_stats(root)?.0)
}

/// [`lint_workspace`], plus the analyzer's coverage counters — the
/// workspace-clean claim only means something if the flow analyzer
/// demonstrably saw functions, acquisitions, and call edges.
pub fn lint_workspace_with_stats(root: &Path) -> io::Result<(Vec<Diagnostic>, AnalysisStats)> {
    let dir = DirHandle::open(root)?;
    let files = collect_workspace(&dir)?;
    let mut analyzed = Vec::with_capacity(files.len());
    for f in &files {
        let src = dir.read_to_string(&f.rel)?;
        analyzed.push(check_file(&f.rel, f.kind, &src));
    }
    let fns: Vec<facts::FnFacts> = analyzed
        .iter()
        .flat_map(|f| f.fns.iter().cloned())
        .collect();
    let stats = callgraph::stats(&fns);
    Ok((finish_workspace(analyzed), stats))
}
