//! The workspace-level half of the flow analyzer: an approximate call
//! graph over [`crate::facts::FnFacts`], transitive lock sets, and the
//! three protocol rules built on them (DESIGN.md §17):
//!
//! - `lock-order` — the transitive lock-nesting graph must be acyclic;
//!   a cycle is a potential deadlock and is reported with the
//!   acquisition site of *every* edge on the cycle.
//! - `wal-before-apply` — in `crates/relational`, a function that
//!   appends to the WAL must issue the append before any table/catalog
//!   mutation (log-before-apply, DESIGN.md §14).
//! - `guard-across-fsync` — in `crates/relational`, no lock guard may be
//!   live across an fsync or WAL append: a guard held there serializes
//!   the group-commit seam ROADMAP item 5 needs.
//!
//! Call resolution is deliberately conservative: bare `g(…)`, `self.g(…)`
//! and `Q::g(…)` resolve by name (and impl owner); arbitrary-receiver
//! method calls do not resolve at all, so `indexes.insert(…)` can never
//! fabricate an edge to `Table::insert`. The price is false *negatives*
//! (a lock taken behind a trait object or closure is invisible), never
//! false cycles.

use crate::facts::{Acquire, Call, FnFacts};
use crate::rules::Diagnostic;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names that mutate a table or the catalog when called on some
/// receiver in a durable path.
const MUTATORS: &[&str] = &["insert", "insert_batch", "create_index", "push", "remove"];

/// Call names that reach the disk's durability boundary.
const SYNC_CALLS: &[&str] = &["sync", "sync_all", "sync_data", "fsync"];

/// Receivers whose `append*` methods are WAL/log writes (a plain
/// `Vec::append` on some other receiver is not a durability call).
const DURABLE_RECVS: &[&str] = &["wal", "log"];

/// Run all flow rules over the workspace's extracted functions.
pub fn analyze(fns: &[FnFacts]) -> Vec<Diagnostic> {
    let graph = CallGraph::build(fns);
    let mut diags = Vec::new();
    rule_lock_order(fns, &graph, &mut diags);
    rule_wal_before_apply(fns, &mut diags);
    rule_guard_across_fsync(fns, &mut diags);
    diags
}

/// Summary counters for the workspace-clean proof: the analyzer only
/// vouches for the workspace if it demonstrably saw it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisStats {
    pub functions: usize,
    pub acquisitions: usize,
    pub resolved_calls: usize,
    pub lock_classes: usize,
}

/// Compute the coverage counters for a set of extracted functions.
pub fn stats(fns: &[FnFacts]) -> AnalysisStats {
    let graph = CallGraph::build(fns);
    let classes: BTreeSet<&str> = fns
        .iter()
        .flat_map(|f| f.acquires.iter().map(|a| a.class.as_str()))
        .collect();
    AnalysisStats {
        functions: fns.len(),
        acquisitions: fns.iter().map(|f| f.acquires.len()).sum(),
        resolved_calls: graph.resolved_edges,
        lock_classes: classes.len(),
    }
}

/// Where a lock class gets acquired — carried through transitive lock
/// sets so cycle reports can point at real source lines.
#[derive(Debug, Clone)]
struct AcqSite {
    path: String,
    line: u32,
    col: u32,
    fun: String,
    method: String,
}

impl AcqSite {
    fn of(f: &FnFacts, a: &Acquire) -> AcqSite {
        AcqSite {
            path: f.path.clone(),
            line: a.line,
            col: a.col,
            fun: f.display(),
            method: a.method.clone(),
        }
    }
}

struct CallGraph {
    /// Per-function resolved callee indices, parallel to the input slice.
    callees: Vec<Vec<(usize, usize)>>, // (call index in f.calls, target fn index)
    /// Transitive lock set per function: class → first acquisition site.
    lockset: Vec<BTreeMap<String, AcqSite>>,
    resolved_edges: usize,
}

impl CallGraph {
    fn build(fns: &[FnFacts]) -> CallGraph {
        // Name tables. Owned fns by (owner, name); free fns by name.
        let mut owned: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            match &f.owner {
                Some(o) => owned.entry((o, &f.name)).or_default().push(i),
                None => free.entry(&f.name).or_default().push(i),
            }
        }
        let resolve = |f: &FnFacts, c: &Call| -> Vec<usize> {
            if let Some(q) = &c.qual {
                // `Q::g(…)`: an associated fn of Q, or (for module paths
                // like `lockcheck::enter`) a free fn of that name.
                return owned
                    .get(&(q.as_str(), c.name.as_str()))
                    .or_else(|| free.get(c.name.as_str()))
                    .cloned()
                    .unwrap_or_default();
            }
            match c.recv.as_deref() {
                Some("self") => f
                    .owner
                    .as_deref()
                    .and_then(|o| owned.get(&(o, c.name.as_str())))
                    .cloned()
                    .unwrap_or_default(),
                Some(_) => Vec::new(), // arbitrary receiver: unresolvable
                None => free.get(c.name.as_str()).cloned().unwrap_or_default(),
            }
        };

        let mut callees: Vec<Vec<(usize, usize)>> = Vec::with_capacity(fns.len());
        let mut resolved_edges = 0usize;
        for f in fns {
            let mut edges = Vec::new();
            for (ci, c) in f.calls.iter().enumerate() {
                for target in resolve(f, c) {
                    edges.push((ci, target));
                    resolved_edges += 1;
                }
            }
            callees.push(edges);
        }

        // Transitive lock sets by fixpoint: what may be acquired while a
        // call to this function runs.
        let mut lockset: Vec<BTreeMap<String, AcqSite>> = fns
            .iter()
            .map(|f| {
                let mut m = BTreeMap::new();
                for a in &f.acquires {
                    m.entry(a.class.clone())
                        .or_insert_with(|| AcqSite::of(f, a));
                }
                m
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..fns.len() {
                for &(_, t) in &callees[i] {
                    if t == i {
                        continue;
                    }
                    let add: Vec<(String, AcqSite)> = lockset[t]
                        .iter()
                        .filter(|(class, _)| !lockset[i].contains_key(*class))
                        .map(|(class, site)| (class.clone(), site.clone()))
                        .collect();
                    if !add.is_empty() {
                        changed = true;
                        lockset[i].extend(add);
                    }
                }
            }
            if !changed {
                break;
            }
        }

        CallGraph {
            callees,
            lockset,
            resolved_edges,
        }
    }
}

/// One directed edge of the lock-nesting graph, with its first witness.
#[derive(Debug, Clone)]
struct Edge {
    hold: AcqSite,
    acq: AcqSite,
    via: Option<String>, // callee display when the edge crosses a call
}

/// `lock-order`: build class-level nesting edges (intra-function nesting
/// plus guards held across resolvable calls), then flag every cycle.
fn rule_lock_order(fns: &[FnFacts], graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut add = |from: &str, to: &str, e: Edge| {
        edges.entry((from.to_string(), to.to_string())).or_insert(e);
    };
    for (i, f) in fns.iter().enumerate() {
        for a in &f.acquires {
            // Intra-function: B acquired while A's guard is live.
            for b in &f.acquires {
                if a.tok < b.tok && b.tok < a.live_end && a.class != b.class {
                    add(
                        &a.class,
                        &b.class,
                        Edge {
                            hold: AcqSite::of(f, a),
                            acq: AcqSite::of(f, b),
                            via: None,
                        },
                    );
                }
            }
            // Interprocedural: a call made under A's guard pulls in the
            // callee's transitive lock set.
            for &(ci, t) in &graph.callees[i] {
                let c = &f.calls[ci];
                if !(a.tok < c.tok && c.tok < a.live_end) {
                    continue;
                }
                for (class, site) in &graph.lockset[t] {
                    if *class != a.class {
                        add(
                            &a.class,
                            class,
                            Edge {
                                hold: AcqSite::of(f, a),
                                acq: site.clone(),
                                via: Some(fns[t].display()),
                            },
                        );
                    }
                }
            }
        }
    }

    // Every edge that closes a directed cycle is a deadlock candidate.
    // Canonicalize each cycle (rotate its minimum class first) so one
    // cycle yields one diagnostic no matter which edge found it.
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    for (from, to) in edges.keys().cloned().collect::<Vec<_>>() {
        let Some(path_back) = find_path(&edges, &to, &from) else {
            continue;
        };
        let mut cycle: Vec<String> = vec![from.clone()];
        cycle.extend(path_back.into_iter().take_while(|n| *n != from));
        let min_at = cycle
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.as_str())
            .map(|(i, _)| i)
            .unwrap_or(0);
        cycle.rotate_left(min_at);
        if !seen.insert(cycle.clone()) {
            continue;
        }
        let mut lines = format!(
            "lock nesting cycle `{} -> {}` — two threads taking these in \
             opposite order deadlock:",
            cycle.join(" -> "),
            cycle[0]
        );
        for w in 0..cycle.len() {
            let (a, b) = (&cycle[w], &cycle[(w + 1) % cycle.len()]);
            let e = &edges[&(a.clone(), b.clone())];
            let via = e
                .via
                .as_ref()
                .map(|v| format!(" via call to `{v}`"))
                .unwrap_or_default();
            lines.push_str(&format!(
                " [`{a}` {} in `{}` ({}:{}:{}) then `{b}` {} ({}:{}:{}){via}]",
                e.hold.method,
                e.hold.fun,
                e.hold.path,
                e.hold.line,
                e.hold.col,
                e.acq.method,
                e.acq.path,
                e.acq.line,
                e.acq.col,
            ));
        }
        let anchor = &edges[&(cycle[0].clone(), cycle[1 % cycle.len()].clone())].acq;
        diags.push(Diagnostic {
            path: anchor.path.clone(),
            line: anchor.line,
            col: anchor.col,
            rule: "lock-order",
            message: lines,
        });
    }
}

/// Breadth-first path `from → … → to` over the edge set, deterministic.
fn find_path(
    edges: &BTreeMap<(String, String), Edge>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    let mut succ: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        succ.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: VecDeque<&str> = VecDeque::from([from]);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![to.to_string()];
            let mut at = to;
            while at != from {
                at = prev[at];
                path.push(at.to_string());
            }
            path.reverse();
            return Some(path);
        }
        for &next in succ.get(node).into_iter().flatten() {
            if next != from && !prev.contains_key(next) {
                prev.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Is this call a WAL/log append or an fsync?
fn is_durability_call(c: &Call) -> bool {
    SYNC_CALLS.contains(&c.name.as_str())
        || (c.name.starts_with("append")
            && c.recv
                .as_deref()
                .is_some_and(|r| DURABLE_RECVS.contains(&r)))
}

/// `wal-before-apply`: inside `crates/relational`, a function that
/// issues WAL appends must issue the first one before any mutation.
/// Functions that never append (replay, recovery, pure reads) are out of
/// scope — the WAL append *is* the durable-path marker.
fn rule_wal_before_apply(fns: &[FnFacts], diags: &mut Vec<Diagnostic>) {
    for f in fns {
        if !f.path.starts_with("crates/relational/") {
            continue;
        }
        let first = f
            .calls
            .iter()
            .filter(|c| c.recv.as_deref() == Some("wal") && c.name.starts_with("append"))
            .min_by_key(|c| c.tok);
        let Some(first) = first else {
            continue;
        };
        for c in &f.calls {
            if c.tok < first.tok && c.recv.is_some() && MUTATORS.contains(&c.name.as_str()) {
                diags.push(Diagnostic {
                    path: f.path.clone(),
                    line: c.line,
                    col: c.col,
                    rule: "wal-before-apply",
                    message: format!(
                        "`{}.{}(…)` mutates state before `{}`'s first WAL append \
                         (line {}) — log-before-apply requires the append to \
                         dominate every mutation, or a crash loses the change \
                         while the log claims otherwise",
                        c.recv.as_deref().unwrap_or("?"),
                        c.name,
                        f.display(),
                        first.line,
                    ),
                });
            }
        }
    }
}

/// `guard-across-fsync`: inside `crates/relational`, no lock guard may
/// be live across an fsync/append call — that guard is exactly what
/// group commit (ROADMAP item 5) must not inherit.
fn rule_guard_across_fsync(fns: &[FnFacts], diags: &mut Vec<Diagnostic>) {
    for f in fns {
        if !f.path.starts_with("crates/relational/") {
            continue;
        }
        for c in f.calls.iter().filter(|c| is_durability_call(c)) {
            for a in &f.acquires {
                if a.tok < c.tok && c.tok < a.live_end {
                    diags.push(Diagnostic {
                        path: f.path.clone(),
                        line: c.line,
                        col: c.col,
                        rule: "guard-across-fsync",
                        message: format!(
                            "guard on `{}` (acquired line {}) is live across \
                             `{}(…)` in `{}` — holding a lock over the \
                             durability boundary serializes group commit",
                            a.class,
                            a.line,
                            c.name,
                            f.display(),
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;
    use crate::lexer::{lex, Tok};
    use crate::parse::parse_items;

    fn fns_of(rel: &str, src: &str) -> Vec<FnFacts> {
        let toks = lex(src);
        let code: Vec<Tok> = toks.into_iter().filter(|t| !t.is_comment()).collect();
        let in_test = vec![false; code.len()];
        let items = parse_items(&code, &in_test);
        extract(rel, &code, &in_test, &items)
    }

    #[test]
    fn consistent_order_produces_no_cycle() {
        let src = "impl T { fn f(&self) { let a = self.a.read(); let b = self.b.read(); }\n\
                            fn g(&self) { let a = self.a.write(); let b = self.b.write(); } }";
        let d = analyze(&fns_of("crates/x/src/l.rs", src));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn interprocedural_inversion_is_a_cycle() {
        let src = "impl P {\n\
                     fn forward(&self) { let a = self.a.read(); let b = self.b.read(); }\n\
                     fn sum_a(&self) -> u32 { *self.a.read() }\n\
                     fn backward(&self) -> u32 { let b = self.b.write(); *b + self.sum_a() }\n\
                   }";
        let d = analyze(&fns_of("crates/x/src/l.rs", src));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "lock-order");
        assert!(d[0].message.contains("x/a"), "{}", d[0].message);
        assert!(d[0].message.contains("x/b"), "{}", d[0].message);
        assert!(d[0].message.contains("sum_a"), "{}", d[0].message);
    }

    #[test]
    fn scoped_guard_breaks_the_edge() {
        // The fixed index_lookup shape: the indexes guard dies in the
        // inner block before rows_at takes the store lock.
        let src = "impl T {\n\
                     fn ins(&self) { let s = self.store.write(); self.index_row(1); }\n\
                     fn index_row(&self, r: u32) { let i = self.indexes.write(); }\n\
                     fn lookup(&self) { let ids = { let i = self.indexes.read(); pick(i) };\n\
                                        self.rows_at(ids); }\n\
                     fn rows_at(&self, ids: u32) { let s = self.store.read(); }\n\
                   }";
        let d = analyze(&fns_of("crates/x/src/l.rs", src));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn mutation_before_append_is_flagged() {
        let src = "impl D { fn insert(&mut self) {\n\
                     table.insert(row);\n\
                     self.wal.append_insert(t, &row);\n\
                   } }";
        let d = analyze(&fns_of("crates/relational/src/db.rs", src));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "wal-before-apply");
        // append-first order passes
        let src = "impl D { fn insert(&mut self) {\n\
                     self.wal.append_insert(t, &row);\n\
                     table.insert(row);\n\
                   } }";
        assert!(analyze(&fns_of("crates/relational/src/db.rs", src)).is_empty());
        // replay paths never append — exempt
        let src = "impl D { fn apply(&mut self) { table.insert(row); } }";
        assert!(analyze(&fns_of("crates/relational/src/db.rs", src)).is_empty());
    }

    #[test]
    fn guard_across_fsync_fires_only_in_relational() {
        let src = "impl W { fn commit(&self) {\n\
                     let inner = self.inner.write();\n\
                     inner.log.sync();\n\
                   } }";
        let d = analyze(&fns_of("crates/relational/src/wal2.rs", src));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "guard-across-fsync");
        assert!(analyze(&fns_of("crates/util/src/fs2.rs", src)).is_empty());
        // a Vec append on a non-log receiver is not a durability call
        let src = "impl W { fn merge(&self) {\n\
                     let g = self.inner.write();\n\
                     out.append(&mut v);\n\
                   } }";
        assert!(analyze(&fns_of("crates/relational/src/wal2.rs", src)).is_empty());
    }
}
