//! A small, self-contained Rust lexer — just enough syntax awareness for
//! the lint rules to tell code from comments and literals.
//!
//! It understands the token shapes that defeat naive `grep`-style
//! scanning: line comments, *nested* block comments, string literals with
//! escapes, raw strings with arbitrary `#` fences, byte and raw byte
//! strings, char literals (including `'\''` and `'\u{1F600}'`), and the
//! lifetime-vs-char ambiguity (`'a` vs `'a'`). Everything else becomes an
//! identifier, a number, or single-character punctuation; the rules only
//! need token kinds, text, and positions.

/// What a token is. Comment tokens are kept in the stream — the allow
/// directive (`// lint: allow(...)`) lives inside them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Char literal (`'x'`, `'\n'`), or byte literal (`b'x'`).
    Char,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `br##"…"##`.
    Str,
    /// Numeric literal (lexed loosely; suffixes are part of the token).
    Num,
    /// Single punctuation character.
    Punct,
    /// `// …` (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, nesting respected (includes `/** … */`).
    BlockComment,
}

/// One lexed token. `line` and `col` are 1-based and point at the first
/// character of the token.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
    pub col: u32,
}

impl<'a> Tok<'a> {
    /// Is this token punctuation equal to `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }

    /// Is this token an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a comment of either flavor?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// Lex a whole source file into tokens. The lexer never fails: malformed
/// input (an unterminated string, say) is absorbed into the current token
/// so the rules still see everything up to the problem.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(tok) = lx.next_token() {
        out.push(tok);
    }
    out
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advance one char, maintaining line/col.
    fn bump(&mut self) {
        if let Some(b) = self.peek() {
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if !(0x80..0xC0).contains(&b) {
                // count a UTF-8 sequence's lead byte as one column
                self.col += 1;
            }
            self.pos += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn next_token(&mut self) -> Option<Tok<'a>> {
        // skip whitespace
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
        let b = self.peek()?;
        let (start, line, col) = (self.pos, self.line, self.col);
        let kind = match b {
            b'/' if self.peek_at(1) == Some(b'/') => {
                while !matches!(self.peek(), None | Some(b'\n')) {
                    self.bump();
                }
                TokKind::LineComment
            }
            b'/' if self.peek_at(1) == Some(b'*') => {
                self.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(), self.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            self.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            self.bump_n(2);
                        }
                        (Some(_), _) => self.bump(),
                        (None, _) => break, // unterminated: absorb to EOF
                    }
                }
                TokKind::BlockComment
            }
            b'r' | b'b' if self.raw_or_byte_literal() => self.classify_prefixed(start),
            // raw identifier `r#match` — an ident, not a raw string
            b'r' if self.peek_at(1) == Some(b'#')
                && matches!(self.peek_at(2), Some(c) if ident_start(c)) =>
            {
                self.bump_n(2);
                while matches!(self.peek(), Some(c) if ident_continue(c)) {
                    self.bump();
                }
                TokKind::Ident
            }
            b'\'' => self.char_or_lifetime(),
            b'"' => {
                self.string_body();
                TokKind::Str
            }
            b'0'..=b'9' => {
                // loose number: digits, idents chars, and `.` followed by a
                // digit (so `1.0` is one token but `x.max` keeps `.` punct)
                self.bump();
                loop {
                    match self.peek() {
                        Some(c) if ident_continue(c) => self.bump(),
                        Some(b'.') if matches!(self.peek_at(1), Some(b'0'..=b'9')) => {
                            self.bump();
                        }
                        _ => break,
                    }
                }
                TokKind::Num
            }
            c if ident_start(c) => {
                self.bump();
                while matches!(self.peek(), Some(c) if ident_continue(c)) {
                    self.bump();
                }
                TokKind::Ident
            }
            _ => {
                self.bump();
                TokKind::Punct
            }
        };
        Some(Tok {
            kind,
            text: &self.src[start..self.pos],
            line,
            col,
        })
    }

    /// At an `r` or `b`: if this starts a raw/byte string or byte char,
    /// consume the whole literal and return true. `r#ident` (raw ident)
    /// returns false and is lexed as a normal identifier by the caller.
    fn raw_or_byte_literal(&mut self) -> bool {
        let b0 = self.peek().unwrap_or(0);
        // determine the literal shape by lookahead
        let mut off = 1usize;
        if b0 == b'b' && self.peek_at(1) == Some(b'r') {
            off = 2;
        }
        match (b0, self.peek_at(off)) {
            // b'x' byte char
            (b'b', Some(b'\'')) if off == 1 => {
                self.bump(); // b
                self.char_body();
                true
            }
            // b"..." byte string
            (b'b', Some(b'"')) if off == 1 => {
                self.bump();
                self.string_body();
                true
            }
            // r"..." / r#"..."# / br#"..."#
            (_, Some(b'"')) | (_, Some(b'#')) => {
                // count fence hashes after the prefix
                let mut fences = 0usize;
                while self.peek_at(off + fences) == Some(b'#') {
                    fences += 1;
                }
                if self.peek_at(off + fences) != Some(b'"') {
                    return false; // r#ident (raw identifier), not a string
                }
                self.bump_n(off + fences + 1); // prefix + fences + opening quote
                loop {
                    match self.peek() {
                        None => break, // unterminated
                        Some(b'"') => {
                            let mut k = 0usize;
                            while k < fences && self.peek_at(1 + k) == Some(b'#') {
                                k += 1;
                            }
                            if k == fences {
                                self.bump_n(1 + fences);
                                break;
                            }
                            self.bump();
                        }
                        Some(_) => self.bump(),
                    }
                }
                true
            }
            _ => false,
        }
    }

    fn classify_prefixed(&self, start: usize) -> TokKind {
        // raw_or_byte_literal already consumed it; decide Str vs Char by
        // looking at the prefix shape.
        let text = &self.src[start..self.pos];
        if text.starts_with("b'") {
            TokKind::Char
        } else {
            TokKind::Str
        }
    }

    /// At a `'`: char literal or lifetime?
    fn char_or_lifetime(&mut self) -> TokKind {
        // `'\…'` is always a char; `'x'` is a char; `'x` (no closing quote
        // right after one ident char) is a lifetime, as is `'abc`.
        let c1 = self.peek_at(1);
        let is_lifetime = match c1 {
            Some(b'\\') => false,
            Some(c) if ident_start(c) => {
                // scan the ident run; lifetime iff it is not followed by `'`
                let mut off = 2usize;
                while matches!(self.peek_at(off), Some(c) if ident_continue(c)) {
                    off += 1;
                }
                self.peek_at(off) != Some(b'\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            while matches!(self.peek(), Some(c) if ident_continue(c)) {
                self.bump();
            }
            TokKind::Lifetime
        } else {
            self.char_body();
            TokKind::Char
        }
    }

    /// Consume `'…'` including escapes; assumes positioned at the `'`.
    fn char_body(&mut self) {
        self.bump(); // opening '
        loop {
            match self.peek() {
                None | Some(b'\n') => break, // malformed; don't eat the file
                Some(b'\\') => self.bump_n(2),
                Some(b'\'') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Consume `"…"` including escapes; assumes positioned at the `"`.
    fn string_body(&mut self) {
        self.bump(); // opening "
        loop {
            match self.peek() {
                None => break, // unterminated
                Some(b'\\') => self.bump_n(2),
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
    }
}

fn ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "a"),
                (TokKind::BlockComment, "/* outer /* inner */ still outer */"),
                (TokKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_absorbs_to_eof() {
        let toks = kinds("x /* never closed");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].0, TokKind::BlockComment);
    }

    #[test]
    fn line_comments_stop_at_newline() {
        let toks = kinds("// one\nident // two");
        assert_eq!(
            toks,
            vec![
                (TokKind::LineComment, "// one"),
                (TokKind::Ident, "ident"),
                (TokKind::LineComment, "// two"),
            ]
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r####"r"plain" r#"one "quote" fence"# r##"uses "# inside"## x"####);
        assert_eq!(toks[0], (TokKind::Str, r#"r"plain""#));
        assert_eq!(toks[1], (TokKind::Str, r###"r#"one "quote" fence"#"###));
        assert_eq!(toks[2], (TokKind::Str, r####"r##"uses "# inside"##"####));
        assert_eq!(toks[3], (TokKind::Ident, "x"));
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        let toks = kinds("r#match r#fn");
        assert_eq!(toks[0], (TokKind::Ident, "r#match"));
        assert_eq!(toks[1], (TokKind::Ident, "r#fn"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r###"b"bytes" br#"raw "bytes""# b'x' b'\n'"###);
        assert_eq!(toks[0], (TokKind::Str, r#"b"bytes""#));
        assert_eq!(toks[1], (TokKind::Str, r##"br#"raw "bytes""#"##));
        assert_eq!(toks[2], (TokKind::Char, "b'x'"));
        assert_eq!(toks[3], (TokKind::Char, r"b'\n'"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("'a 'static 'a' '\\'' '\\u{1F600}' ' '");
        assert_eq!(toks[0], (TokKind::Lifetime, "'a"));
        assert_eq!(toks[1], (TokKind::Lifetime, "'static"));
        assert_eq!(toks[2], (TokKind::Char, "'a'"));
        assert_eq!(toks[3], (TokKind::Char, "'\\''"));
        assert_eq!(toks[4], (TokKind::Char, "'\\u{1F600}'"));
        assert_eq!(toks[5], (TokKind::Char, "' '"));
    }

    #[test]
    fn strings_with_escapes_do_not_leak() {
        // The `.unwrap()` lives inside a string literal — it must lex as
        // one Str token, not as idents a rule could trip on.
        let toks = kinds(r#"let s = "call .unwrap() \" here"; done"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains(".unwrap()")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn columns_count_chars_not_bytes_on_non_ascii_lines() {
        // `é` is 2 bytes, `→` is 3, `🧵` is 4 — each is one column.
        // Diagnostics and allow directives anchor by (line, col), so a
        // byte-counted column would drift right on any line with a doc
        // comment using typographic dashes or accents.
        let src = "/// détruit — la flèche → ici\nlet x = \"🧵🧵\"; y";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        let line2: Vec<(&str, u32, u32)> = toks
            .iter()
            .skip(1)
            .map(|t| (t.text, t.line, t.col))
            .collect();
        assert_eq!(
            line2,
            vec![
                ("let", 2, 1),
                ("x", 2, 5),
                ("=", 2, 7),
                ("\"🧵🧵\"", 2, 9),
                (";", 2, 13),
                ("y", 2, 15),
            ]
        );
    }

    #[test]
    fn numbers_keep_dots_and_suffixes() {
        let toks = kinds("1.0 2e10 0xFF_u32 3usize x.max(0.0)");
        assert_eq!(toks[0], (TokKind::Num, "1.0"));
        assert_eq!(toks[1], (TokKind::Num, "2e10"));
        assert_eq!(toks[2], (TokKind::Num, "0xFF_u32"));
        assert_eq!(toks[3], (TokKind::Num, "3usize"));
        // `x.max(0.0)`: the dot between x and max stays punctuation
        let rest: Vec<_> = toks[4..].iter().map(|(_, t)| *t).collect();
        assert_eq!(rest, vec!["x", ".", "max", "(", "0.0", ")"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
