//! Golden-fixture tests for the lint rules.
//!
//! Every `lint_fixtures/*.rs` file is a deliberately-bad source whose
//! first line, `//@ path: <rel>`, gives the virtual workspace-relative
//! path it pretends to live at (which decides file kind and rule
//! scoping). The diagnostics it produces must match the sibling
//! `<name>.expected` file line for line.
//!
//! To regenerate the `.expected` files after an intentional rule or
//! message change, run with `LEGODB_LINT_BLESS=1` and review the diff.

use legodb_lint::{classify, lint_source};
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

fn fixture_paths() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("lint_fixtures/ must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures found in lint_fixtures/");
    paths
}

/// Lint one fixture and render its diagnostics, one per line, in the
/// same `path:line:col: [rule] message` format the CLI prints.
fn rendered_diagnostics(fixture: &Path) -> String {
    let src = fs::read_to_string(fixture).expect("fixture is readable");
    let first = src.lines().next().unwrap_or("");
    let rel = first
        .strip_prefix("//@ path: ")
        .unwrap_or_else(|| panic!("{} must start with `//@ path: <rel>`", fixture.display()))
        .trim();
    let diags = lint_source(rel, classify(rel), &src);
    diags.iter().map(|d| format!("{d}\n")).collect()
}

#[test]
fn fixtures_match_their_expected_diagnostics() {
    let bless = std::env::var_os("LEGODB_LINT_BLESS").is_some();
    let mut failures = Vec::new();
    for fixture in fixture_paths() {
        let got = rendered_diagnostics(&fixture);
        let expected_path = fixture.with_extension("expected");
        if bless {
            fs::write(&expected_path, &got).expect("write .expected");
            continue;
        }
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "{} is missing — run with LEGODB_LINT_BLESS=1 to create it",
                expected_path.display()
            )
        });
        for (i, (g, e)) in got.lines().zip(expected.lines()).enumerate() {
            if g != e {
                failures.push(format!(
                    "{}: diagnostic {} differs\n  expected: {e}\n  got:      {g}",
                    fixture.display(),
                    i + 1
                ));
            }
        }
        let (ng, ne) = (got.lines().count(), expected.lines().count());
        if ng != ne {
            failures.push(format!(
                "{}: expected {ne} diagnostics, got {ng}\n--- expected ---\n{expected}\
                 --- got ---\n{got}",
                fixture.display()
            ));
        }
    }
    assert!(!bless, "blessed fixtures — rerun without LEGODB_LINT_BLESS");
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn every_fixture_is_actually_bad() {
    // The acceptance bar: the gate exits non-zero on each golden
    // fixture, so each must produce at least one diagnostic.
    for fixture in fixture_paths() {
        let got = rendered_diagnostics(&fixture);
        assert!(
            !got.is_empty(),
            "{} produced no diagnostics — a golden fixture must violate at \
             least one rule",
            fixture.display()
        );
    }
}

#[test]
fn fixture_diagnostics_serialize_as_json_lines() {
    // The CLI's --json output must stay machine-readable: every record
    // carries the five fields in legodb_util::json object syntax.
    let fixture = fixtures_dir().join("hygiene.rs");
    let src = fs::read_to_string(&fixture).expect("fixture is readable");
    let diags = lint_source(
        "crates/demo/src/lib.rs",
        classify("crates/demo/src/lib.rs"),
        &src,
    );
    assert_eq!(diags.len(), 1);
    let json = diags[0].to_json();
    for field in [
        "\"path\":",
        "\"line\":",
        "\"col\":",
        "\"rule\":",
        "\"message\":",
    ] {
        assert!(json.contains(field), "{json} lacks {field}");
    }
    assert!(json.contains("crate-hygiene"), "{json}");
}
