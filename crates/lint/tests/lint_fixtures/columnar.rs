//@ path: crates/relational/src/column.rs
// Deliberately-bad fixture: hash-randomized collections inside the
// column store, whose snapshots and storage stats must serialize
// identically across runs. Never compiled — lexed and linted by
// tests/golden.rs.

use std::collections::{BTreeMap, HashMap};

pub fn flagged() {
    let _widths: HashMap<usize, f64> = HashMap::new();
}

// lint: allow(deterministic-collections) — fixture: drained through a sorted index vector
pub type Suppressed = HashMap<String, u64>;

pub type Fine = BTreeMap<usize, f64>;
