//@ path: crates/demo/src/util.rs
// Deliberately-bad fixture: malformed allow directives. Never compiled
// — lexed and linted by tests/golden.rs.

// lint: allow(no-such-rule) — misspelled rule id
pub fn f() {}

// lint: allow(crate-hygiene — the closing paren is missing here
pub fn g() {}
