//@ path: crates/core/src/registry.rs
// Deliberately-bad fixture: inverted lock nesting across a call. A
// thread in `forward` takes `a` then `b`; a thread in `backward` takes
// `b` and then reaches `a` through `sum_a` — opposite orders, so the
// pair can deadlock. Never compiled — lexed and linted by
// tests/golden.rs.

pub struct Pair {
    a: RwLock<u32>,
    b: RwLock<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.a.read();
        let b = self.b.read();
        *a + *b
    }

    fn sum_a(&self) -> u32 {
        *self.a.read()
    }

    pub fn backward(&self) -> u32 {
        let b = self.b.write();
        *b + self.sum_a()
    }
}
