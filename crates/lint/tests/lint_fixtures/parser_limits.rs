//@ path: crates/xml/src/parse.rs
// Deliberately-bad fixture: an unlimited public parser entry point in a
// limit-guarded crate. Never compiled — lexed and linted by
// tests/golden.rs.

pub struct Limits;
pub struct Doc;

pub fn parse(input: &str) -> Doc {
    run(input)
}

pub fn parse_document(input: &str) -> Doc {
    parse_document_with_limits(input, &Limits)
}

pub fn parse_document_with_limits(_input: &str, _limits: &Limits) -> Doc {
    Doc
}

pub(crate) fn parse_fragment(input: &str) -> Doc {
    run(input)
}

pub struct Events;

pub fn events(input: &str) -> Events {
    let _ = input;
    Events
}

pub fn events_checked(input: &str) -> Events {
    events_with_limits(input, &Limits)
}

pub fn events_with_limits(_input: &str, _limits: &Limits) -> Events {
    Events
}

fn run(_input: &str) -> Doc {
    Doc
}
