//@ path: crates/demo/src/engine.rs
// Deliberately-bad fixture: `.unwrap()` / `.expect()` in library code.
// Never compiled — lexed and linted by tests/golden.rs.

pub fn flagged(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn also_flagged(x: Option<u8>) -> u8 {
    x.expect("boom")
}

pub fn suppressed(x: Option<u8>) -> u8 {
    // lint: allow(no-unwrap-in-lib) — fixture: reason provided, so no diagnostic
    x.unwrap()
}

pub fn bad_allow(x: Option<u8>) -> u8 {
    // lint: allow(no-unwrap-in-lib)
    x.unwrap()
}

pub fn not_code() -> &'static str {
    // a comment mentioning .unwrap() is not a violation
    ".unwrap() inside a string is not a violation"
}

pub fn unwrap_or_is_fine(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        Some(1u8).unwrap();
        None::<u8>.expect("fine in tests");
    }
}
