//@ path: crates/core/src/engine.rs
// Deliberately-bad fixture: ambient authority (clocks, env, threads)
// outside crates/util and crates/bench. Never compiled — lexed and
// linted by tests/golden.rs.

pub fn flagged_env() -> Option<String> {
    std::env::var("LEGODB_SEED").ok()
}

pub fn flagged_clocks() -> bool {
    let _start = std::time::Instant::now();
    let _wall = std::time::SystemTime::now();
    true
}

pub fn flagged_spawn() {
    std::thread::spawn(|| {});
}

pub fn suppressed() -> Option<String> {
    // lint: allow(no-ambient-authority) — fixture: documented escape hatch
    std::env::var("PATH").ok()
}

pub fn flagged_filesystem() {
    let _ = std::fs::read("ambient.bin");
    let _ = std::fs::File::open("ambient.bin");
    let _ = std::fs::OpenOptions::new();
}

pub fn sanctioned_capability(dir: &legodb_util::fs::DirHandle) -> std::io::Result<Vec<u8>> {
    // The DirHandle path is the sanctioned route: not flagged.
    dir.read("durable.json")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_clocks() {
        let _ = std::time::Instant::now();
    }
}
