//@ path: crates/core/src/cost.rs
// Deliberately-bad fixture: NaN-unsafe float ordering on a cost path.
// Never compiled — lexed and linted by tests/golden.rs.

pub fn flagged_partial_cmp(a: f64, b: f64) -> f64 {
    if a.partial_cmp(&b) == Some(std::cmp::Ordering::Less) {
        b
    } else {
        a
    }
}

pub fn flagged_computed_max(a: f64, b: f64) -> f64 {
    a.max(b)
}

pub fn constant_clamps_are_fine(a: f64) -> f64 {
    a.max(0.0).min(1000000.0).max(f64::MIN_POSITIVE).max(-1.0)
}

pub fn suppressed(a: f64, b: f64) -> f64 {
    // lint: allow(float-total-cmp) — fixture: both operands proven finite above
    a.min(b)
}

pub struct Wrapper(f64);

impl PartialOrd for Wrapper {
    // a `fn partial_cmp` definition (a PartialOrd impl) is exempt
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}
