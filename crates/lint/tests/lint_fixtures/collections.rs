//@ path: crates/pschema/src/shred.rs
// Deliberately-bad fixture: hash-randomized collections on a
// fingerprint path. Never compiled — lexed and linted by
// tests/golden.rs.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn flagged() {
    let _names: HashMap<String, u32> = HashMap::new();
}

// lint: allow(deterministic-collections) — fixture: iterated via a pre-sorted key list
pub type Suppressed = HashSet<u32>;

pub type Fine = BTreeMap<String, u32>;
