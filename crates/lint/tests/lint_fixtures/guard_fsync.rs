//@ path: crates/relational/src/group.rs
// Deliberately-bad fixture: a lock guard held live across the fsync
// boundary — exactly the seam group commit (ROADMAP item 5) must keep
// clear. `commit_scoped` shows the fix (guard dies before the flush)
// and must stay silent. Never compiled — lexed and linted by
// tests/golden.rs.

impl Journal {
    pub fn commit(&self) -> Result<(), E> {
        let inner = self.inner.write();
        inner.file.sync_all()?;
        Ok(())
    }

    pub fn commit_scoped(&self) -> Result<(), E> {
        let tail = {
            let inner = self.inner.write();
            inner.tail
        };
        self.file.sync_all()?;
        Ok(tail)
    }
}
