//@ path: crates/demo/src/lib.rs
//! Deliberately-bad fixture: a crate root missing
//! `#![forbid(unsafe_code)]`. Never compiled — lexed and linted by
//! tests/golden.rs.

pub fn noop() {}
