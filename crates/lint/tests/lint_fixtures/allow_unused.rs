//@ path: crates/demo/src/stale.rs
// Deliberately-bad fixture: an allow directive whose rule no longer
// fires on the line it excuses. The unwrap it once suppressed was
// refactored into `unwrap_or`, so the directive is dead weight — and
// dead suppressions are themselves findings, so the allow count can
// only shrink. Never compiled — lexed and linted by tests/golden.rs.

pub fn tidy(x: Option<u8>) -> u8 {
    // lint: allow(no-unwrap-in-lib) — the directive outlived its unwrap
    x.unwrap_or(0)
}
