//@ path: crates/relational/src/db.rs
// Deliberately-bad fixture: a durable path that mutates the table
// before its WAL append — a crash between the two loses the row while
// the recovered log claims nothing happened. `delete` below shows the
// correct append-first order and must stay silent. Never compiled —
// lexed and linted by tests/golden.rs.

impl Database {
    pub fn insert(&mut self, table: &str, row: Row) -> Result<u64, E> {
        let t = self.tables.get_mut(table)?;
        t.insert(row.clone());
        let lsn = self.wal.append_insert(table, &row)?;
        Ok(lsn)
    }

    pub fn delete(&mut self, table: &str, key: u64) -> Result<u64, E> {
        let lsn = self.wal.append_delete(table, key)?;
        self.tables.get_mut(table)?.remove(key);
        Ok(lsn)
    }
}
