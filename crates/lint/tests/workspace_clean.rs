//! The real workspace must lint clean: this is the same scan `ci.sh`
//! gates on, run as a test so `cargo test` alone catches a regression.

use legodb_lint::lint_workspace_with_stats;
use std::path::Path;

#[test]
fn the_real_workspace_lints_clean_and_the_analyzer_saw_it() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let (diags, stats) = lint_workspace_with_stats(root).expect("workspace sources are readable");
    let report: String = diags.iter().map(|d| format!("  {d}\n")).collect();
    assert!(
        diags.is_empty(),
        "the workspace must lint clean; {} diagnostic(s):\n{report}",
        diags.len()
    );
    // "Clean" only means something if the flow analyzer demonstrably
    // covered the workspace: the storage/WAL/striped lock classes alone
    // guarantee these floors, so dropping under them means fact
    // extraction silently broke, not that the code got simpler.
    assert!(stats.functions > 500, "{stats:?}");
    assert!(stats.acquisitions > 20, "{stats:?}");
    assert!(stats.lock_classes >= 5, "{stats:?}");
    assert!(stats.resolved_calls > 500, "{stats:?}");
}
