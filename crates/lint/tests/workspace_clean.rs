//! The real workspace must lint clean: this is the same scan `ci.sh`
//! gates on, run as a test so `cargo test` alone catches a regression.

use legodb_lint::lint_workspace;
use std::path::Path;

#[test]
fn the_real_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let diags = lint_workspace(root).expect("workspace sources are readable");
    let report: String = diags.iter().map(|d| format!("  {d}\n")).collect();
    assert!(
        diags.is_empty(),
        "the workspace must lint clean; {} diagnostic(s):\n{report}",
        diags.len()
    );
}
