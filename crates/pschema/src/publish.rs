//! Publishing: reconstructing XML from the shredded database.
//!
//! The inverse of [`crate::shred`]: for each type instance (row) the type
//! definition dictates the element structure; scalar columns become text
//! and attributes, child tables are fetched through their `parent_T`
//! foreign-key indexes and recursed into. This is the execution-side
//! analogue of the paper's publishing queries (`RETURN $v`).

use crate::mapping::{Mapping, TableMapping, ANY_STEP, TILDE_STEP};
use legodb_relational::{Database, RelationalError, Row, Value};
use legodb_schema::{NameTest, Schema, Type, TypeName};
use legodb_xml::{Attribute, Document, Element, Node};
use std::fmt;

/// A publishing failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PublishError {
    /// The root table has no rows (or more than one).
    BadRootCardinality(usize),
    /// Storage-level failure.
    Storage(RelationalError),
    /// The mapping, schema, and catalog disagree — a type the mapping
    /// references is undefined, a column or index is missing. Only
    /// reachable with a hand-assembled [`Mapping`]; `rel(ps)` never
    /// produces one.
    Inconsistent(String),
}

impl fmt::Display for PublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublishError::BadRootCardinality(n) => {
                write!(f, "expected exactly one root instance, found {n}")
            }
            PublishError::Storage(e) => write!(f, "storage error while publishing: {e}"),
            PublishError::Inconsistent(m) => write!(f, "mapping/schema inconsistency: {m}"),
        }
    }
}

impl std::error::Error for PublishError {}

impl From<RelationalError> for PublishError {
    fn from(e: RelationalError) -> Self {
        PublishError::Storage(e)
    }
}

/// The typed error for a mapping/schema/catalog lookup that only fails
/// when the caller assembled inconsistent inputs.
fn inconsistent(what: &str, name: &dyn fmt::Display) -> PublishError {
    PublishError::Inconsistent(format!("{what} `{name}` is missing"))
}

/// Reconstruct the whole document from the database.
pub fn publish_all(mapping: &Mapping, db: &Database) -> Result<Document, PublishError> {
    let root = mapping.root().clone();
    let root_tm = mapping
        .table(&root)
        .ok_or_else(|| inconsistent("table mapping for root type", &root))?;
    let rows = db.table(root_tm.table.as_str())?.scan();
    if rows.len() != 1 {
        return Err(PublishError::BadRootCardinality(rows.len()));
    }
    let p = Publisher {
        mapping,
        schema: mapping.pschema.schema(),
        db,
    };
    let mut nodes = Vec::new();
    let mut attrs = Vec::new();
    p.publish_instance(&root, &rows[0], &mut attrs, &mut nodes)?;
    match nodes.into_iter().find_map(|n| match n {
        Node::Element(e) => Some(e),
        Node::Text(_) => None,
    }) {
        Some(root_element) => Ok(Document::new(root_element)),
        None => Err(PublishError::BadRootCardinality(0)),
    }
}

/// Publish one instance of an element-anchored type as an [`Element`]
/// (convenience for targeted publishing, e.g. "publish show with id 7").
pub fn publish_instance(
    mapping: &Mapping,
    db: &Database,
    ty: &TypeName,
    row: &Row,
) -> Result<Option<Element>, PublishError> {
    let p = Publisher {
        mapping,
        schema: mapping.pschema.schema(),
        db,
    };
    let mut nodes = Vec::new();
    let mut attrs = Vec::new();
    p.publish_instance(ty, row, &mut attrs, &mut nodes)?;
    Ok(nodes.into_iter().find_map(|n| match n {
        Node::Element(e) => Some(e),
        Node::Text(_) => None,
    }))
}

struct Publisher<'a> {
    mapping: &'a Mapping,
    schema: &'a Schema,
    db: &'a Database,
}

impl Publisher<'_> {
    /// Emit the nodes/attributes of one instance into `attrs`/`nodes`.
    /// Element-anchored types append a single element; sequence-shaped
    /// types splice their content into the parent's lists.
    fn publish_instance(
        &self,
        ty: &TypeName,
        row: &Row,
        attrs: &mut Vec<Attribute>,
        nodes: &mut Vec<Node>,
    ) -> Result<(), PublishError> {
        let def = self
            .schema
            .get(ty)
            .ok_or_else(|| inconsistent("type definition", ty))?;
        let tm = self
            .mapping
            .table(ty)
            .ok_or_else(|| inconsistent("table mapping for type", ty))?;
        let mut rel_path: Vec<String> = Vec::new();
        self.publish_type(ty, tm, def, row, &mut rel_path, true, attrs, nodes)
    }

    #[allow(clippy::too_many_arguments)]
    fn publish_type(
        &self,
        ty: &TypeName,
        tm: &TableMapping,
        node_ty: &Type,
        row: &Row,
        rel_path: &mut Vec<String>,
        at_top: bool,
        attrs: &mut Vec<Attribute>,
        nodes: &mut Vec<Node>,
    ) -> Result<(), PublishError> {
        match node_ty {
            Type::Empty => Ok(()),
            Type::Scalar { .. } => {
                if let Some(v) = self.column_value(tm, row, rel_path) {
                    if let Some(text) = value_text(&v) {
                        if !text.is_empty() {
                            nodes.push(Node::Text(text));
                        }
                    }
                }
                Ok(())
            }
            Type::Attribute { name, .. } => {
                rel_path.push(format!("@{name}"));
                if let Some(v) = self.column_value(tm, row, rel_path) {
                    if let Some(text) = value_text(&v) {
                        attrs.push(Attribute {
                            name: name.clone(),
                            value: text,
                        });
                    }
                }
                rel_path.pop();
                Ok(())
            }
            Type::Element { name, content } => {
                let tag = match name {
                    NameTest::Name(n) => {
                        if !at_top {
                            rel_path.push(n.clone());
                        }
                        n.clone()
                    }
                    NameTest::Any | NameTest::AnyExcept(_) => {
                        // Wildcard: tag from the tilde column. Nested
                        // wildcards live behind an `#any` navigation step.
                        if !at_top {
                            rel_path.push(ANY_STEP.into());
                        }
                        rel_path.push(TILDE_STEP.into());
                        let tag = self
                            .column_value(tm, row, rel_path)
                            .and_then(|v| value_text(&v))
                            .unwrap_or_else(|| "any".to_string());
                        rel_path.pop();
                        tag
                    }
                };
                let mut child_attrs = Vec::new();
                let mut child_nodes = Vec::new();
                self.publish_type(
                    ty,
                    tm,
                    content,
                    row,
                    rel_path,
                    false,
                    &mut child_attrs,
                    &mut child_nodes,
                )?;
                // Check emptiness against this element's own prefix before
                // unwinding it.
                let omittable = child_attrs.is_empty()
                    && child_nodes.is_empty()
                    && self.element_is_omittable(tm, row, rel_path, node_ty)?;
                if !at_top {
                    rel_path.pop();
                }
                let element = Element {
                    name: tag,
                    attributes: child_attrs,
                    children: child_nodes,
                };
                if at_top || !omittable {
                    nodes.push(Node::Element(element));
                }
                Ok(())
            }
            Type::Seq(items) => {
                for item in items {
                    self.publish_type(ty, tm, item, row, rel_path, false, attrs, nodes)?;
                }
                Ok(())
            }
            Type::Rep { inner, occurs, .. } if !occurs.multi_valued() => {
                self.publish_type(ty, tm, inner, row, rel_path, false, attrs, nodes)
            }
            Type::Rep { inner, .. } => self.publish_children(ty, inner, row, tm, attrs, nodes),
            Type::Choice(_) | Type::Ref(_) => {
                self.publish_children(ty, node_ty, row, tm, attrs, nodes)
            }
        }
    }

    /// Is an empty nested element genuinely absent (all its columns NULL)?
    fn element_is_omittable(
        &self,
        tm: &TableMapping,
        row: &Row,
        rel_prefix: &[String],
        _ty: &Type,
    ) -> Result<bool, PublishError> {
        // Any column under this prefix non-null → keep the element.
        let table = self
            .mapping
            .catalog
            .table(&tm.table)
            .ok_or_else(|| inconsistent("catalog table", &tm.table))?;
        for (path, target) in &tm.columns {
            if path.starts_with(rel_prefix) {
                if let Some(idx) = table.column_index(&target.column) {
                    if !row[idx].is_null() {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    /// Fetch and publish the child rows of a named-layer site.
    fn publish_children(
        &self,
        owner: &TypeName,
        site: &Type,
        row: &Row,
        tm: &TableMapping,
        attrs: &mut Vec<Attribute>,
        nodes: &mut Vec<Node>,
    ) -> Result<(), PublishError> {
        let table = self
            .mapping
            .catalog
            .table(&tm.table)
            .ok_or_else(|| inconsistent("catalog table", &tm.table))?;
        let key_idx = table
            .column_index(&tm.key)
            .ok_or_else(|| inconsistent("key column", &tm.key))?;
        let my_id = row[key_idx].clone();

        let mut alternatives = Vec::new();
        collect_refs(site, &mut alternatives);
        // Collect (child id, alt, row) across alternatives, then interleave
        // by id to approximate document order within this site.
        let mut children: Vec<(i64, TypeName, Row)> = Vec::new();
        for alt in &alternatives {
            let child_tm = self
                .mapping
                .table(alt)
                .ok_or_else(|| inconsistent("table mapping for type", alt))?;
            let child_table = self.db.table(&child_tm.table)?;
            let Some(fk) = child_tm.parent_fk.get(owner) else {
                continue;
            };
            child_table.create_index(fk)?;
            let rows = child_table
                .index_lookup(fk, &my_id)
                .ok_or_else(|| inconsistent("freshly created index", fk))?;
            let child_key = child_table
                .def
                .column_index(&child_tm.key)
                .ok_or_else(|| inconsistent("key column", &child_tm.key))?;
            for r in rows {
                let id = r[child_key].as_int().unwrap_or(0);
                children.push((id, alt.clone(), r));
            }
        }
        children.sort_by_key(|(id, alt, _)| (*id, alt.clone()));
        for (_, alt, child_row) in children {
            self.publish_instance(&alt, &child_row, attrs, nodes)?;
        }
        Ok(())
    }

    fn column_value(&self, tm: &TableMapping, row: &Row, rel_path: &[String]) -> Option<Value> {
        let target = tm.columns.get(rel_path)?;
        let table = self.mapping.catalog.table(&tm.table)?;
        let idx = table.column_index(&target.column)?;
        let v = row.get(idx)?;
        if v.is_null() {
            None
        } else {
            Some(v.clone())
        }
    }
}

fn collect_refs(ty: &Type, out: &mut Vec<TypeName>) {
    match ty {
        Type::Ref(n) => out.push(n.clone()),
        Type::Choice(items) | Type::Seq(items) => items.iter().for_each(|t| collect_refs(t, out)),
        Type::Rep { inner, .. } => collect_refs(inner, out),
        _ => {}
    }
}

fn value_text(v: &Value) -> Option<String> {
    match v {
        Value::Null => None,
        Value::Int(n) => Some(n.to_string()),
        Value::Str(s) => Some(s.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::rel;
    use crate::shred::shred;
    use crate::stratify::PSchema;
    use legodb_schema::parse_schema;
    use legodb_schema::validate::validate;
    use legodb_xml::parse;
    use legodb_xml::stats::Statistics;

    fn mapping_for(src: &str) -> Mapping {
        rel(
            &PSchema::try_new(parse_schema(src).unwrap()).unwrap(),
            &Statistics::new(),
        )
    }

    const IMDB_SRC: &str = "type IMDB = imdb[ Show{0,*} ]
        type Show = show [ @type[ String ], title[ String ], year[ Integer ],
                           Aka{1,10}, Review{0,*}, ( Movie | TV ) ]
        type Aka = aka[ String ]
        type Review = review[ ~[ String ] ]
        type Movie = box_office[ Integer ], video_sales[ Integer ]
        type TV = seasons[ Integer ], description[ String ], Episode{0,*}
        type Episode = episode[ name[ String ], guest_director[ String ] ]";

    fn sample_doc() -> Document {
        parse(
            r#"<imdb>
                <show type="Movie">
                  <title>Fugitive, The</title><year>1993</year>
                  <aka>Auf der Flucht</aka><aka>Le Fugitif</aka>
                  <review><nyt>ok movie</nyt></review>
                  <box_office>183752965</box_office>
                  <video_sales>72450220</video_sales>
                </show>
                <show type="TV series">
                  <title>X Files, The</title><year>1994</year>
                  <aka>Aux frontieres du Reel</aka>
                  <seasons>10</seasons>
                  <description>Aliens and the FBI</description>
                  <episode><name>Fallen Angel</name>
                           <guest_director>Larry Shaw</guest_director></episode>
                </show>
              </imdb>"#,
        )
        .unwrap()
    }

    #[test]
    fn publish_round_trips_structure() {
        let m = mapping_for(IMDB_SRC);
        let doc = sample_doc();
        let db = shred(&m, &doc).unwrap();
        let rebuilt = publish_all(&m, &db).unwrap();
        // The rebuilt document must validate against the schema...
        assert!(
            validate(m.pschema.schema(), &rebuilt).is_ok(),
            "{}",
            rebuilt.to_xml_pretty()
        );
        // ...and re-shred to identical row counts and contents.
        let db2 = shred(&m, &rebuilt).unwrap();
        for table in db.tables() {
            let t2 = db2.table(&table.def.name).unwrap();
            let mut a = table.scan();
            let mut b = t2.scan();
            a.sort();
            b.sort();
            assert_eq!(a, b, "table {} differs after round trip", table.def.name);
        }
    }

    #[test]
    fn publishes_the_exact_document_for_simple_schemas() {
        let m = mapping_for(
            "type Root = root[ a[ String ], b[ Integer ], Item{0,*} ]
             type Item = item[ name[ String ] ]",
        );
        let doc = parse(
            "<root><a>hi</a><b>7</b><item><name>x</name></item><item><name>y</name></item></root>",
        )
        .unwrap();
        let db = shred(&m, &doc).unwrap();
        let rebuilt = publish_all(&m, &db).unwrap();
        assert_eq!(doc, rebuilt, "rebuilt:\n{}", rebuilt.to_xml_pretty());
    }

    #[test]
    fn wildcard_tags_are_restored() {
        let m = mapping_for(IMDB_SRC);
        let db = shred(&m, &sample_doc()).unwrap();
        let rebuilt = publish_all(&m, &db).unwrap();
        let show = rebuilt.root.first_child("show").unwrap();
        let review = show.first_child("review").unwrap();
        assert!(
            review.first_child("nyt").is_some(),
            "{}",
            rebuilt.to_xml_pretty()
        );
    }

    #[test]
    fn optional_absent_elements_stay_absent() {
        let m = mapping_for("type T = t[ a[ String ]?, b[ String ] ]");
        let doc = parse("<t><b>x</b></t>").unwrap();
        let db = shred(&m, &doc).unwrap();
        let rebuilt = publish_all(&m, &db).unwrap();
        assert_eq!(doc, rebuilt, "{}", rebuilt.to_xml_pretty());
    }

    #[test]
    fn bad_root_cardinality_is_reported() {
        let m = mapping_for("type T = t[ a[ String ] ]");
        let db = Database::from_catalog(&m.catalog);
        assert!(matches!(
            publish_all(&m, &db),
            Err(PublishError::BadRootCardinality(0))
        ));
    }

    #[test]
    fn targeted_instance_publishing() {
        let m = mapping_for(IMDB_SRC);
        let db = shred(&m, &sample_doc()).unwrap();
        let show_rows = db.table("Show").unwrap().scan();
        let e = publish_instance(&m, &db, &TypeName::new("Show"), &show_rows[0])
            .unwrap()
            .expect("an element");
        assert_eq!(e.name, "show");
        assert_eq!(e.first_child("title").unwrap().text(), "Fugitive, The");
        assert_eq!(e.children_named("aka").count(), 2);
    }
}
