//! Deriving an initial p-schema from an arbitrary schema (§3.1: "any XML
//! Schema has an equivalent physical schema").
//!
//! Two starting points, matching the paper's two greedy variants (§5.2):
//!
//! - [`InlineStyle::Outlined`] — *greedy-so*'s start: every element (except
//!   attributes and the type's own top element) is outlined into its own
//!   named type, i.e. its own relation;
//! - [`InlineStyle::Inlined`] — *greedy-si*'s start: every single-valued,
//!   non-recursive type reference is inlined; only multi-valued elements,
//!   union alternatives, and recursive types keep their own names (this is
//!   the inline-as-much-as-possible heuristic of Shanmugasundaram et al).
//!
//! Both produce a schema that validates exactly the same documents as the
//! input (the property tests check this) and satisfies the stratified
//! grammar.

use crate::stratify::PSchema;
use legodb_schema::{NameTest, Schema, Type, TypeName};

/// Which extreme of the inline/outline spectrum to start from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlineStyle {
    /// Outline everything outlineable (PS0 for *greedy-so*).
    Outlined,
    /// Inline everything inlineable (PS0 for *greedy-si*).
    Inlined,
}

/// Derive an equivalent p-schema from `schema` in the requested style.
///
/// # Panics
/// Never for well-formed inputs: the rewriting produces stratified schemas
/// by construction; the final `PSchema::try_new` is a checked assertion of
/// that invariant.
pub fn derive_pschema(schema: &Schema, style: InlineStyle) -> PSchema {
    let mut d = Deriver {
        schema: schema.clone(),
        style,
    };
    let names: Vec<TypeName> = d.schema.names().cloned().collect();
    for name in names {
        let def = d
            .schema
            .get(&name)
            // lint: allow(no-unwrap-in-lib) — iterating names snapshotted from this schema; the lookup cannot miss
            .expect("iterating existing names")
            .clone();
        let is_recursive = d.schema.is_recursive(&name);
        let rewritten = d.rewrite(def, Ctx::Top, is_recursive);
        d.schema.set(name, rewritten);
    }
    let mut schema = d.schema;
    schema.garbage_collect();
    // lint: allow(no-unwrap-in-lib) — the deriver only emits the stratified grammar; a failure here is a derivation bug
    PSchema::try_new(schema).expect("derivation yields a stratified schema")
}

/// Rewriting context: where in the type tree we are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// At the top of a named type's definition (the type's own element may
    /// stay in place).
    Top,
    /// Inside a definition (elements here are candidates for outlining).
    Nested,
    /// Directly inside a multi-valued repetition or a union: only type
    /// references may live here.
    NamedLayer,
}

struct Deriver {
    schema: Schema,
    style: InlineStyle,
}

impl Deriver {
    fn rewrite(&mut self, ty: Type, ctx: Ctx, in_recursive: bool) -> Type {
        match ty {
            // A bare scalar in a repetition/union must be named (the
            // paper's `AnyScalar` companion to `AnyElement`).
            Type::Scalar { .. } if ctx == Ctx::NamedLayer => self.outline(ty, Some("AnyScalar")),
            Type::Empty | Type::Scalar { .. } | Type::Attribute { .. } => ty,
            Type::Element { name, content } => {
                let rewritten = Type::Element {
                    name: name.clone(),
                    content: Box::new(self.rewrite(*content, Ctx::Nested, in_recursive)),
                };
                match (self.style, ctx) {
                    // greedy-so: every nested element becomes its own type.
                    (InlineStyle::Outlined, Ctx::Nested | Ctx::NamedLayer) => {
                        self.outline(rewritten, None)
                    }
                    // Multi-valued/union positions must be outlined in
                    // either style.
                    (InlineStyle::Inlined, Ctx::NamedLayer) => self.outline(rewritten, None),
                    _ => rewritten,
                }
            }
            Type::Seq(items) => {
                let rewritten = Type::seq(
                    items
                        .into_iter()
                        .map(|t| self.rewrite(t, Ctx::Nested, in_recursive)),
                );
                if ctx == Ctx::NamedLayer {
                    self.outline(rewritten, None)
                } else {
                    rewritten
                }
            }
            Type::Choice(items) => {
                // Union alternatives live in the named layer.
                let alts: Vec<Type> = items
                    .into_iter()
                    .map(|t| self.rewrite(t, Ctx::NamedLayer, in_recursive))
                    .collect();
                Type::choice(alts)
            }
            Type::Rep {
                inner,
                occurs,
                avg_count,
            } => {
                if occurs.multi_valued() {
                    let inner = self.rewrite(*inner, Ctx::NamedLayer, in_recursive);
                    Type::rep_with_count(inner, occurs, avg_count)
                } else {
                    // The optional layer stays in the column world...
                    let inner = self.rewrite(*inner, Ctx::Nested, in_recursive);
                    // ...unless the whole optional group must be named.
                    let rebuilt = Type::rep_with_count(inner, occurs, avg_count);
                    if ctx == Ctx::NamedLayer {
                        self.outline(rebuilt, None)
                    } else {
                        rebuilt
                    }
                }
            }
            Type::Ref(name) => match self.style {
                InlineStyle::Outlined => Type::Ref(name),
                InlineStyle::Inlined => {
                    // Inline single-use, non-recursive references that sit
                    // in the column world. References in the named layer
                    // must stay references.
                    if ctx == Ctx::NamedLayer
                        || in_recursive
                        || self.schema.is_recursive(&name)
                        || self.schema.reference_count(&name) > 1
                    {
                        Type::Ref(name)
                    } else {
                        // lint: allow(no-unwrap-in-lib) — presence in the schema checked by the branch above
                        let def = self.schema.get(&name).expect("checked schema").clone();
                        self.rewrite(def, ctx, in_recursive)
                    }
                }
            },
        }
    }

    /// Create a fresh named type for `ty` and return a reference to it.
    fn outline(&mut self, ty: Type, stem_hint: Option<&str>) -> Type {
        let stem = stem_hint
            .map(str::to_string)
            .unwrap_or_else(|| name_stem(&ty));
        let name = self.schema.fresh_name(&stem);
        // The new definition's content is already rewritten; it only needs
        // registering.
        self.schema.set(name.clone(), ty);
        Type::Ref(name)
    }
}

/// A readable type-name stem for an outlined structure: the element name
/// capitalized, `Any` for wildcards, the first element's stem for groups.
fn name_stem(ty: &Type) -> String {
    match ty {
        Type::Element {
            name: NameTest::Name(n),
            ..
        } => capitalize(n),
        Type::Element {
            name: NameTest::Any,
            ..
        } => "Any".to_string(),
        Type::Element {
            name: NameTest::AnyExcept(ex),
            ..
        } => {
            format!(
                "AnyBut{}",
                ex.first().map(|e| capitalize(e)).unwrap_or_default()
            )
        }
        Type::Seq(items) => items
            .first()
            .map(name_stem)
            .map(|s| format!("{s}Grp"))
            .unwrap_or_else(|| "Grp".into()),
        Type::Rep { inner, .. } => name_stem(inner),
        _ => "T".to_string(),
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legodb_schema::gen::{generate, GenConfig};
    use legodb_schema::parse_schema;
    use legodb_schema::validate::validate;
    use legodb_util::StdRng;

    fn imdb_like() -> Schema {
        parse_schema(
            "type IMDB = imdb[ Show{0,*}<#3> ]
             type Show = show [ @type[ String ], title[ String ], year[ Integer ],
                                aka[ String ]{1,10}, review[ ~[ String ] ]{0,*}<#2>,
                                ( Movie | TV ) ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]
             type TV = seasons[ Integer ], description[ String ],
                       episode[ name[ String ], guest_director[ String ] ]{0,*}",
        )
        .unwrap()
    }

    #[test]
    fn outlined_style_creates_a_type_per_element() {
        let p = derive_pschema(&imdb_like(), InlineStyle::Outlined);
        let s = p.schema();
        // title, year, aka, review, box_office, video_sales, seasons,
        // description, episode (and its children) all get their own types.
        assert!(s.get_str("Title").is_some(), "{s}");
        assert!(s.get_str("Year").is_some());
        assert!(s.get_str("Aka").is_some());
        assert!(s.get_str("Box_office").is_some());
        assert!(s.len() >= 12, "got {} types:\n{s}", s.len());
    }

    #[test]
    fn inlined_style_keeps_only_forced_types() {
        let p = derive_pschema(&imdb_like(), InlineStyle::Inlined);
        let s = p.schema();
        // Forced: root, Show (multi-valued), Aka (multi-valued),
        // Review (multi-valued), Movie/TV (union alternatives),
        // Episode (multi-valued). Not a type: title, year, seasons...
        assert!(s.get_str("Title").is_none(), "{s}");
        assert!(s.get_str("Movie").is_some());
        assert!(s.get_str("TV").is_some());
        assert!(s.len() <= 8, "got {} types:\n{s}", s.len());
    }

    #[test]
    fn both_styles_accept_the_same_documents() {
        let schema = imdb_like();
        let outlined = derive_pschema(&schema, InlineStyle::Outlined);
        let inlined = derive_pschema(&schema, InlineStyle::Inlined);
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..40 {
            let doc = generate(&schema, &mut rng, &GenConfig::default());
            assert!(
                validate(&schema, &doc).is_ok(),
                "doc {i} invalid under source schema"
            );
            assert!(
                validate(outlined.schema(), &doc).is_ok(),
                "doc {i} invalid under outlined p-schema:\n{}\n{}",
                outlined.schema(),
                doc.to_xml_pretty()
            );
            assert!(
                validate(inlined.schema(), &doc).is_ok(),
                "doc {i} invalid under inlined p-schema:\n{}\n{}",
                inlined.schema(),
                doc.to_xml_pretty()
            );
        }
    }

    #[test]
    fn recursive_types_survive_both_styles() {
        let schema = parse_schema(
            "type Doc = doc[ AnyElement{0,*} ]
             type AnyElement = ~[ (AnyElement | String){0,*} ]",
        )
        .unwrap();
        let outlined = derive_pschema(&schema, InlineStyle::Outlined);
        assert!(outlined.schema().is_recursive(&TypeName::new("AnyElement")));
        let inlined = derive_pschema(&schema, InlineStyle::Inlined);
        assert!(inlined.schema().is_recursive(&TypeName::new("AnyElement")));
    }

    #[test]
    fn shared_types_are_not_inlined() {
        let schema = parse_schema(
            "type Root = root[ a[ Name ], b[ Name ] ]
             type Name = name[ String ]",
        )
        .unwrap();
        let inlined = derive_pschema(&schema, InlineStyle::Inlined);
        // Name is referenced twice; inlining it would drop a shared table.
        assert!(inlined.schema().get_str("Name").is_some());
    }

    #[test]
    fn avg_count_annotations_survive() {
        let p = derive_pschema(&imdb_like(), InlineStyle::Inlined);
        let mut found = false;
        for (_, ty) in p.schema().iter() {
            ty.visit(&mut |t| {
                if let Type::Rep {
                    avg_count: Some(c), ..
                } = t
                {
                    if (*c - 3.0).abs() < f64::EPSILON {
                        found = true;
                    }
                }
            });
        }
        assert!(found, "Show{{0,*}}<#3> annotation lost:\n{}", p.schema());
    }

    #[test]
    fn derivation_is_idempotent_on_pschemas() {
        let schema = imdb_like();
        let once = derive_pschema(&schema, InlineStyle::Inlined);
        let twice = derive_pschema(once.schema(), InlineStyle::Inlined);
        assert_eq!(once.schema().len(), twice.schema().len());
    }

    #[test]
    fn union_to_options_optional_groups_stay_inline() {
        let schema = parse_schema(
            "type Show = show [ title[ String ],
                                (box_office[ Integer ], video_sales[ Integer ])? ]",
        )
        .unwrap();
        let p = derive_pschema(&schema, InlineStyle::Inlined);
        // The optional group maps to nullable columns, not a new type.
        assert_eq!(p.schema().len(), 1, "{}", p.schema());
    }
}
