//! The stratified physical-type grammar (paper Figure 9) and its checker.
//!
//! A schema is a valid p-schema when every named type's definition is a
//! *physical type expression*:
//!
//! ```text
//! pt := Scalar
//!     | @a[ Scalar-content ]
//!     | nametest[ pt ]            -- nested elements become prefixed columns
//!     | pt , pt , ...
//!     | pt ?                      -- optional layer → nullable columns
//!     | nt {m,n}  (multi-valued)  -- collections of *named types only*
//!     | nt                        -- a single-valued child type
//!     | nt | nt | ...             -- unions of *named types only*
//!     | ()
//! nt := TypeRef | nt "|" nt
//! ```
//!
//! The payoff (paper §3.2): each named type maps to exactly one relation;
//! repetition and union never contain anonymous structure, so child tables
//! and foreign keys are forced to exist wherever the relational model
//! needs them.

use legodb_relational::Layout;
use legodb_schema::{Schema, Type, TypeName};
use std::collections::BTreeMap;
use std::fmt;

/// A schema whose every definition satisfies the stratified grammar.
///
/// The inner schema is reachable read-only; mutation goes through
/// [`PSchema::try_new`] so the invariant cannot be silently broken.
///
/// Beyond the type structure, a p-schema carries one piece of physical
/// design per type: the storage [`Layout`] of the relation it maps to.
/// Only non-default (columnar) entries are stored, so two p-schemas with
/// the same types and the same columnar set compare equal regardless of
/// how their layouts were assigned.
#[derive(Debug, Clone, PartialEq)]
pub struct PSchema {
    schema: Schema,
    /// Types stored columnar; absence means [`Layout::Row`].
    layouts: BTreeMap<TypeName, Layout>,
}

/// Why a schema is not a valid p-schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StratifyError {
    /// A multi-valued repetition contains structure other than type
    /// references.
    RepetitionOfAnonymousType {
        /// The offending type.
        in_type: TypeName,
    },
    /// A union contains structure other than type references.
    UnionOfAnonymousType {
        /// The offending type.
        in_type: TypeName,
    },
    /// An attribute whose content is not scalar.
    NonScalarAttribute {
        /// The offending type.
        in_type: TypeName,
        /// The attribute name.
        attribute: String,
    },
}

impl fmt::Display for StratifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StratifyError::RepetitionOfAnonymousType { in_type } => {
                write!(
                    f,
                    "type {in_type}: multi-valued repetition must contain only type names"
                )
            }
            StratifyError::UnionOfAnonymousType { in_type } => {
                write!(f, "type {in_type}: union must contain only type names")
            }
            StratifyError::NonScalarAttribute { in_type, attribute } => {
                write!(
                    f,
                    "type {in_type}: attribute @{attribute} must have scalar content"
                )
            }
        }
    }
}

impl std::error::Error for StratifyError {}

impl PSchema {
    /// Validate the stratification invariant and wrap. Every type starts
    /// on the default row layout.
    pub fn try_new(schema: Schema) -> Result<PSchema, StratifyError> {
        PSchema::try_new_with_layouts(schema, BTreeMap::new())
    }

    /// Validate and wrap, carrying layout assignments forward. Entries for
    /// types absent from `schema` are dropped (a transformation may have
    /// inlined them away); row entries are normalized to absence.
    pub fn try_new_with_layouts(
        schema: Schema,
        layouts: BTreeMap<TypeName, Layout>,
    ) -> Result<PSchema, StratifyError> {
        for (name, ty) in schema.iter() {
            check_pt(name, ty)?;
        }
        let layouts = layouts
            .into_iter()
            .filter(|(name, layout)| {
                *layout != Layout::Row && schema.iter().any(|(n, _)| n == name)
            })
            .collect();
        Ok(PSchema { schema, layouts })
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Unwrap.
    pub fn into_schema(self) -> Schema {
        self.schema
    }

    /// The root type name.
    pub fn root(&self) -> &TypeName {
        self.schema.root()
    }

    /// The storage layout assigned to `name`'s relation.
    pub fn layout(&self, name: &TypeName) -> Layout {
        self.layouts.get(name).copied().unwrap_or_default()
    }

    /// The layout assignment map (columnar entries only).
    pub fn layouts(&self) -> &BTreeMap<TypeName, Layout> {
        &self.layouts
    }

    /// Assign `name`'s relation a storage layout. Row assignments are
    /// normalized to absence from the map.
    pub fn set_layout(&mut self, name: &TypeName, layout: Layout) {
        if layout == Layout::Row {
            self.layouts.remove(name);
        } else {
            self.layouts.insert(name.clone(), layout);
        }
    }
}

/// Is `ty` a physical type expression?
fn check_pt(in_type: &TypeName, ty: &Type) -> Result<(), StratifyError> {
    match ty {
        Type::Empty | Type::Scalar { .. } => Ok(()),
        Type::Attribute { name, content } => {
            if scalar_content(content) {
                Ok(())
            } else {
                Err(StratifyError::NonScalarAttribute {
                    in_type: in_type.clone(),
                    attribute: name.clone(),
                })
            }
        }
        Type::Element { content, .. } => check_pt(in_type, content),
        Type::Seq(items) => items.iter().try_for_each(|t| check_pt(in_type, t)),
        Type::Choice(items) => {
            if items.iter().all(is_named_layer) {
                Ok(())
            } else {
                Err(StratifyError::UnionOfAnonymousType {
                    in_type: in_type.clone(),
                })
            }
        }
        Type::Rep { inner, occurs, .. } => {
            if occurs.multi_valued() {
                if is_named_layer(inner) {
                    Ok(())
                } else {
                    Err(StratifyError::RepetitionOfAnonymousType {
                        in_type: in_type.clone(),
                    })
                }
            } else {
                // The optional layer: `pt?` stays in the column world.
                check_pt(in_type, inner)
            }
        }
        Type::Ref(_) => Ok(()),
    }
}

/// The `nt` layer: type references and unions thereof.
fn is_named_layer(ty: &Type) -> bool {
    match ty {
        Type::Ref(_) => true,
        Type::Choice(items) => items.iter().all(is_named_layer),
        _ => false,
    }
}

/// Attribute content must be scalar (possibly a union of scalars).
fn scalar_content(ty: &Type) -> bool {
    match ty {
        Type::Scalar { .. } | Type::Empty => true,
        Type::Choice(items) => items.iter().all(scalar_content),
        Type::Rep { inner, occurs, .. } => !occurs.multi_valued() && scalar_content(inner),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legodb_schema::parse_schema;

    fn check(src: &str) -> Result<PSchema, StratifyError> {
        PSchema::try_new(parse_schema(src).unwrap())
    }

    #[test]
    fn paper_figure8_pschema_is_valid() {
        let p = check(
            "type Show = show [ @type[ String ], title[ String ], year[ Integer ], Reviews{0,*} ]
             type Reviews = reviews[ String ]",
        );
        assert!(p.is_ok());
    }

    #[test]
    fn multi_valued_anonymous_element_is_rejected() {
        let err = check("type Show = show [ reviews[ String ]{0,*} ]").unwrap_err();
        assert!(matches!(
            err,
            StratifyError::RepetitionOfAnonymousType { .. }
        ));
    }

    #[test]
    fn union_of_refs_is_valid_but_union_of_elements_is_not() {
        assert!(check(
            "type Show = show [ title[ String ], (Movie | TV) ]
             type Movie = box_office[ Integer ]
             type TV = seasons[ Integer ]"
        )
        .is_ok());
        let err =
            check("type Show = show [ (box_office[ Integer ] | seasons[ Integer ]) ]").unwrap_err();
        assert!(matches!(err, StratifyError::UnionOfAnonymousType { .. }));
    }

    #[test]
    fn optional_layer_is_part_of_the_column_world() {
        // `(box_office, video_sales)?` — the union-to-options rewriting.
        assert!(check(
            "type Show = show [ title[ String ],
                                (box_office[ Integer ], video_sales[ Integer ])?,
                                (seasons[ Integer ], description[ String ], Episode{0,*})? ]
             type Episode = episode[ name[ String ] ]"
        )
        .is_ok());
    }

    #[test]
    fn nested_singleton_elements_are_columns() {
        assert!(check(
            "type Actor = actor [ name[ String ],
                                  biography[ birthday[ String ], text[ String ] ] ]"
        )
        .is_ok());
    }

    #[test]
    fn bare_refs_in_sequences_are_valid() {
        // `type TV = seasons, Description, Episode*` — Description is a
        // single-valued child type (the outlining example of §4.1).
        assert!(check(
            "type TV = seasons[ Integer ], Description, Episode{0,*}
             type Description = description[ String ]
             type Episode = episode[ name[ String ] ]"
        )
        .is_ok());
    }

    #[test]
    fn non_scalar_attribute_is_rejected() {
        let err = check("type T = t[ @a[ b[ String ] ] ]").unwrap_err();
        assert!(matches!(err, StratifyError::NonScalarAttribute { .. }));
    }

    #[test]
    fn wildcard_elements_are_valid_columns() {
        assert!(check("type Review = review[ ~[ String ] ]").is_ok());
        assert!(check("type Other = ~!nyt[ String ]").is_ok());
    }

    #[test]
    fn recursive_named_types_are_valid() {
        assert!(check("type AnyElement = ~[ AnyElement{0,*} ]").is_ok());
    }

    #[test]
    fn layout_assignments_normalize_and_survive_revalidation() {
        let mut p = check(
            "type Show = show [ title[ String ], Reviews{0,*} ]
             type Reviews = reviews[ String ]",
        )
        .unwrap();
        let show = TypeName::from("Show");
        let reviews = TypeName::from("Reviews");
        assert_eq!(p.layout(&show), Layout::Row);
        p.set_layout(&show, Layout::Columnar);
        assert_eq!(p.layout(&show), Layout::Columnar);
        // Row assignments are normalized to absence: equal to a fresh map.
        p.set_layout(&reviews, Layout::Columnar);
        p.set_layout(&reviews, Layout::Row);
        assert_eq!(p.layouts().len(), 1);
        // Carrying layouts into a new schema drops entries for types that
        // no longer exist.
        let narrower = parse_schema("type Show = show [ title[ String ] ]").unwrap();
        let mut carried = p.layouts().clone();
        carried.insert(TypeName::from("Gone"), Layout::Columnar);
        let q = PSchema::try_new_with_layouts(narrower, carried).unwrap();
        assert_eq!(q.layout(&show), Layout::Columnar);
        assert_eq!(q.layouts().len(), 1);
    }

    #[test]
    fn nested_union_of_refs_in_rep_is_valid() {
        assert!(check(
            "type Reviews = review[ (NYTReview | OtherReview){0,*} ]
             type NYTReview = nyt[ String ]
             type OtherReview = ~!nyt[ String ]"
        )
        .is_ok());
    }
}
