//! The fixed mapping `rel(ps)` from p-schemas to relational schemas
//! (paper §3.2, Table 1), including the translation of XML path
//! statistics into relational catalog statistics.
//!
//! Per named type `T`:
//! - one relation `T` with key column `T_id`;
//! - a foreign-key column `parent_PT` for every parent type `PT`
//!   (types whose definition references `T`);
//! - one column per reachable scalar position in `T`'s definition, with
//!   underscore-joined names for nested elements (`biography_birthday`);
//! - columns under the optional layer are nullable;
//! - wildcard elements contribute a `tilde` column holding the actual tag
//!   name (Table 1's `~` row);
//! - scalar-only types get a `__data` column.
//!
//! Statistics are translated by locating each type's *occurrence paths*
//! (absolute document label paths of its anchor element) and reading the
//! path-keyed [`Statistics`] there: occurrence counts become table
//! cardinalities, text sizes become column widths, min/max/distinct carry
//! over, and missing optional members become null fractions.

use crate::stratify::PSchema;
use legodb_relational::{Catalog, ColumnDef, ColumnStats, ForeignKey, Layout, SqlType, TableDef};
use legodb_schema::{NameTest, ScalarKind, ScalarStats, Schema, Type, TypeName};
use legodb_util::StableHasher;
use legodb_xml::stats::{Path, Statistics};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::{self, Write as _};

/// The pseudo path step for the content of a wildcard element. Translated
/// to `TILDE` (the paper's Appendix A convention) for statistics lookups.
pub const ANY_STEP: &str = "#any";
/// The pseudo path step addressing a wildcard element's *name* column.
pub const TILDE_STEP: &str = "#tilde";

/// Where a column's value lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnTarget {
    /// Column name in the type's table.
    pub column: String,
    /// Scalar kind stored there (`#tilde` columns are strings).
    pub kind: ScalarKind,
    /// Whether the column may be NULL.
    pub nullable: bool,
}

/// How a type instance is anchored in the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// The type's definition is an element: instances are those elements.
    OwnElement,
    /// The type's definition is a sequence/group: instances live inside
    /// the *parent's* element (e.g. `type Movie = box_office[..], ...`).
    ParentElement,
}

/// One site where a type occurs in documents.
#[derive(Debug, Clone, PartialEq)]
pub struct Occurrence {
    /// Absolute label path of the anchor element.
    pub path: Path,
    /// Anchoring mode.
    pub anchor: Anchor,
    /// The `<#count>` annotation of the enclosing repetition, if the site
    /// sits inside one. Annotations are *positional* information that path
    /// statistics cannot carry (e.g. after a repetition split, the table
    /// holds one fewer occurrence per parent than the path count says),
    /// so they take precedence over path counts.
    pub rep_avg: Option<f64>,
}

/// Relational mapping of one type.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMapping {
    /// The mapped type.
    pub type_name: TypeName,
    /// Table name (currently the type name).
    pub table: String,
    /// Key column name (`T_id`).
    pub key: String,
    /// Parent type → foreign-key column name.
    pub parent_fk: BTreeMap<TypeName, String>,
    /// Relative path (steps from the anchor element) → column.
    /// The empty path addresses the anchor element's own scalar content.
    pub columns: BTreeMap<Vec<String>, ColumnTarget>,
    /// Document sites where instances occur.
    pub occurrences: Vec<Occurrence>,
}

impl TableMapping {
    /// Look up the column for a relative path.
    pub fn column(&self, rel_path: &[String]) -> Option<&ColumnTarget> {
        self.columns.get(rel_path)
    }
}

/// The full mapping: p-schema + catalog + per-type table mappings.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// The source p-schema.
    pub pschema: PSchema,
    /// The generated relational catalog (definitions + statistics).
    pub catalog: Catalog,
    /// Per-type mapping detail, keyed by type name.
    pub tables: BTreeMap<TypeName, TableMapping>,
    /// Per-type derivation fingerprints: a stable hash over everything
    /// [`build_table`] reads for the type (its definition, occurrence
    /// sites, parents, shallow reference closure, and the statistics).
    /// Equal fingerprints guarantee identical table definitions, which is
    /// what lets [`rel_incremental`] reuse tables from a parent mapping.
    pub fingerprints: BTreeMap<TypeName, u64>,
}

impl Mapping {
    /// The table mapping for a type.
    pub fn table(&self, ty: &TypeName) -> Option<&TableMapping> {
        self.tables.get(ty)
    }

    /// The root type.
    pub fn root(&self) -> &TypeName {
        self.pschema.root()
    }

    /// Table names whose derivation differs between `self` and `parent`:
    /// types created or removed, plus types whose fingerprint changed
    /// (definition rewritten, parents or occurrence sites shifted, or
    /// statistics swapped).
    pub fn changed_tables(&self, parent: &Mapping) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (name, fp) in &self.fingerprints {
            if parent.fingerprints.get(name) != Some(fp) {
                out.insert(name.to_string());
            }
        }
        for name in parent.fingerprints.keys() {
            if !self.fingerprints.contains_key(name) {
                out.insert(name.to_string());
            }
        }
        out
    }
}

/// Apply the fixed mapping to a p-schema, translating `stats` into the
/// relational catalog.
pub fn rel(pschema: &PSchema, stats: &Statistics) -> Mapping {
    build_mapping(pschema, stats, None)
}

/// Like [`rel`], but reuses per-type tables from `parent` wherever the
/// type's derivation fingerprint is unchanged. The result is **identical**
/// to `rel(pschema, stats)` — reuse is a pure optimization, valid because
/// equal fingerprints imply bitwise-equal table definitions.
pub fn rel_incremental(pschema: &PSchema, stats: &Statistics, parent: &Mapping) -> Mapping {
    build_mapping(pschema, stats, Some(parent))
}

fn build_mapping(pschema: &PSchema, stats: &Statistics, parent: Option<&Mapping>) -> Mapping {
    let schema = pschema.schema();
    let occurrences = discover_occurrences(schema);
    let stats_fp = stats_fingerprint(stats);
    let parents_index = parents_index(schema);
    let no_parents = Vec::new();

    // Per-type shallow fingerprints (definition + occurrence sites) and
    // reference-closure fingerprints, computed once and combined below.
    // Without this pass a type's definition is re-hashed once per child
    // type, since parents contribute to every child's fingerprint.
    let mut shallow = BTreeMap::new();
    let mut refs = BTreeMap::new();
    for name in schema.names() {
        // lint: allow(no-unwrap-in-lib) — iterating names owned by this schema; the lookup cannot miss
        let def = schema.get(name).expect("iterating names");
        let mut h = StableHasher::new();
        hash_debug(&mut h, def);
        hash_debug(&mut h, &occurrences.get(name));
        shallow.insert(name.clone(), h.finish());
        let mut h = StableHasher::new();
        hash_ref_deps(schema, def, &mut h, 0);
        refs.insert(name.clone(), h.finish());
    }

    let mut catalog = Catalog::new();
    let mut tables = BTreeMap::new();
    let mut fingerprints = BTreeMap::new();

    for name in schema.names() {
        // lint: allow(no-unwrap-in-lib) — iterating names owned by this schema; the lookup cannot miss
        let def = schema.get(name).expect("iterating names");
        let parents = parents_index.get(name).unwrap_or(&no_parents);
        let layout = pschema.layout(name);
        let fp = type_fingerprint(name, parents, &shallow, &refs, stats_fp, layout);
        let reused = parent.and_then(|pm| {
            if pm.fingerprints.get(name) != Some(&fp) {
                return None;
            }
            let table_def = pm.catalog.table(name.as_str())?.clone();
            let table_mapping = pm.tables.get(name)?.clone();
            Some((table_def, table_mapping))
        });
        let (mut table_def, table_mapping) = match reused {
            Some(pair) => pair,
            None => {
                let occs = occurrences.get(name).cloned().unwrap_or_default();
                build_table(schema, name, def, parents, &occs, &occurrences, stats)
            }
        };
        // Physical design: the p-schema's layout assignment becomes the
        // table's storage layout. (On the reuse path this is a no-op:
        // layout is part of the fingerprint, so equal fingerprints imply
        // the cached def already carries the same layout.)
        table_def.layout = layout;
        catalog.add(table_def);
        tables.insert(name.clone(), table_mapping);
        fingerprints.insert(name.clone(), fp);
    }

    Mapping {
        pschema: pschema.clone(),
        catalog,
        tables,
        fingerprints,
    }
}

/// Streams `Debug` formatting straight into a [`StableHasher`],
/// avoiding the intermediate `String` a `format!` would allocate.
struct HashWriter<'a>(&'a mut StableHasher);

impl fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.write_str(s);
        Ok(())
    }
}

fn hash_debug(h: &mut StableHasher, value: &impl fmt::Debug) {
    let _ = write!(HashWriter(h), "{value:?}");
}

/// One fingerprint over all recorded statistics. Within a single search
/// the statistics never change, so this collapses to a constant; across
/// searches it keeps fingerprints from colliding between stat sets.
fn stats_fingerprint(stats: &Statistics) -> u64 {
    let mut h = StableHasher::new();
    for (path, stat) in stats.iter() {
        hash_debug(&mut h, path);
        hash_debug(&mut h, stat);
    }
    h.finish()
}

/// All parent lists in one walk over every definition, instead of
/// [`Schema::parents_of`]'s per-type scan of the whole schema. Produces
/// the same lists in the same order (referencing types in schema order,
/// each listed once).
fn parents_index(schema: &Schema) -> BTreeMap<TypeName, Vec<TypeName>> {
    let mut index: BTreeMap<TypeName, Vec<TypeName>> = BTreeMap::new();
    for name in schema.names() {
        // lint: allow(no-unwrap-in-lib) — iterating names owned by this schema; the lookup cannot miss
        let def = schema.get(name).expect("iterating names");
        let mut seen = BTreeSet::new();
        def.visit(&mut |t| {
            if let Type::Ref(child) = t {
                if seen.insert(child.clone()) {
                    index.entry(child.clone()).or_default().push(name.clone());
                }
            }
        });
    }
    index
}

/// Hash the *shallow reference closure* of a definition: for each type
/// referenced from `def`, its name plus — for element-shaped targets —
/// the top-level name test (all `build_table` reads of a referenced
/// element is its anchor name), or — for group-shaped targets — a
/// recursive descent (member counting in [`collect_members`] walks
/// through group refs). Depth-bounded like `collect_members` itself.
fn hash_ref_deps(schema: &Schema, def: &Type, h: &mut StableHasher, depth: usize) {
    if depth > 16 {
        return;
    }
    def.visit(&mut |t| {
        if let Type::Ref(name) = t {
            h.write_str(name.as_str());
            match schema.get(name) {
                Some(Type::Element { name: nt, .. }) => {
                    h.write_str("elem:");
                    hash_debug(h, nt);
                }
                Some(group) => {
                    h.write_str("group");
                    hash_ref_deps(schema, group, h, depth + 1);
                }
                None => {
                    h.write_str("dangling");
                }
            }
        }
    });
}

/// The derivation fingerprint of one type: everything [`build_table`]
/// reads to produce the type's `TableDef` + `TableMapping`, combined
/// from the precomputed per-type `shallow` (definition + occurrences)
/// and `refs` (reference closure) hashes, plus the type's storage
/// [`Layout`] (which is stamped onto the table def after building).
/// Equal fingerprints (for the same statistics) imply identical outputs.
fn type_fingerprint(
    name: &TypeName,
    parents: &[TypeName],
    shallow: &BTreeMap<TypeName, u64>,
    refs: &BTreeMap<TypeName, u64>,
    stats_fp: u64,
    layout: Layout,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(stats_fp);
    h.write_u64(layout as u64);
    h.write_str(name.as_str());
    h.write_u64(shallow.get(name).copied().unwrap_or(0));
    h.write_u64(refs.get(name).copied().unwrap_or(0));
    // Parents contribute FK columns (in declaration order) and their row
    // estimates read the parent's own definition, occurrences, and member
    // closure.
    h.write_u64(parents.len() as u64);
    for parent in parents {
        h.write_str(parent.as_str());
        h.write_u64(shallow.get(parent).copied().unwrap_or(0));
        h.write_u64(refs.get(parent).copied().unwrap_or(0));
    }
    h.finish()
}

/// The anchor step contributed by a type's top element (`None` for
/// sequence-shaped types, `TILDE` for wildcard elements).
fn anchor_step(def: &Type) -> Option<String> {
    match def {
        Type::Element { name, .. } => Some(match name {
            NameTest::Name(n) => n.clone(),
            NameTest::Any | NameTest::AnyExcept(_) => "TILDE".to_string(),
        }),
        _ => None,
    }
}

/// Walk the schema from the root, recording each type's occurrence paths.
fn discover_occurrences(schema: &Schema) -> BTreeMap<TypeName, Vec<Occurrence>> {
    let mut out: BTreeMap<TypeName, Vec<Occurrence>> = BTreeMap::new();
    // (type, anchor path) pairs pending exploration.
    let root = schema.root().clone();
    let root_def = schema.root_type();
    let root_anchor = match anchor_step(root_def) {
        Some(step) => Path::new([step]),
        None => Path::new(Vec::<String>::new()),
    };
    let root_occ = Occurrence {
        path: root_anchor,
        anchor: if matches!(root_def, Type::Element { .. }) {
            Anchor::OwnElement
        } else {
            Anchor::ParentElement
        },
        rep_avg: None,
    };
    let mut queue = vec![(root.clone(), root_occ.clone())];
    out.entry(root).or_default().push(root_occ);

    while let Some((name, occ)) = queue.pop() {
        let Some(def) = schema.get(&name) else {
            continue;
        };
        // Walk inside the definition; the current element path starts at
        // the anchor.
        walk_refs(
            def,
            &occ.path,
            true,
            None,
            &mut |child: &TypeName, path: &Path, rep_avg| {
                // lint: allow(no-unwrap-in-lib) — walk_occurrences only visits types defined in the schema
                let child_def = schema.get(child).expect("checked schema");
                let child_occ = match anchor_step(child_def) {
                    Some(step) => Occurrence {
                        path: path.child(step),
                        anchor: Anchor::OwnElement,
                        rep_avg,
                    },
                    None => Occurrence {
                        path: path.clone(),
                        anchor: Anchor::ParentElement,
                        rep_avg,
                    },
                };
                let known = out.entry(child.clone()).or_default();
                if !known.contains(&child_occ) {
                    // Bound the bookkeeping on recursive schemas: beyond a few
                    // distinct sites the extra paths add no information.
                    if known.len() < 8 {
                        known.push(child_occ.clone());
                        queue.push((child.clone(), child_occ));
                    }
                }
            },
        );
    }
    out
}

/// Visit each `Ref` in `ty` with the element path at which it occurs.
/// `at_top` skips the definition's own top element (its name is already in
/// the anchor path).
fn walk_refs(
    ty: &Type,
    path: &Path,
    at_top: bool,
    rep_avg: Option<f64>,
    visit: &mut impl FnMut(&TypeName, &Path, Option<f64>),
) {
    match ty {
        Type::Empty | Type::Scalar { .. } | Type::Attribute { .. } => {}
        Type::Element { name, content } => {
            if at_top {
                walk_refs(content, path, false, None, visit);
            } else {
                let step = match name {
                    NameTest::Name(n) => n.clone(),
                    _ => "TILDE".to_string(),
                };
                let child_path = path.child(step);
                walk_refs(content, &child_path, false, None, visit);
            }
        }
        Type::Seq(items) | Type::Choice(items) => {
            for item in items {
                walk_refs(item, path, false, rep_avg, visit);
            }
        }
        Type::Rep {
            inner, avg_count, ..
        } => walk_refs(inner, path, false, avg_count.or(rep_avg), visit),
        Type::Ref(name) => visit(name, path, rep_avg),
    }
}

/// A column being accumulated during flattening.
struct PendingColumn {
    name_parts: Vec<String>,
    rel_path: Vec<String>,
    kind: ScalarKind,
    annotated: ScalarStats,
    nullable: bool,
}

/// Build one table definition + mapping for a type. `occurrence_map` is
/// the full per-type occurrence index (computed once per mapping), used
/// to estimate parent cardinalities for FK column statistics.
fn build_table(
    schema: &Schema,
    name: &TypeName,
    def: &Type,
    parents: &[TypeName],
    occurrences: &[Occurrence],
    occurrence_map: &BTreeMap<TypeName, Vec<Occurrence>>,
    stats: &Statistics,
) -> (TableDef, TableMapping) {
    let mut table = TableDef::new(name.as_str());
    let key = format!("{name}_id");

    // Table cardinality first: column null fractions are relative to it.
    let rows = estimate_rows(schema, def, occurrences, stats);
    table.stats.rows = rows;

    // Key column.
    let key_col = ColumnDef::new(&key, SqlType::Int).with_stats(ColumnStats {
        avg_width: 8.0,
        distinct: Some(rows.max(1.0)),
        min: Some(0),
        max: Some(rows.max(1.0) as i64),
        null_fraction: 0.0,
    });
    table.columns.push(key_col);
    table.key = Some(key.clone());

    // Foreign keys to parents.
    let multi_parent = parents.len() > 1;
    let mut parent_fk = BTreeMap::new();
    for parent in parents {
        let fk_name = format!("parent_{parent}");
        let parent_rows = 1.0_f64.max(
            // Parents may not be built yet; estimate from their own
            // occurrence statistics on demand.
            estimate_rows(
                schema,
                // lint: allow(no-unwrap-in-lib) — occurrence map keys come from the schema's own names
                schema.get(parent).expect("checked schema"),
                occurrence_map.get(parent).map(Vec::as_slice).unwrap_or(&[]),
                stats,
            ),
        );
        let mut col = ColumnDef::new(&fk_name, SqlType::Int).with_stats(ColumnStats {
            avg_width: 8.0,
            distinct: Some(parent_rows),
            min: None,
            max: None,
            null_fraction: if multi_parent { 0.5 } else { 0.0 },
        });
        if multi_parent {
            col = col.nullable();
        }
        table.columns.push(col);
        table.foreign_keys.push(ForeignKey {
            column: fk_name.clone(),
            parent_table: parent.to_string(),
        });
        parent_fk.insert(parent.clone(), fk_name);
    }

    // Data columns from flattening the definition.
    let mut pending = Vec::new();
    let anchor_name = match def {
        Type::Element {
            name: NameTest::Name(n),
            content,
        } => {
            flatten(
                content,
                &mut Vec::new(),
                &mut Vec::new(),
                false,
                &mut pending,
            );
            Some(n.clone())
        }
        Type::Element { name: _, content } => {
            // Wildcard anchor: a `tilde` column for the tag name.
            pending.push(PendingColumn {
                name_parts: vec!["tilde".into()],
                rel_path: vec![TILDE_STEP.into()],
                kind: ScalarKind::String,
                annotated: ScalarStats::none(),
                nullable: false,
            });
            flatten(
                content,
                &mut Vec::new(),
                &mut Vec::new(),
                false,
                &mut pending,
            );
            None
        }
        other => {
            flatten(other, &mut Vec::new(), &mut Vec::new(), false, &mut pending);
            None
        }
    };

    let mut columns_map = BTreeMap::new();
    let mut used: BTreeMap<String, usize> = BTreeMap::new();
    for col in pending {
        let base_name = if col.name_parts.is_empty() {
            anchor_name.clone().unwrap_or_else(|| "__data".to_string())
        } else {
            col.name_parts.join("_")
        };
        // Avoid clashes with the key/FK columns and among data columns.
        let mut column_name = base_name.clone();
        if table.column(&column_name).is_some() || used.contains_key(&column_name) {
            let n = used.entry(base_name.clone()).or_insert(1);
            *n += 1;
            column_name = format!("{base_name}_{n}");
        }
        used.entry(column_name.clone()).or_insert(1);

        let col_stats = column_stats(&col, occurrences, stats, rows);
        let ty = sql_type(col.kind, &col_stats);
        let mut def = ColumnDef::new(&column_name, ty).with_stats(col_stats);
        if col.nullable {
            def = def.nullable();
        }
        table.columns.push(def);
        columns_map.insert(
            col.rel_path,
            ColumnTarget {
                column: column_name,
                kind: col.kind,
                nullable: col.nullable,
            },
        );
    }

    let mapping = TableMapping {
        type_name: name.clone(),
        table: name.to_string(),
        key,
        parent_fk,
        columns: columns_map,
        occurrences: occurrences.to_vec(),
    };
    (table, mapping)
}

/// Flatten a physical-type expression into pending columns.
fn flatten(
    ty: &Type,
    name_parts: &mut Vec<String>,
    rel_path: &mut Vec<String>,
    nullable: bool,
    out: &mut Vec<PendingColumn>,
) {
    match ty {
        Type::Empty => {}
        Type::Scalar { kind, stats } => out.push(PendingColumn {
            name_parts: name_parts.clone(),
            rel_path: rel_path.clone(),
            kind: *kind,
            annotated: stats.clone(),
            nullable,
        }),
        Type::Attribute { name, content } => {
            let (kind, annotated) = scalar_of(content);
            name_parts.push(name.clone());
            rel_path.push(format!("@{name}"));
            out.push(PendingColumn {
                name_parts: name_parts.clone(),
                rel_path: rel_path.clone(),
                kind,
                annotated,
                nullable,
            });
            name_parts.pop();
            rel_path.pop();
        }
        Type::Element { name, content } => match name {
            NameTest::Name(n) => {
                name_parts.push(n.clone());
                rel_path.push(n.clone());
                flatten(content, name_parts, rel_path, nullable, out);
                name_parts.pop();
                rel_path.pop();
            }
            NameTest::Any | NameTest::AnyExcept(_) => {
                // Inlined wildcard element: a name column + content columns.
                // The tilde path is `[.., #any, #tilde]`: navigate into the
                // wildcard child, then read its tag name.
                rel_path.push(ANY_STEP.into());
                name_parts.push("tilde".into());
                rel_path.push(TILDE_STEP.into());
                out.push(PendingColumn {
                    name_parts: name_parts.clone(),
                    rel_path: rel_path.clone(),
                    kind: ScalarKind::String,
                    annotated: ScalarStats::none(),
                    nullable,
                });
                name_parts.pop();
                rel_path.pop();
                name_parts.push("data".into());
                flatten(content, name_parts, rel_path, nullable, out);
                name_parts.pop();
                rel_path.pop();
            }
        },
        Type::Seq(items) => {
            for item in items {
                flatten(item, name_parts, rel_path, nullable, out);
            }
        }
        Type::Rep { inner, occurs, .. } if !occurs.multi_valued() => {
            // Optional layer: nullable columns.
            flatten(inner, name_parts, rel_path, true, out);
        }
        // Child tables: no columns here.
        Type::Rep { .. } | Type::Choice(_) | Type::Ref(_) => {}
    }
}

/// The scalar kind (and annotations) of an attribute's content.
fn scalar_of(ty: &Type) -> (ScalarKind, ScalarStats) {
    match ty {
        Type::Scalar { kind, stats } => (*kind, stats.clone()),
        Type::Choice(items) => items
            .first()
            .map(scalar_of)
            .unwrap_or((ScalarKind::String, ScalarStats::none())),
        Type::Rep { inner, .. } => scalar_of(inner),
        _ => (ScalarKind::String, ScalarStats::none()),
    }
}

/// Translate a relative path to the statistics path convention:
/// `#any` → `TILDE`, `#tilde` is dropped (the name column has no direct
/// statistics path), attributes keep their `@`.
fn stats_steps(rel_path: &[String]) -> Option<Vec<String>> {
    let mut out = Vec::new();
    for step in rel_path {
        if step == TILDE_STEP {
            return None;
        }
        if step == ANY_STEP {
            out.push("TILDE".to_string());
        } else {
            out.push(step.clone());
        }
    }
    Some(out)
}

/// Occurrence count of a path, with the wildcard-exclusion adjustment:
/// for a `~!a,b` anchor, the count is the TILDE total minus the named
/// exclusions (when those are recorded).
fn path_count(stats: &Statistics, path: &Path) -> Option<f64> {
    stats.get_path(path).and_then(|s| s.count).map(|c| c as f64)
}

/// Estimated instance count of a type from its occurrences.
fn estimate_rows(
    schema: &Schema,
    def: &Type,
    occurrences: &[Occurrence],
    stats: &Statistics,
) -> f64 {
    let mut total = 0.0;
    let mut any = false;
    for occ in occurrences {
        // An explicit `<#count>` annotation on the enclosing repetition is
        // positional information path statistics cannot express; it wins.
        if let Some(avg) = occ.rep_avg {
            let parent = occ
                .path
                .parent()
                .and_then(|p| path_count(stats, &p))
                .unwrap_or(1.0);
            total += parent * avg;
            any = true;
            continue;
        }
        let count = match occ.anchor {
            Anchor::OwnElement => {
                match def {
                    Type::Element {
                        name: NameTest::AnyExcept(excluded),
                        ..
                    } => {
                        // TILDE total minus named exclusions.
                        let tilde = path_count(stats, &occ.path);
                        tilde.map(|t| {
                            let parent = occ
                                .path
                                .parent()
                                .unwrap_or_else(|| Path::new(Vec::<String>::new()));
                            let removed: f64 = excluded
                                .iter()
                                .filter_map(|e| path_count(stats, &parent.child(e.clone())))
                                .sum();
                            (t - removed).max(0.0)
                        })
                    }
                    Type::Element {
                        name: NameTest::Name(_),
                        content,
                    } => {
                        // Prefer the literal path; a wildcard-materialized
                        // name (e.g. `nyt`) may be recorded under its own
                        // label even when siblings use TILDE.
                        let anchor = path_count(stats, &occ.path).or_else(|| {
                            let parent = occ.path.parent()?;
                            path_count(stats, &parent.child("TILDE"))
                        });
                        // Union-distributed parts share an anchor path
                        // (`imdb/show` for both Show_Part1 and Show_Part2):
                        // the discriminating *required members* partition
                        // the count (box_office ⇒ movie part, seasons ⇒ TV
                        // part). Take the minimum of anchor and members.
                        let members = first_level_members(schema, content);
                        let member_min = members
                            .iter()
                            .filter_map(|m| path_count(stats, &occ.path.child(m.clone())))
                            .reduce(f64::min);
                        match (anchor, member_min) {
                            (Some(a), Some(m)) => Some(a.min(m)),
                            (a, m) => a.or(m),
                        }
                    }
                    _ => path_count(stats, &occ.path),
                }
            }
            Anchor::ParentElement => {
                // Sequence-shaped type: instances are present in a parent
                // element when the group's members are. Use the minimum
                // count over the group's required member elements.
                let members = first_level_members(schema, def);
                let counts: Vec<f64> = members
                    .iter()
                    .filter_map(|m| path_count(stats, &occ.path.child(m.clone())))
                    .collect();
                if counts.is_empty() {
                    path_count(stats, &occ.path)
                } else {
                    counts.iter().cloned().reduce(f64::min)
                }
            }
        };
        let count = count.or_else(|| {
            // No direct statistics for this path: a (non-repeated) child
            // occurs once per parent, so inherit the nearest ancestor's
            // count rather than defaulting to a phantom one-row table.
            let mut p = occ.path.parent();
            while let Some(path) = p {
                if let Some(c) = path_count(stats, &path) {
                    return Some(c);
                }
                p = path.parent();
            }
            None
        });
        if let Some(c) = count {
            total += c;
            any = true;
        }
    }
    if any {
        total
    } else {
        // No statistics at all: default to one instance per occurrence site.
        occurrences.len().max(1) as f64
    }
}

/// The first-level *required* member element names of a sequence-shaped
/// definition (used to count group instances).
fn first_level_members(schema: &Schema, def: &Type) -> Vec<String> {
    let mut out = Vec::new();
    collect_members(schema, def, false, &mut out, 0);
    out
}

fn collect_members(
    schema: &Schema,
    ty: &Type,
    optional: bool,
    out: &mut Vec<String>,
    depth: usize,
) {
    if depth > 16 {
        return;
    }
    match ty {
        Type::Element {
            name: NameTest::Name(n),
            ..
        } if !optional => out.push(n.clone()),
        Type::Seq(items) => {
            for item in items {
                collect_members(schema, item, optional, out, depth);
            }
        }
        Type::Rep { inner, occurs, .. } if !occurs.multi_valued() => {
            collect_members(schema, inner, optional || occurs.nullable(), out, depth)
        }
        Type::Ref(name) if !optional => {
            // Outlined members hide behind references; a singleton ref's
            // top element is a required member.
            if let Some(def) = schema.get(name) {
                if let Type::Element {
                    name: NameTest::Name(n),
                    ..
                } = def
                {
                    out.push(n.clone());
                } else {
                    collect_members(schema, def, optional, out, depth + 1);
                }
            }
        }
        _ => {}
    }
}

/// Build column statistics by probing each occurrence path.
fn column_stats(
    col: &PendingColumn,
    occurrences: &[Occurrence],
    stats: &Statistics,
    table_rows: f64,
) -> ColumnStats {
    let mut merged = ColumnStats {
        avg_width: col.annotated.size.unwrap_or(match col.kind {
            ScalarKind::Integer => 8.0,
            ScalarKind::String => 16.0,
        }),
        distinct: col.annotated.distinct.map(|d| d as f64),
        min: col.annotated.min,
        max: col.annotated.max,
        null_fraction: if col.nullable { 0.5 } else { 0.0 },
    };
    let Some(steps) = stats_steps(&col.rel_path) else {
        return merged;
    };
    let mut count = 0.0;
    let mut found = false;
    for occ in occurrences {
        let mut path = occ.path.clone();
        for step in &steps {
            path = path.child(step.clone());
        }
        if let Some(s) = stats.get_path(&path) {
            found = true;
            if let Some(c) = s.count {
                count += c as f64;
            }
            if let Some(size) = s.avg_size {
                merged.avg_width = size;
            }
            if let Some(d) = s.distinct {
                merged.distinct = Some(d as f64);
            }
            merged.min = s.min.or(merged.min);
            merged.max = s.max.or(merged.max);
        }
    }
    if found && col.nullable && table_rows > 0.0 && count > 0.0 {
        merged.null_fraction = (1.0 - count / table_rows).clamp(0.0, 1.0);
    }
    merged
}

/// Pick the SQL type for a column.
fn sql_type(kind: ScalarKind, stats: &ColumnStats) -> SqlType {
    match kind {
        ScalarKind::Integer => SqlType::Int,
        ScalarKind::String => {
            if stats.avg_width > 0.0 && stats.avg_width <= 255.0 {
                SqlType::Char(stats.avg_width.ceil() as u32)
            } else {
                SqlType::Text
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legodb_schema::parse_schema;

    fn imdb_schema() -> Schema {
        parse_schema(
            "type IMDB = imdb[ Show{0,*} ]
             type Show = show [ @type[ String ], title[ String ], year[ Integer ],
                                Aka{1,10}, Review{0,*}, ( Movie | TV ) ]
             type Aka = aka[ String ]
             type Review = review[ ~[ String ] ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]
             type TV = seasons[ Integer ], description[ String ], Episode{0,*}
             type Episode = episode[ name[ String ], guest_director[ String ] ]",
        )
        .unwrap()
    }

    fn imdb_stats() -> Statistics {
        let mut s = Statistics::new();
        s.set_count(&["imdb"], 1)
            .set_count(&["imdb", "show"], 34798)
            .set_size(&["imdb", "show", "title"], 50.0)
            .set_distinct(&["imdb", "show", "title"], 34798)
            .set_count(&["imdb", "show", "year"], 34798)
            .set_base(&["imdb", "show", "year"], 1800, 2100, 300)
            .set_count(&["imdb", "show", "aka"], 13641)
            .set_size(&["imdb", "show", "aka"], 40.0)
            .set_size(&["imdb", "show", "@type"], 8.0)
            .set_count(&["imdb", "show", "review"], 11250)
            .set_size(&["imdb", "show", "review", "TILDE"], 800.0)
            .set_count(&["imdb", "show", "box_office"], 7000)
            .set_base(&["imdb", "show", "box_office"], 10000, 100000000, 7000)
            .set_count(&["imdb", "show", "video_sales"], 7000)
            .set_count(&["imdb", "show", "seasons"], 3500)
            .set_count(&["imdb", "show", "description"], 3500)
            .set_size(&["imdb", "show", "description"], 120.0)
            .set_count(&["imdb", "show", "episode"], 31250)
            .set_size(&["imdb", "show", "episode", "name"], 40.0);
        s
    }

    fn mapping() -> Mapping {
        let p = PSchema::try_new(imdb_schema()).unwrap();
        rel(&p, &imdb_stats())
    }

    #[test]
    fn one_table_per_type_with_keys() {
        let m = mapping();
        assert_eq!(m.catalog.len(), 7);
        for name in ["IMDB", "Show", "Aka", "Review", "Movie", "TV", "Episode"] {
            let t = m.catalog.table(name).unwrap();
            assert_eq!(
                t.key.as_deref(),
                Some(format!("{name}_id").as_str()),
                "{name}"
            );
        }
    }

    #[test]
    fn foreign_keys_point_to_parents() {
        let m = mapping();
        let aka = m.catalog.table("Aka").unwrap();
        assert!(aka.foreign_keys.iter().any(|fk| fk.parent_table == "Show"));
        assert!(aka.column("parent_Show").is_some());
        let episode = m.catalog.table("Episode").unwrap();
        assert!(episode.column("parent_TV").is_some());
        let show = m.catalog.table("Show").unwrap();
        assert!(show.column("parent_IMDB").is_some());
    }

    #[test]
    fn scalar_children_become_columns() {
        let m = mapping();
        let show = m.catalog.table("Show").unwrap();
        for col in ["type", "title", "year"] {
            assert!(show.column(col).is_some(), "missing {col}");
        }
        // Multi-valued children are NOT columns.
        assert!(show.column("aka").is_none());
        assert!(show.column("box_office").is_none()); // behind a union
    }

    #[test]
    fn statistics_translate_to_cardinalities() {
        let m = mapping();
        assert_eq!(m.catalog.table("Show").unwrap().stats.rows, 34798.0);
        assert_eq!(m.catalog.table("Aka").unwrap().stats.rows, 13641.0);
        assert_eq!(m.catalog.table("Review").unwrap().stats.rows, 11250.0);
        // Sequence types count via their member elements.
        assert_eq!(m.catalog.table("Movie").unwrap().stats.rows, 7000.0);
        assert_eq!(m.catalog.table("TV").unwrap().stats.rows, 3500.0);
        assert_eq!(m.catalog.table("Episode").unwrap().stats.rows, 31250.0);
    }

    #[test]
    fn statistics_translate_to_column_stats() {
        let m = mapping();
        let show = m.catalog.table("Show").unwrap();
        let year = show.column("year").unwrap();
        assert_eq!(year.stats.min, Some(1800));
        assert_eq!(year.stats.max, Some(2100));
        assert_eq!(year.stats.distinct, Some(300.0));
        let title = show.column("title").unwrap();
        assert_eq!(title.stats.avg_width, 50.0);
        assert_eq!(title.ty, SqlType::Char(50));
    }

    #[test]
    fn wildcard_type_gets_tilde_and_data_columns() {
        let m = mapping();
        let tm = m.table(&TypeName::new("Review")).unwrap();
        // review[ ~[String] ]: the wildcard child is inlined → tilde + data.
        assert!(tm
            .columns
            .keys()
            .any(|p| p.last().map(String::as_str) == Some(TILDE_STEP)));
        let review = m.catalog.table("Review").unwrap();
        assert!(review.columns.iter().any(|c| c.name.contains("tilde")));
    }

    #[test]
    fn inlined_schema_flattens_nested_names() {
        let schema = parse_schema(
            "type Actor = actor[ name[ String ], biography[ birthday[ String ], text[ String ] ] ]",
        )
        .unwrap();
        let p = PSchema::try_new(schema).unwrap();
        let m = rel(&p, &Statistics::new());
        let actor = m.catalog.table("Actor").unwrap();
        assert!(actor.column("name").is_some());
        assert!(actor.column("biography_birthday").is_some());
        assert!(actor.column("biography_text").is_some());
    }

    #[test]
    fn optional_layer_maps_to_nullable_columns() {
        let schema = parse_schema(
            "type Show = show[ title[ String ],
                               (box_office[ Integer ], video_sales[ Integer ])? ]",
        )
        .unwrap();
        let p = PSchema::try_new(schema).unwrap();
        let mut stats = Statistics::new();
        stats
            .set_count(&["show"], 100)
            .set_count(&["show", "box_office"], 25);
        let m = rel(&p, &stats);
        let show = m.catalog.table("Show").unwrap();
        let bo = show.column("box_office").unwrap();
        assert!(bo.nullable);
        assert!((bo.stats.null_fraction - 0.75).abs() < 1e-9);
        assert!(!show.column("title").unwrap().nullable);
    }

    #[test]
    fn scalar_only_type_gets_data_column() {
        let schema = parse_schema(
            "type Doc = doc[ AnyScalar{0,*} ]
             type AnyScalar = String",
        )
        .unwrap();
        let p = PSchema::try_new(schema).unwrap();
        let m = rel(&p, &Statistics::new());
        let t = m.catalog.table("AnyScalar").unwrap();
        assert!(t.column("__data").is_some(), "{}", t.to_ddl());
    }

    #[test]
    fn element_type_with_scalar_content_names_column_after_element() {
        let m = mapping();
        let aka = m.catalog.table("Aka").unwrap();
        assert!(aka.column("aka").is_some(), "{}", aka.to_ddl());
    }

    #[test]
    fn recursive_schema_maps_with_self_fk() {
        let schema = parse_schema(
            "type Doc = doc[ AnyElement{0,*} ]
             type AnyElement = ~[ (AnyElement | AnyScalar){0,*} ]
             type AnyScalar = String",
        )
        .unwrap();
        let p = PSchema::try_new(schema).unwrap();
        let m = rel(&p, &Statistics::new());
        let any = m.catalog.table("AnyElement").unwrap();
        // Parents: Doc and AnyElement itself → two FKs, nullable.
        assert!(any.column("parent_Doc").is_some());
        assert!(any.column("parent_AnyElement").is_some());
        assert!(any.column("parent_AnyElement").unwrap().nullable);
    }

    #[test]
    fn any_except_rows_subtract_named_siblings() {
        let schema = parse_schema(
            "type Reviews = review[ (NYTReview | OtherReview){0,*} ]
             type NYTReview = nyt[ String ]
             type OtherReview = ~!nyt[ String ]",
        )
        .unwrap();
        let p = PSchema::try_new(schema).unwrap();
        let mut stats = Statistics::new();
        stats
            .set_count(&["review"], 1000)
            .set_count(&["review", "TILDE"], 10000)
            .set_count(&["review", "nyt"], 2500);
        let m = rel(&p, &stats);
        assert_eq!(m.catalog.table("NYTReview").unwrap().stats.rows, 2500.0);
        assert_eq!(m.catalog.table("OtherReview").unwrap().stats.rows, 7500.0);
    }

    #[test]
    fn union_distributed_parts_count_via_members() {
        // Show split into parts (the paper's Figure 4(c)).
        let schema = parse_schema(
            "type IMDB = imdb[ (Show_Part1 | Show_Part2){0,*} ]
             type Show_Part1 = show[ title[ String ], box_office[ Integer ] ]
             type Show_Part2 = show[ title[ String ], seasons[ Integer ] ]",
        )
        .unwrap();
        let p = PSchema::try_new(schema).unwrap();
        let mut stats = Statistics::new();
        stats
            .set_count(&["imdb"], 1)
            .set_count(&["imdb", "show"], 10000)
            .set_count(&["imdb", "show", "title"], 10000)
            .set_count(&["imdb", "show", "box_office"], 7000)
            .set_count(&["imdb", "show", "seasons"], 3000);
        let m = rel(&p, &stats);
        // Element-anchored: both parts see path imdb/show (10000) — but the
        // discriminating member should partition them. Element-anchored
        // counting uses the anchor path, so both read 10000 here; the
        // *member-refined* count is what we want.
        let p1 = m.catalog.table("Show_Part1").unwrap().stats.rows;
        let p2 = m.catalog.table("Show_Part2").unwrap().stats.rows;
        assert_eq!(p1, 7000.0, "Part1 should count via box_office");
        assert_eq!(p2, 3000.0, "Part2 should count via seasons");
    }

    #[test]
    fn ddl_renders_for_the_whole_catalog() {
        let m = mapping();
        let ddl = m.catalog.to_ddl();
        assert!(ddl.contains("CREATE TABLE Show"));
        assert!(ddl.contains("FOREIGN KEY (parent_Show) REFERENCES Show"));
    }

    #[test]
    fn fingerprints_cover_every_type_and_are_stable() {
        let a = mapping();
        let b = mapping();
        assert_eq!(a.fingerprints.len(), a.catalog.len());
        assert_eq!(a.fingerprints, b.fingerprints);
        assert!(a.changed_tables(&b).is_empty());
    }

    #[test]
    fn incremental_rebuild_is_identical_to_from_scratch() {
        let p = PSchema::try_new(imdb_schema()).unwrap();
        let stats = imdb_stats();
        let parent = rel(&p, &stats);
        let incremental = rel_incremental(&p, &stats, &parent);
        // Same pschema → everything reused, and the result is bitwise
        // identical to a from-scratch derivation.
        assert!(incremental.changed_tables(&parent).is_empty());
        assert_eq!(
            format!("{:?}", incremental.catalog),
            format!("{:?}", parent.catalog)
        );
        assert_eq!(
            format!("{:?}", incremental.tables),
            format!("{:?}", parent.tables)
        );
    }

    #[test]
    fn layout_assignment_stamps_tables_and_invalidates_only_that_type() {
        let p_row = PSchema::try_new(imdb_schema()).unwrap();
        let mut p_col = p_row.clone();
        p_col.set_layout(&TypeName::new("Review"), Layout::Columnar);
        let stats = imdb_stats();
        let parent = rel(&p_row, &stats);
        let child = rel_incremental(&p_col, &stats, &parent);
        // The layout lands on the table def...
        assert_eq!(
            child.catalog.table("Review").unwrap().layout,
            Layout::Columnar
        );
        assert_eq!(child.catalog.table("Show").unwrap().layout, Layout::Row);
        // ...and invalidates exactly the flipped type (layout does not
        // feed any other type's derivation).
        let changed = child.changed_tables(&parent);
        assert_eq!(changed.len(), 1, "{changed:?}");
        assert!(changed.contains("Review"));
        // Incremental result still matches a from-scratch derivation.
        let scratch = rel(&p_col, &stats);
        assert_eq!(
            format!("{:?}", child.catalog),
            format!("{:?}", scratch.catalog)
        );
        assert_eq!(child.fingerprints, scratch.fingerprints);
    }

    #[test]
    fn statistics_changes_invalidate_fingerprints() {
        let p = PSchema::try_new(imdb_schema()).unwrap();
        let base = rel(&p, &imdb_stats());
        let mut richer = imdb_stats();
        richer.set_count(&["imdb", "show", "aka"], 99999);
        let shifted = rel_incremental(&p, &richer, &base);
        // Coarse whole-stats fingerprinting: a stats change invalidates
        // every table (the incremental path falls back to full rebuild).
        assert_eq!(shifted.changed_tables(&base).len(), base.catalog.len());
        assert_eq!(shifted.catalog.table("Aka").unwrap().stats.rows, 99999.0);
    }

    #[test]
    fn local_schema_edit_keeps_unrelated_fingerprints() {
        let p1 = PSchema::try_new(imdb_schema()).unwrap();
        // Same IMDB but with Episode's content widened: only Episode (and
        // types whose derivation reads Episode) may change.
        let p2 = PSchema::try_new(
            parse_schema(
                "type IMDB = imdb[ Show{0,*} ]
                 type Show = show [ @type[ String ], title[ String ], year[ Integer ],
                                    Aka{1,10}, Review{0,*}, ( Movie | TV ) ]
                 type Aka = aka[ String ]
                 type Review = review[ ~[ String ] ]
                 type Movie = box_office[ Integer ], video_sales[ Integer ]
                 type TV = seasons[ Integer ], description[ String ], Episode{0,*}
                 type Episode = episode[ name[ String ], guest_director[ String ],
                                         length[ Integer ] ]",
            )
            .unwrap(),
        )
        .unwrap();
        let stats = imdb_stats();
        let parent = rel(&p1, &stats);
        let child = rel_incremental(&p2, &stats, &parent);
        let changed = child.changed_tables(&parent);
        assert!(changed.contains("Episode"), "{changed:?}");
        for untouched in ["IMDB", "Show", "Aka", "Review", "Movie"] {
            assert!(!changed.contains(untouched), "{changed:?}");
        }
        // The incremental result still matches a from-scratch derivation.
        let scratch = rel(&p2, &stats);
        assert_eq!(
            format!("{:?}", child.catalog),
            format!("{:?}", scratch.catalog)
        );
    }
}
