//! # legodb-pschema
//!
//! Physical XML Schemas (*p-schemas*) and the fixed mapping into relations
//! — §3 of the LegoDB paper.
//!
//! A p-schema is an XML Schema restricted to the paper's *stratified*
//! grammar (Figure 9): named types contain only structures that map
//! directly to one relation each — singleton/nested/optional elements
//! become columns, while repetitions and unions may contain only type
//! *references* (each becoming a child table with a foreign key).
//!
//! This crate provides:
//!
//! - [`PSchema`]: a validated p-schema ([`stratify`] enforces Figure 9);
//! - [`derive_pschema`]: turn *any* schema into an equivalent p-schema,
//!   either maximally outlined (the paper's PS0 used by *greedy-so*) or
//!   maximally inlined (the *greedy-si* start, [19]'s heuristic);
//! - [`rel`]: the fixed mapping of Table 1 — one relation per type name,
//!   key and `parent_T` foreign-key columns, flattened data columns,
//!   nullability from the optional layer, `tilde` columns for wildcards —
//!   including the translation of XML path statistics into relational
//!   catalog statistics;
//! - [`shred`]: load an XML document into the mapped database;
//! - [`publish`]: reconstruct XML from the mapped database (round-trips
//!   with `shred`).
//!
//! Statistics are kept keyed by *document label paths* (as collected by
//! `legodb-xml`), not embedded in the schema: label paths are invariant
//! under all of LegoDB's semantics-preserving schema transformations, so
//! one statistics set prices every candidate configuration.

#![forbid(unsafe_code)]

pub mod derive;
pub mod mapping;
pub mod publish;
pub mod shred;
pub mod stratify;

pub use derive::{derive_pschema, InlineStyle};
pub use mapping::{rel, rel_incremental, ColumnTarget, Mapping, TableMapping};
pub use publish::publish_all;
pub use shred::{
    shred, shred_dom, shred_events, shred_events_report, shred_stream, ShredError, ShredReport,
};
pub use stratify::{PSchema, StratifyError};
