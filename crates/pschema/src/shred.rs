//! Shredding: loading an XML document into the relational database defined
//! by a [`Mapping`] (the paper's "corresponding mapping from XML documents
//! to databases", §1).
//!
//! Each type instance becomes one row: the key column gets a fresh id, the
//! `parent_T` column gets the owning instance's id, scalar positions fill
//! data columns, and child types recurse. Union alternatives are decided by
//! validating the candidate element (or element content, for
//! sequence-shaped types) against each alternative.
//!
//! Two ingestion paths produce bit-identical databases:
//!
//! - [`shred_dom`] walks a fully materialized [`Document`] — the reference
//!   implementation, and the oracle the streaming path is tested against;
//! - [`shred_events`] consumes a pull-parser event stream. Only the *root
//!   spine* is streamed: each direct child subtree of the root is buffered
//!   one at a time, claimed and shredded via the same recursion as the DOM
//!   walk, then dropped — so peak memory is one root-child subtree (one
//!   `<show>` for the IMDB workload), not the whole document. The root's
//!   own content model is checked incrementally: when every child position
//!   carries a distinct literal tag name under plain sequence/repetition
//!   structure, a [`SiteTracker`] routes children by name in O(1) and each
//!   subtree is validated exactly once at its claim (the perf-critical
//!   path); otherwise a generic derivative [`ContentMatcher`] folds the
//!   stream. The root row (whose id is allocated when the root opens but
//!   whose columns may resolve later) is re-sequenced into the DOM
//!   insertion order by a per-table id-order sink.
//!
//! [`shred`] is a thin wrapper feeding the streaming core with borrowed
//! children. Root content models the streaming walk cannot reproduce
//! exactly (a named alternative that is sequence-shaped rather than
//! element-shaped, or a root that is not literally an element definition)
//! fall back to full buffering + [`shred_dom`], keeping bit-identity
//! unconditional.

use crate::mapping::{ColumnTarget, Mapping, TableMapping, ANY_STEP, TILDE_STEP};
use legodb_relational::{Database, RelationalError, Value};
use legodb_schema::validate::{content_matches, element_matches, ContentMatcher};
use legodb_schema::{NameTest, ScalarKind, Schema, Type, TypeName};
use legodb_xml::{
    events_with_limits, Attribute, Document, Element, Event, EventAttribute, Node, ParseError,
    ParseLimits,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A shredding failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ShredError {
    /// The document does not match the p-schema.
    Invalid(String),
    /// A storage-level failure (should not occur for valid inputs).
    Storage(RelationalError),
    /// The mapping, schema, and catalog disagree — a type the mapping
    /// references is undefined, or a column is missing. Only reachable
    /// with a hand-assembled [`Mapping`]; `rel(ps)` never produces one.
    Inconsistent(String),
    /// The event stream itself was malformed (streaming ingest only).
    Parse(ParseError),
}

impl fmt::Display for ShredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShredError::Invalid(m) => write!(f, "document does not match the p-schema: {m}"),
            ShredError::Storage(e) => write!(f, "storage error while shredding: {e}"),
            ShredError::Inconsistent(m) => write!(f, "mapping/schema inconsistency: {m}"),
            ShredError::Parse(e) => write!(f, "parse error while shredding: {e}"),
        }
    }
}

impl std::error::Error for ShredError {}

/// The typed error for a mapping/schema/catalog lookup that only fails
/// when the caller assembled inconsistent inputs.
fn inconsistent(what: &str, name: &dyn fmt::Display) -> ShredError {
    ShredError::Inconsistent(format!("{what} `{name}` is missing"))
}

impl From<RelationalError> for ShredError {
    fn from(e: RelationalError) -> Self {
        ShredError::Storage(e)
    }
}

impl From<ParseError> for ShredError {
    fn from(e: ParseError) -> Self {
        ShredError::Parse(e)
    }
}

/// What a streaming shred had to keep resident, for the ingest benchmarks
/// and the bounded-memory tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShredReport {
    /// Total rows inserted across all tables.
    pub rows: u64,
    /// Peak number of XML elements resident at once: the root anchor plus
    /// the largest root-child subtree (streamed), or the whole document's
    /// element count (buffered fallback).
    pub peak_resident_elements: usize,
    /// False when the root content model forced full-document buffering.
    pub streamed: bool,
}

/// Shred `doc` into a fresh database over `mapping.catalog`.
///
/// A wrapper over the streaming core, feeding the root's children as
/// borrowed subtrees; falls back to [`shred_dom`] for root shapes the
/// streaming walk does not handle. Builds foreign-key indexes after
/// loading (they are what the publishing path and the index-join
/// operators probe).
pub fn shred(mapping: &Mapping, doc: &Document) -> Result<Database, ShredError> {
    match open_root(mapping, &doc.root.name, &doc.root.attributes)? {
        Opened::Streaming(mut rs) => {
            for node in &doc.root.children {
                match node {
                    Node::Text(t) => rs.text(t)?,
                    Node::Element(e) => rs.child(e)?,
                }
            }
            rs.finish().map(|(db, _)| db)
        }
        Opened::Buffering => shred_dom(mapping, doc),
    }
}

/// Shred a fully materialized document with the classic DOM walk: validate
/// the whole tree upfront, then recurse. This is the reference
/// implementation the streaming path must agree with bit-for-bit, and the
/// baseline the ingest benchmark measures against.
pub fn shred_dom(mapping: &Mapping, doc: &Document) -> Result<Database, ShredError> {
    let schema = mapping.pschema.schema();
    let root = mapping.root().clone();
    let root_def = schema
        .get(&root)
        .ok_or_else(|| inconsistent("root type", &root))?;
    if !element_matches(schema, &doc.root, root_def) {
        return Err(ShredError::Invalid(format!(
            "root element <{}> does not match type {root}",
            doc.root.name
        )));
    }
    let mut s = Shredder::new(mapping);
    s.shred_instance(&root, &doc.root, None)?;
    s.finish().map(|(db, _)| db)
}

/// Shred directly from an XML string without materializing the document:
/// tokenize under `limits` and stream into the shredder.
pub fn shred_stream(
    mapping: &Mapping,
    input: &str,
    limits: &ParseLimits,
) -> Result<Database, ShredError> {
    shred_events(mapping, events_with_limits(input, limits))
}

/// Shred a pull-parser event stream (see the module docs for the memory
/// model). The stream must describe one well-formed document; tokenizer
/// errors surface as [`ShredError::Parse`].
pub fn shred_events<'a, I>(mapping: &Mapping, events: I) -> Result<Database, ShredError>
where
    I: IntoIterator<Item = Result<Event<'a>, ParseError>>,
{
    shred_events_report(mapping, events).map(|(db, _)| db)
}

/// Like [`shred_events`], also reporting row and peak-memory accounting.
pub fn shred_events_report<'a, I>(
    mapping: &Mapping,
    events: I,
) -> Result<(Database, ShredReport), ShredError>
where
    I: IntoIterator<Item = Result<Event<'a>, ParseError>>,
{
    let mut events = events.into_iter();
    let (root_name, root_attrs) = match events.next() {
        Some(Ok(Event::StartElement { name, attributes })) => {
            (name.into_owned(), own_attrs(attributes))
        }
        Some(Ok(_)) => {
            return Err(ShredError::Invalid(
                "event stream does not start with an element".into(),
            ))
        }
        Some(Err(e)) => return Err(ShredError::Parse(e)),
        None => return Err(ShredError::Invalid("empty event stream".into())),
    };
    match open_root(mapping, &root_name, &root_attrs)? {
        Opened::Streaming(rs) => stream_events(*rs, events),
        Opened::Buffering => {
            let doc = rebuild_document(root_name, root_attrs, events)?;
            let peak = doc.element_count();
            let db = shred_dom(mapping, &doc)?;
            let rows = db.total_rows() as u64;
            Ok((
                db,
                ShredReport {
                    rows,
                    peak_resident_elements: peak,
                    streamed: false,
                },
            ))
        }
    }
}

fn own_attrs(attributes: Vec<EventAttribute<'_>>) -> Vec<Attribute> {
    attributes
        .into_iter()
        .map(|a| Attribute {
            name: a.name.into_owned(),
            value: a.value.into_owned(),
        })
        .collect()
}

/// Drive a [`RootStream`] over the events following the root start tag:
/// buffer each root-child subtree, hand it to the core when it closes,
/// then drop it.
fn stream_events<'a, I>(
    mut rs: RootStream<'_>,
    events: I,
) -> Result<(Database, ShredReport), ShredError>
where
    I: Iterator<Item = Result<Event<'a>, ParseError>>,
{
    let mut stack: Vec<Element> = Vec::new();
    let mut live = 0usize; // elements in the subtree being buffered
    let mut peak = 1usize; // the root anchor itself
    let mut closed = false;
    for event in events {
        let event = event?;
        if closed {
            // The tokenizer never emits events after the root closes; a
            // hand-built stream that does is malformed.
            return Err(ShredError::Invalid(
                "event after the root element closed".into(),
            ));
        }
        match event {
            Event::StartElement { name, attributes } => {
                let mut element = Element::new(name.into_owned());
                element.attributes = own_attrs(attributes);
                stack.push(element);
                live += 1;
                peak = peak.max(live + 1);
            }
            Event::Text(t) => match stack.last_mut() {
                Some(open) => open.children.push(Node::Text(t.into_owned())),
                None => rs.text(&t)?,
            },
            Event::EndElement { .. } => match stack.pop() {
                Some(element) => match stack.last_mut() {
                    Some(parent) => parent.children.push(Node::Element(element)),
                    None => {
                        rs.child(&element)?;
                        live = 0;
                    }
                },
                None => closed = true,
            },
        }
    }
    if !closed {
        return Err(ShredError::Invalid(
            "event stream ended before the root element closed".into(),
        ));
    }
    let (db, rows) = rs.finish()?;
    Ok((
        db,
        ShredReport {
            rows,
            peak_resident_elements: peak,
            streamed: true,
        },
    ))
}

/// Rebuild a whole [`Document`] from the events after the root start tag —
/// the buffered fallback when the root content model is not streamable.
fn rebuild_document<'a, I>(
    root_name: String,
    root_attrs: Vec<Attribute>,
    events: I,
) -> Result<Document, ShredError>
where
    I: Iterator<Item = Result<Event<'a>, ParseError>>,
{
    let mut root = Element::new(root_name);
    root.attributes = root_attrs;
    let mut stack = vec![root];
    let mut done: Option<Element> = None;
    for event in events {
        let event = event?;
        if done.is_some() {
            return Err(ShredError::Invalid(
                "event after the root element closed".into(),
            ));
        }
        match event {
            Event::StartElement { name, attributes } => {
                let mut element = Element::new(name.into_owned());
                element.attributes = own_attrs(attributes);
                stack.push(element);
            }
            Event::Text(t) => {
                if let Some(open) = stack.last_mut() {
                    open.children.push(Node::Text(t.into_owned()));
                }
            }
            Event::EndElement { .. } => match stack.pop() {
                Some(element) => match stack.last_mut() {
                    Some(parent) => parent.children.push(Node::Element(element)),
                    None => done = Some(element),
                },
                None => {
                    return Err(ShredError::Invalid(
                        "unbalanced end event in the stream".into(),
                    ))
                }
            },
        }
    }
    done.map(Document::new).ok_or_else(|| {
        ShredError::Invalid("event stream ended before the root element closed".into())
    })
}

/// Result of [`open_root`]: a live streaming core, or a signal that the
/// caller must buffer the whole document for [`shred_dom`].
enum Opened<'a> {
    Streaming(Box<RootStream<'a>>),
    Buffering,
}

/// Occurrence bounds for one root site in deterministic mode.
struct SiteSpec {
    min: u32,
    max: Option<u32>,
}

/// Where a root child with a given tag name goes in deterministic mode.
struct DetTarget<'a> {
    site: usize,
    /// `Some((type, content))` for a named-site alternative; `None` for an
    /// inline element site (claimed through [`RootSite::Inline`]).
    alt: Option<(TypeName, &'a Type)>,
}

/// The deterministic root-content checker: when every child position has
/// a distinct literal tag name and the content model is a plain sequence
/// of occurrence-bounded sites, the matched language is exactly
/// `s1^{a1} … sn^{an}` with `min_i <= a_i <= max_i`. Tag names then route
/// children, and validity reduces to an O(1) order-and-count step per
/// child — so each subtree is validated once (at its claim) instead of
/// twice (generic matcher + claim).
struct SiteTracker<'a> {
    by_name: BTreeMap<String, DetTarget<'a>>,
    specs: Vec<SiteSpec>,
    counts: Vec<u32>,
    cursor: usize,
}

impl SiteTracker<'_> {
    /// Account one child routed to site `k`; false = the document cannot
    /// match the content model.
    fn step(&mut self, k: usize) -> bool {
        if k < self.cursor {
            return false; // sites occur in sequence order
        }
        if k > self.cursor {
            for i in self.cursor..k {
                if self.counts[i] < self.specs[i].min {
                    return false; // a skipped site missed its minimum
                }
            }
            self.cursor = k;
        }
        self.counts[k] += 1;
        match self.specs[k].max {
            Some(max) => self.counts[k] <= max,
            None => true,
        }
    }

    /// All remaining sites satisfied their minimum?
    fn close(&self) -> bool {
        (self.cursor..self.specs.len()).all(|i| self.counts[i] >= self.specs[i].min)
    }
}

/// How the root's content model is checked while streaming.
enum RootCheck<'a> {
    /// The general derivative fold (validates each subtree in full).
    Generic(ContentMatcher<'a>),
    /// The deterministic order-and-count automaton.
    Deterministic(SiteTracker<'a>),
}

/// Collect per-site occurrence bounds when the content model is a plain
/// (possibly nested) sequence of sites, each bare or under one
/// repetition. Push order mirrors [`collect_root_sites`] exactly, so
/// `out[i]` describes `sites[i]`. Returns false on any shape the
/// deterministic checker cannot express (scalar/attribute positions,
/// structural choices, repetition over a group).
fn collect_site_specs(ty: &Type, out: &mut Vec<SiteSpec>) -> bool {
    match ty {
        Type::Empty => true,
        Type::Element { .. } => {
            out.push(SiteSpec {
                min: 1,
                max: Some(1),
            });
            true
        }
        named @ (Type::Choice(_) | Type::Ref(_)) if ty_is_named_layer(named) => {
            out.push(SiteSpec {
                min: 1,
                max: Some(1),
            });
            true
        }
        Type::Seq(items) => items.iter().all(|t| collect_site_specs(t, out)),
        Type::Rep { inner, occurs, .. } => {
            let single_site = matches!(**inner, Type::Element { .. }) || ty_is_named_layer(inner);
            if !single_site {
                return false; // repetition over a group: not per-site counting
            }
            let at = out.len();
            if !collect_site_specs(inner, out) {
                return false;
            }
            out[at] = SiteSpec {
                min: occurs.min,
                max: occurs.max,
            };
            true
        }
        _ => false,
    }
}

/// Build the deterministic checker, or `None` when a name is non-literal
/// or duplicated (the generic matcher handles those).
fn build_site_tracker<'a>(
    schema: &'a Schema,
    content: &'a Type,
    sites: &[RootSite<'a>],
) -> Option<SiteTracker<'a>> {
    let mut specs = Vec::new();
    if !collect_site_specs(content, &mut specs) || specs.len() != sites.len() {
        return None;
    }
    let mut by_name = BTreeMap::new();
    for (k, site) in sites.iter().enumerate() {
        match site {
            RootSite::Inline { name, .. } => {
                let NameTest::Name(n) = name else { return None };
                if by_name
                    .insert(n.clone(), DetTarget { site: k, alt: None })
                    .is_some()
                {
                    return None;
                }
            }
            RootSite::Named { alternatives } => {
                for alt in alternatives {
                    // collect_root_sites guaranteed an element-shaped def.
                    let Some(Type::Element { name, content }) = schema.get(alt) else {
                        return None;
                    };
                    let NameTest::Name(n) = name else { return None };
                    let target = DetTarget {
                        site: k,
                        alt: Some((alt.clone(), content)),
                    };
                    if by_name.insert(n.clone(), target).is_some() {
                        return None;
                    }
                }
            }
        }
    }
    let counts = vec![0; specs.len()];
    Some(SiteTracker {
        by_name,
        specs,
        counts,
        cursor: 0,
    })
}

/// One site of the root content model, in model-walk order. Mirrors the
/// arms of [`Shredder::spawn_children`] the DOM walk would visit.
enum RootSite<'a> {
    /// An inlined element child: the first matching child descends, once.
    Inline {
        name: &'a NameTest,
        content: &'a Type,
        claimed: bool,
    },
    /// A named-layer site (a ref or a union of refs), all alternatives
    /// element-shaped (checked by [`collect_root_sites`]).
    Named { alternatives: Vec<TypeName> },
}

/// An unresolved root column: the relative path's first step has not
/// arrived yet. Paths anchored on the root itself (`@attr`, `#tilde`)
/// resolve at open and never become cursors.
enum ColumnCursor {
    /// The root's own scalar content (empty relative path): resolves at
    /// close from the accumulated direct text.
    OwnText { idx: usize, target: ColumnTarget },
    /// Waiting for the first child element matching `first` (`None` =
    /// `#any`, i.e. the first child of any name); the remaining steps are
    /// then navigated inside that buffered subtree.
    Child {
        first: Option<String>,
        rest: Vec<String>,
        idx: usize,
        target: ColumnTarget,
    },
    /// Already bound (whether or not a value was found).
    Done,
}

/// The streaming core: the open root row plus everything needed to claim
/// root-child subtrees as they complete.
struct RootStream<'a> {
    sh: Shredder<'a>,
    root_ty: TypeName,
    root_name: String,
    root_table: String,
    root_id: i64,
    row: Vec<Value>,
    cursors: Vec<ColumnCursor>,
    check: RootCheck<'a>,
    sites: Vec<RootSite<'a>>,
    reserved: BTreeSet<String>,
    root_text: String,
}

/// Inspect the mapping's root type and either build a [`RootStream`] or
/// report that exact DOM semantics require buffering. Invalidity that is
/// already decidable from the root tag (wrong element name, attributes
/// that kill the content model) errors here.
fn open_root<'a>(
    mapping: &'a Mapping,
    name: &str,
    attributes: &[Attribute],
) -> Result<Opened<'a>, ShredError> {
    let schema = mapping.pschema.schema();
    let root_ty = mapping.root().clone();
    // Every shape the streaming walk cannot reproduce exactly defers to
    // the DOM path, which also owns the error reporting for inconsistent
    // hand-assembled mappings.
    let Some(Type::Element {
        name: root_test,
        content,
    }) = schema.get(&root_ty)
    else {
        return Ok(Opened::Buffering);
    };
    let mut sites = Vec::new();
    if !collect_root_sites(schema, content, &mut sites) {
        return Ok(Opened::Buffering);
    }
    let Some(table_mapping) = mapping.table(&root_ty) else {
        return Ok(Opened::Buffering);
    };
    let Some(table_def) = mapping.catalog.table(&table_mapping.table) else {
        return Ok(Opened::Buffering);
    };
    let Some(key_idx) = table_def.column_index(&table_mapping.key) else {
        return Ok(Opened::Buffering);
    };

    if !root_test.matches(name) {
        return Err(ShredError::Invalid(format!(
            "root element <{name}> does not match type {root_ty}"
        )));
    }

    let mut sh = Shredder::new(mapping);
    let root_id = sh.allocate_id(&table_mapping.table);
    let mut row = vec![Value::Null; table_def.columns.len()];
    row[key_idx] = Value::Int(root_id);

    // Columns anchored on the root resolve now; the rest become cursors
    // that bind to the first matching child subtree.
    let mut cursors = Vec::new();
    for (rel_path, target) in &table_mapping.columns {
        let Some(idx) = table_def.column_index(&target.column) else {
            return Ok(Opened::Buffering);
        };
        match rel_path.first() {
            None => cursors.push(ColumnCursor::OwnText {
                idx,
                target: target.clone(),
            }),
            Some(step) if step == TILDE_STEP => row[idx] = Value::str(name),
            Some(step) => {
                if let Some(attr) = step.strip_prefix('@') {
                    if let Some(a) = attributes.iter().find(|a| a.name == attr) {
                        row[idx] = convert(&a.value, target.kind);
                    }
                } else {
                    let first = (step != ANY_STEP).then(|| step.clone());
                    cursors.push(ColumnCursor::Child {
                        first,
                        rest: rel_path[1..].to_vec(),
                        idx,
                        target: target.clone(),
                    });
                }
            }
        }
    }

    let check = match build_site_tracker(schema, content, &sites) {
        Some(tracker) => {
            // Deterministic-eligible content has no attribute positions,
            // so any root attribute kills the derivative exactly as it
            // would in the DOM path.
            if !attributes.is_empty() {
                return Err(ShredError::Invalid(format!(
                    "root element <{name}> does not match type {root_ty}"
                )));
            }
            RootCheck::Deterministic(tracker)
        }
        None => {
            let mut matcher = ContentMatcher::new(schema, content);
            for attr in attributes {
                matcher.feed_attribute(attr);
            }
            if matcher.failed() {
                return Err(ShredError::Invalid(format!(
                    "root element <{name}> does not match type {root_ty}"
                )));
            }
            RootCheck::Generic(matcher)
        }
    };
    let reserved = sh.literal_names(content);
    let rs = RootStream {
        sh,
        root_ty,
        root_name: name.to_string(),
        root_table: table_mapping.table.clone(),
        root_id,
        row,
        cursors,
        check,
        sites,
        reserved,
        root_text: String::new(),
    };
    Ok(Opened::Streaming(Box::new(rs)))
}

/// Flatten the root content model into streamable sites, mirroring the
/// walk order of [`Shredder::spawn_children`]. Returns false when a shape
/// appears that the streaming claim loop cannot reproduce (a named
/// alternative that is missing or not element-shaped).
fn collect_root_sites<'a>(schema: &'a Schema, ty: &'a Type, out: &mut Vec<RootSite<'a>>) -> bool {
    match ty {
        Type::Empty | Type::Scalar { .. } | Type::Attribute { .. } => true,
        Type::Element { name, content } => {
            out.push(RootSite::Inline {
                name,
                content,
                claimed: false,
            });
            true
        }
        Type::Seq(items) => items.iter().all(|t| collect_root_sites(schema, t, out)),
        Type::Rep { inner, .. } => collect_root_sites(schema, inner, out),
        named @ (Type::Choice(_) | Type::Ref(_)) if ty_is_named_layer(named) => {
            let alternatives = named_alternatives(named);
            for alt in &alternatives {
                if !matches!(schema.get(alt), Some(Type::Element { .. })) {
                    return false; // group-shaped or missing alternative
                }
            }
            out.push(RootSite::Named { alternatives });
            true
        }
        Type::Choice(items) => items.iter().all(|t| collect_root_sites(schema, t, out)),
        // A lone Ref is always a named layer; kept for match completeness.
        Type::Ref(_) => false,
    }
}

impl RootStream<'_> {
    fn invalid_root(&self) -> ShredError {
        ShredError::Invalid(format!(
            "root element <{}> does not match type {}",
            self.root_name, self.root_ty
        ))
    }

    /// A direct text child of the root. Whitespace-only runs never arrive
    /// here: both the tokenizer and the tree parser drop them.
    fn text(&mut self, text: &str) -> Result<(), ShredError> {
        match &mut self.check {
            RootCheck::Generic(matcher) => {
                matcher.feed_text(text);
                if matcher.failed() {
                    return Err(self.invalid_root());
                }
            }
            // Deterministic-eligible content has no scalar positions, so
            // non-whitespace text kills the derivative in the DOM path.
            RootCheck::Deterministic(_) => return Err(self.invalid_root()),
        }
        self.root_text.push_str(text);
        Ok(())
    }

    /// A completed root-child subtree: validate it into the root's content
    /// model, bind any waiting column cursors, and offer it to each site —
    /// every site sees every child, exactly like the DOM walk.
    fn child(&mut self, child: &Element) -> Result<(), ShredError> {
        // Route the child. Generic mode validates the whole subtree into
        // the derivative here (and validates again at the claim below);
        // deterministic mode does one O(1) order-and-count step now and
        // defers the single full validation to the claim.
        let det = match &mut self.check {
            RootCheck::Generic(matcher) => {
                matcher.feed_element(child);
                if matcher.failed() {
                    return Err(self.invalid_root());
                }
                None
            }
            RootCheck::Deterministic(tracker) => {
                let Some(target) = tracker.by_name.get(&child.name) else {
                    return Err(self.invalid_root());
                };
                let routed = (target.site, target.alt.clone());
                if !tracker.step(routed.0) {
                    return Err(self.invalid_root());
                }
                Some(routed)
            }
        };
        for cursor in self.cursors.iter_mut() {
            if let ColumnCursor::Child {
                first,
                rest,
                idx,
                target,
            } = cursor
            {
                let hit = match first {
                    None => true,
                    Some(n) => n == &child.name,
                };
                if hit {
                    if let Some(value) = extract_value(child, rest, target) {
                        self.row[*idx] = value;
                    }
                    *cursor = ColumnCursor::Done;
                }
            }
        }
        let root_id = self.root_id;
        let Some((site_idx, alt)) = det else {
            // Generic mode: offer the child to every site, exactly like
            // the DOM walk.
            for site in self.sites.iter_mut() {
                match site {
                    RootSite::Inline {
                        name,
                        content,
                        claimed,
                    } => {
                        if !*claimed && name.matches(&child.name) {
                            *claimed = true;
                            let inner_reserved = self.sh.literal_names(content);
                            self.sh.spawn_children(
                                content,
                                child,
                                &self.root_ty,
                                root_id,
                                &inner_reserved,
                            )?;
                        }
                    }
                    RootSite::Named { alternatives } => {
                        self.sh.claim_named_child(
                            alternatives,
                            child,
                            &self.root_ty,
                            root_id,
                            &self.reserved,
                        )?;
                    }
                }
            }
            return Ok(());
        };
        // Deterministic mode: the child's name picked a unique site, so
        // validate the subtree exactly once, at its claim.
        match alt {
            Some((alt_ty, alt_content)) => {
                if !content_matches(self.sh.schema, child, alt_content) {
                    return Err(self.invalid_root());
                }
                self.sh
                    .shred_instance(&alt_ty, child, Some((&self.root_ty, root_id)))?;
            }
            None => {
                let (content, first) = match &mut self.sites[site_idx] {
                    RootSite::Inline {
                        content, claimed, ..
                    } => {
                        let first = !*claimed;
                        *claimed = true;
                        (*content, first)
                    }
                    // build_site_tracker only routes `alt: None` to inline
                    // sites, but stay total rather than panic.
                    RootSite::Named { .. } => return Err(self.invalid_root()),
                };
                if !content_matches(self.sh.schema, child, content) {
                    return Err(self.invalid_root());
                }
                if first {
                    let inner_reserved = self.sh.literal_names(content);
                    self.sh.spawn_children(
                        content,
                        child,
                        &self.root_ty,
                        root_id,
                        &inner_reserved,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// The root closed: the content model must be complete, own-text
    /// columns resolve, and the root row finally flows into the sink.
    fn finish(mut self) -> Result<(Database, u64), ShredError> {
        let complete = match &self.check {
            RootCheck::Generic(matcher) => matcher.matches(),
            RootCheck::Deterministic(tracker) => tracker.close(),
        };
        if !complete {
            return Err(self.invalid_root());
        }
        let text = self.root_text.trim();
        for cursor in &self.cursors {
            if let ColumnCursor::OwnText { idx, target } = cursor {
                if text.is_empty() && target.kind == ScalarKind::Integer {
                    continue;
                }
                self.row[*idx] = convert(text, target.kind);
            }
        }
        let row = std::mem::take(&mut self.row);
        self.sh.emit(&self.root_table, self.root_id, row)?;
        self.sh.finish()
    }
}

struct Shredder<'a> {
    mapping: &'a Mapping,
    schema: &'a Schema,
    db: Database,
    /// Per-table id counters. BTreeMap, not HashMap: shredding must stay
    /// deterministic end-to-end so fingerprint-adjacent paths never see
    /// hash-randomized order.
    next_ids: BTreeMap<String, i64>,
    /// Next id each table expects to insert (see [`Shredder::emit`]).
    emitted: BTreeMap<String, i64>,
    /// Completed rows whose id is ahead of the table's insertion frontier.
    pending: BTreeMap<String, BTreeMap<i64, Vec<Value>>>,
    rows: u64,
}

impl<'a> Shredder<'a> {
    fn new(mapping: &'a Mapping) -> Shredder<'a> {
        Shredder {
            mapping,
            schema: mapping.pschema.schema(),
            db: Database::from_catalog(&mapping.catalog),
            next_ids: BTreeMap::new(),
            emitted: BTreeMap::new(),
            pending: BTreeMap::new(),
            rows: 0,
        }
    }

    fn allocate_id(&mut self, table: &str) -> i64 {
        if !self.next_ids.contains_key(table) {
            self.next_ids.insert(table.to_string(), 0);
        }
        // lint: allow(no-unwrap-in-lib) — inserted just above when absent
        let n = self.next_ids.get_mut(table).expect("present");
        *n += 1;
        *n
    }

    /// Insert `row` into `table` preserving the DOM shredder's per-table
    /// insertion order. The DOM walk inserts each row the moment its id is
    /// allocated, so per-table order is ascending id; the streaming walk
    /// completes the root row *last* (its element closes at end of input),
    /// so completions may arrive out of order and wait here until the
    /// frontier reaches them.
    fn emit(&mut self, table: &str, id: i64, row: Vec<Value>) -> Result<(), ShredError> {
        if !self.emitted.contains_key(table) {
            self.emitted.insert(table.to_string(), 1);
        }
        // lint: allow(no-unwrap-in-lib) — inserted just above when absent
        let next = self.emitted.get_mut(table).expect("present");
        if id != *next {
            self.pending
                .entry(table.to_string())
                .or_default()
                .insert(id, row);
            return Ok(());
        }
        self.db.insert(table, row)?;
        self.rows += 1;
        *next += 1;
        if let Some(waiting) = self.pending.get_mut(table) {
            while let Some(row) = waiting.remove(next) {
                self.db.insert(table, row)?;
                self.rows += 1;
                *next += 1;
            }
        }
        Ok(())
    }

    /// Verify the sink drained, build FK indexes, and hand the database
    /// over with its total row count.
    fn finish(self) -> Result<(Database, u64), ShredError> {
        if self.pending.values().any(|p| !p.is_empty()) {
            return Err(ShredError::Inconsistent(
                "buffered row completions were never flushed".into(),
            ));
        }
        for table in self.db.tables() {
            let fks: Vec<String> = table
                .def
                .foreign_keys
                .iter()
                .map(|fk| fk.column.clone())
                .collect();
            for fk in fks {
                table.create_index(&fk)?;
            }
        }
        Ok((self.db, self.rows))
    }

    /// Shred one instance of `ty`, anchored at `element` (the instance's
    /// own element, or the parent element for sequence-shaped types).
    fn shred_instance(
        &mut self,
        ty: &TypeName,
        element: &Element,
        parent: Option<(&TypeName, i64)>,
    ) -> Result<i64, ShredError> {
        let table_mapping = self
            .mapping
            .table(ty)
            .ok_or_else(|| inconsistent("table mapping for type", ty))?;
        let def = self
            .schema
            .get(ty)
            .ok_or_else(|| inconsistent("type definition", ty))?;
        let table_def = self
            .mapping
            .catalog
            .table(&table_mapping.table)
            .ok_or_else(|| inconsistent("catalog table", &table_mapping.table))?;

        let id = self.allocate_id(&table_mapping.table);

        let mut row = vec![Value::Null; table_def.columns.len()];
        let key_idx = table_def
            .column_index(&table_mapping.key)
            .ok_or_else(|| inconsistent("key column", &table_mapping.key))?;
        row[key_idx] = Value::Int(id);
        if let Some((parent_ty, parent_id)) = parent {
            if let Some(fk) = table_mapping.parent_fk.get(parent_ty) {
                let fk_idx = table_def
                    .column_index(fk)
                    .ok_or_else(|| inconsistent("foreign-key column", fk))?;
                row[fk_idx] = Value::Int(parent_id);
            }
        }

        // The element whose content the columns read: for element-anchored
        // types the instance element itself.
        fill_columns(table_mapping, table_def, element, &mut row)?;

        self.emit(&table_mapping.table, id, row)?;

        // Recurse into child types.
        let content = match def {
            Type::Element { content, .. } => content,
            other => other,
        };
        let reserved = self.literal_names(content);
        self.spawn_children(content, element, ty, id, &reserved)?;
        Ok(id)
    }

    /// Literal child-element names claimed by named sites in a content
    /// model. Wildcard alternatives must not shred children carrying these
    /// names — they belong to their literal sites.
    fn literal_names(&self, ty: &Type) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_literal_names(ty, &mut out, 0);
        out
    }

    fn collect_literal_names(&self, ty: &Type, out: &mut BTreeSet<String>, depth: usize) {
        if depth > 16 {
            return;
        }
        match ty {
            Type::Element {
                name: NameTest::Name(n),
                ..
            } => {
                out.insert(n.clone());
            }
            Type::Seq(items) | Type::Choice(items) => {
                items
                    .iter()
                    .for_each(|t| self.collect_literal_names(t, out, depth));
            }
            Type::Rep { inner, .. } => self.collect_literal_names(inner, out, depth),
            Type::Ref(name) => {
                if let Some(def) = self.schema.get(name) {
                    match def {
                        Type::Element {
                            name: NameTest::Name(n),
                            ..
                        } => {
                            out.insert(n.clone());
                        }
                        Type::Element { .. } => {}
                        other => self.collect_literal_names(other, out, depth + 1),
                    }
                }
            }
            _ => {}
        }
    }

    /// Walk a content model over an anchor element, shredding instances of
    /// referenced types found among the element's children.
    fn spawn_children(
        &mut self,
        ty: &Type,
        element: &Element,
        owner: &TypeName,
        owner_id: i64,
        reserved: &BTreeSet<String>,
    ) -> Result<(), ShredError> {
        match ty {
            Type::Empty | Type::Scalar { .. } | Type::Attribute { .. } => Ok(()),
            Type::Element { name, content } => {
                // Inlined nested element: descend into the matching child,
                // which starts a fresh reserved-name scope.
                let child = element.child_elements().find(|e| name.matches(&e.name));
                if let Some(child) = child {
                    let inner_reserved = self.literal_names(content);
                    self.spawn_children(content, child, owner, owner_id, &inner_reserved)?;
                }
                Ok(())
            }
            Type::Seq(items) => {
                for item in items {
                    self.spawn_children(item, element, owner, owner_id, reserved)?;
                }
                Ok(())
            }
            Type::Rep { inner, .. } => {
                self.spawn_children(inner, element, owner, owner_id, reserved)
            }
            Type::Choice(_) | Type::Ref(_) if ty_is_named_layer(ty) => {
                let alts = named_alternatives(ty);
                self.shred_named_site(&alts, element, owner, owner_id, reserved)
            }
            Type::Choice(items) => {
                // A non-named choice cannot occur in a p-schema; recurse
                // defensively.
                for item in items {
                    self.spawn_children(item, element, owner, owner_id, reserved)?;
                }
                Ok(())
            }
            Type::Ref(_) => unreachable!("covered by the named-layer arm"),
        }
    }

    /// Offer one child element to a named site: the first matching
    /// element-shaped alternative claims it. Shared between the DOM walk
    /// and the streaming root loop so both claim identically.
    fn claim_named_child(
        &mut self,
        alternatives: &[TypeName],
        child: &Element,
        owner: &TypeName,
        owner_id: i64,
        reserved: &BTreeSet<String>,
    ) -> Result<(), ShredError> {
        for alt in alternatives {
            let def = self
                .schema
                .get(alt)
                .ok_or_else(|| inconsistent("alternative type", alt))?;
            if let Type::Element { name, .. } = def {
                // A wildcard alternative must not steal children that
                // literal-named sites in this content model own.
                if name.is_wildcard() && reserved.contains(&child.name) {
                    continue;
                }
                if name.matches(&child.name) && element_matches(self.schema, child, def) {
                    self.shred_instance(alt, child, Some((owner, owner_id)))?;
                    break;
                }
            }
        }
        Ok(())
    }

    /// Handle one named-layer site (a `Ref` or a union of refs): find the
    /// child elements (or content groups) instantiating each alternative.
    fn shred_named_site(
        &mut self,
        alternatives: &[TypeName],
        element: &Element,
        owner: &TypeName,
        owner_id: i64,
        reserved: &BTreeSet<String>,
    ) -> Result<(), ShredError> {
        // Element-anchored alternatives claim matching child elements;
        // sequence-anchored alternatives claim the anchor element itself
        // when their content group is present.
        let mut any_sequence_claimed = false;
        for child in element.child_elements() {
            self.claim_named_child(alternatives, child, owner, owner_id, reserved)?;
        }
        for alt in alternatives {
            let def = self
                .schema
                .get(alt)
                .ok_or_else(|| inconsistent("alternative type", alt))?;
            if matches!(def, Type::Element { .. }) {
                continue;
            }
            if any_sequence_claimed {
                break; // at most one group alternative per parent
            }
            if sequence_type_present(self.schema, def, element) {
                self.shred_instance(alt, element, Some((owner, owner_id)))?;
                any_sequence_claimed = true;
            }
        }
        Ok(())
    }
}

/// Evaluate every mapped column of `table_mapping` against `element`,
/// writing hits into `row`.
fn fill_columns(
    table_mapping: &TableMapping,
    table_def: &legodb_relational::TableDef,
    element: &Element,
    row: &mut [Value],
) -> Result<(), ShredError> {
    for (rel_path, target) in &table_mapping.columns {
        if let Some(value) = extract_value(element, rel_path, target) {
            let idx = table_def
                .column_index(&target.column)
                .ok_or_else(|| inconsistent("mapped column", &target.column))?;
            row[idx] = value;
        }
    }
    Ok(())
}

fn ty_is_named_layer(ty: &Type) -> bool {
    match ty {
        Type::Ref(_) => true,
        Type::Choice(items) => items.iter().all(ty_is_named_layer),
        _ => false,
    }
}

fn named_alternatives(ty: &Type) -> Vec<TypeName> {
    let mut out = Vec::new();
    fn walk(ty: &Type, out: &mut Vec<TypeName>) {
        match ty {
            Type::Ref(n) => out.push(n.clone()),
            Type::Choice(items) => items.iter().for_each(|t| walk(t, out)),
            _ => {}
        }
    }
    walk(ty, &mut out);
    out
}

/// Is an instance of a sequence-shaped type present inside `element`?
/// Checked by requiring the group's first required member element
/// (resolving type references), falling back to full content matching.
fn sequence_type_present(schema: &Schema, def: &Type, element: &Element) -> bool {
    let mut members = Vec::new();
    collect_required_members(schema, def, &mut members, 0);
    if let Some(first) = members.first() {
        return element.first_child(first).is_some();
    }
    // No required members (all optional): fall back to content matching,
    // accepting permissively when the matcher cannot decide.
    content_matches(schema, element, def)
}

fn collect_required_members(schema: &Schema, ty: &Type, out: &mut Vec<String>, depth: usize) {
    if depth > 16 {
        return; // recursive type: give up, the caller falls back
    }
    match ty {
        Type::Element {
            name: NameTest::Name(n),
            ..
        } => out.push(n.clone()),
        Type::Seq(items) => items
            .iter()
            .for_each(|t| collect_required_members(schema, t, out, depth)),
        Type::Rep { inner, occurs, .. } if !occurs.nullable() => {
            collect_required_members(schema, inner, out, depth)
        }
        Type::Ref(name) => {
            if let Some(def) = schema.get(name) {
                collect_required_members(schema, def, out, depth + 1);
            }
        }
        _ => {}
    }
}

/// Pull the scalar value addressed by a relative path out of an element.
fn extract_value(element: &Element, rel_path: &[String], target: &ColumnTarget) -> Option<Value> {
    let mut current = element;
    let mut steps = rel_path.iter().peekable();
    while let Some(step) = steps.next() {
        if let Some(attr) = step.strip_prefix('@') {
            let v = current.attribute(attr)?;
            return Some(convert(v, target.kind));
        }
        if step == TILDE_STEP {
            // The tag name of the element navigated to so far: the anchor
            // itself for `[#tilde]`, the wildcard child after `#any`.
            return Some(Value::str(current.name.clone()));
        }
        if step == ANY_STEP {
            current = current.child_elements().next()?;
            continue;
        }
        current = current.first_child(step)?;
        let _ = steps.peek();
    }
    let text = current.text();
    if text.is_empty() && target.kind == ScalarKind::Integer {
        return None;
    }
    Some(convert(&text, target.kind))
}

fn convert(text: &str, kind: ScalarKind) -> Value {
    match kind {
        ScalarKind::Integer => text
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .unwrap_or(Value::Null),
        ScalarKind::String => Value::str(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::rel;
    use crate::stratify::PSchema;
    use legodb_schema::parse_schema;
    use legodb_xml::stats::Statistics;
    use legodb_xml::{events, parse};

    fn imdb_mapping() -> Mapping {
        let schema = parse_schema(
            "type IMDB = imdb[ Show{0,*} ]
             type Show = show [ @type[ String ], title[ String ], year[ Integer ],
                                Aka{1,10}, Review{0,*}, ( Movie | TV ) ]
             type Aka = aka[ String ]
             type Review = review[ ~[ String ] ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]
             type TV = seasons[ Integer ], description[ String ], Episode{0,*}
             type Episode = episode[ name[ String ], guest_director[ String ] ]",
        )
        .unwrap();
        rel(&PSchema::try_new(schema).unwrap(), &Statistics::new())
    }

    fn sample_xml() -> &'static str {
        r#"<imdb>
                <show type="Movie">
                  <title>Fugitive, The</title><year>1993</year>
                  <aka>Auf der Flucht</aka><aka>Le Fugitif</aka>
                  <review><nyt>ok movie</nyt></review>
                  <review><suntimes>two thumbs</suntimes></review>
                  <box_office>183752965</box_office>
                  <video_sales>72450220</video_sales>
                </show>
                <show type="TV series">
                  <title>X Files, The</title><year>1994</year>
                  <aka>Aux frontieres du Reel</aka>
                  <seasons>10</seasons>
                  <description>Aliens and the FBI</description>
                  <episode><name>Ghost in the Machine</name>
                           <guest_director>Jerrold Freedman</guest_director></episode>
                  <episode><name>Fallen Angel</name>
                           <guest_director>Larry Shaw</guest_director></episode>
                </show>
              </imdb>"#
    }

    fn sample_doc() -> Document {
        parse(sample_xml()).unwrap()
    }

    #[test]
    fn shreds_row_counts() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        assert_eq!(db.table("IMDB").unwrap().len(), 1);
        assert_eq!(db.table("Show").unwrap().len(), 2);
        assert_eq!(db.table("Aka").unwrap().len(), 3);
        assert_eq!(db.table("Review").unwrap().len(), 2);
        assert_eq!(db.table("Movie").unwrap().len(), 1);
        assert_eq!(db.table("TV").unwrap().len(), 1);
        assert_eq!(db.table("Episode").unwrap().len(), 2);
    }

    #[test]
    fn scalar_columns_are_filled() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        let show = db.table("Show").unwrap();
        let rows = show.scan();
        let def = &show.def;
        let title = def.column_index("title").unwrap();
        let year = def.column_index("year").unwrap();
        let ty = def.column_index("type").unwrap();
        assert_eq!(rows[0][title], Value::str("Fugitive, The"));
        assert_eq!(rows[0][year], Value::Int(1993));
        assert_eq!(rows[0][ty], Value::str("Movie"));
    }

    #[test]
    fn parent_foreign_keys_link_children() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        let aka = db.table("Aka").unwrap();
        let fk = aka.def.column_index("parent_Show").unwrap();
        let parents: Vec<i64> = aka.scan().iter().map(|r| r[fk].as_int().unwrap()).collect();
        assert_eq!(parents, vec![1, 1, 2]);
    }

    #[test]
    fn union_alternatives_land_in_the_right_tables() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        let movie = db.table("Movie").unwrap();
        let bo = movie.def.column_index("box_office").unwrap();
        assert_eq!(movie.scan()[0][bo], Value::Int(183752965));
        let tv = db.table("TV").unwrap();
        let seasons = tv.def.column_index("seasons").unwrap();
        assert_eq!(tv.scan()[0][seasons], Value::Int(10));
        // Episodes hang off the TV instance.
        let ep = db.table("Episode").unwrap();
        let fk = ep.def.column_index("parent_TV").unwrap();
        assert!(ep.scan().iter().all(|r| r[fk] == Value::Int(1)));
    }

    #[test]
    fn wildcard_reviews_record_tilde_and_content() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        let review = db.table("Review").unwrap();
        let tilde = review
            .def
            .columns
            .iter()
            .position(|c| c.name.contains("tilde"))
            .expect("tilde column");
        let names: Vec<String> = review
            .scan()
            .iter()
            .map(|r| r[tilde].as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["nyt", "suntimes"]);
    }

    #[test]
    fn invalid_document_is_rejected() {
        let m = imdb_mapping();
        let doc = parse("<wrong/>").unwrap();
        assert!(matches!(shred(&m, &doc), Err(ShredError::Invalid(_))));
    }

    #[test]
    fn fk_indexes_exist_after_shredding() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        assert!(db.table("Aka").unwrap().has_index("parent_Show"));
        assert!(db.table("Episode").unwrap().has_index("parent_TV"));
    }

    #[test]
    fn streaming_matches_dom_bit_for_bit() {
        let m = imdb_mapping();
        let dom = shred_dom(&m, &sample_doc()).unwrap();
        let wrapped = shred(&m, &sample_doc()).unwrap();
        let (streamed, report) = shred_events_report(&m, events(sample_xml())).unwrap();
        assert_eq!(dom.snapshot_json(), wrapped.snapshot_json());
        assert_eq!(dom.snapshot_json(), streamed.snapshot_json());
        assert!(report.streamed);
        assert_eq!(report.rows as usize, dom.total_rows());
    }

    #[test]
    fn streaming_keeps_memory_bounded() {
        let m = imdb_mapping();
        let mut xml = String::from("<imdb>");
        for i in 0..200 {
            xml.push_str(&format!(
                "<show type=\"Movie\"><title>T{i}</title><year>19{:02}</year>\
                 <aka>A{i}</aka><box_office>{i}</box_office>\
                 <video_sales>{i}</video_sales></show>",
                i % 100
            ));
        }
        xml.push_str("</imdb>");
        let doc = parse(&xml).unwrap();
        let total = doc.element_count();
        let (db, report) = shred_events_report(&m, events(&xml)).unwrap();
        assert!(report.streamed);
        // One show subtree (6 elements) + the root anchor, not the ~1200
        // elements the DOM holds.
        assert!(
            report.peak_resident_elements * 10 < total,
            "peak {} vs total {total}",
            report.peak_resident_elements
        );
        assert_eq!(
            db.snapshot_json(),
            shred_dom(&m, &doc).unwrap().snapshot_json()
        );
    }

    #[test]
    fn group_shaped_root_alternative_falls_back_to_buffering() {
        // The root's named site resolves to a sequence-shaped type: the
        // streaming walk defers to the DOM path to keep exact semantics.
        let schema = parse_schema(
            "type R = r[ Movie ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]",
        )
        .unwrap();
        let m = rel(&PSchema::try_new(schema).unwrap(), &Statistics::new());
        let xml = "<r><box_office>1</box_office><video_sales>2</video_sales></r>";
        let (db, report) = shred_events_report(&m, events(xml)).unwrap();
        assert!(!report.streamed);
        let dom = shred_dom(&m, &parse(xml).unwrap()).unwrap();
        assert_eq!(db.snapshot_json(), dom.snapshot_json());
    }

    #[test]
    fn wildcard_root_site_streams_through_the_generic_matcher() {
        // A wildcard child name is ineligible for the deterministic
        // tracker but still streams through the derivative matcher.
        let schema = parse_schema(
            "type R = r[ W{0,*} ]
             type W = ~[ String ]",
        )
        .unwrap();
        let m = rel(&PSchema::try_new(schema).unwrap(), &Statistics::new());
        let xml = "<r><a>one</a><b>two</b></r>";
        let (db, report) = shred_events_report(&m, events(xml)).unwrap();
        assert!(report.streamed);
        let dom = shred_dom(&m, &parse(xml).unwrap()).unwrap();
        assert_eq!(db.snapshot_json(), dom.snapshot_json());
    }

    #[test]
    fn deterministic_root_occurrence_checks_match_dom() {
        // Ordering and occurrence violations decided by the O(1) site
        // automaton must agree with the DOM oracle, document by document.
        let schema = parse_schema(
            "type R = r[ A{1,2}, B ]
             type A = a[ String ]
             type B = b[ String ]",
        )
        .unwrap();
        let m = rel(&PSchema::try_new(schema).unwrap(), &Statistics::new());
        let docs = [
            "<r><a>x</a><b>y</b></r>",                 // valid, minimal
            "<r><a>x</a><a>x</a><b>y</b></r>",         // valid, repeated site
            "<r><b>y</b><a>x</a></r>",                 // out of order
            "<r><a>x</a><a>x</a><a>x</a><b>y</b></r>", // over max
            "<r><b>y</b></r>",                         // under min (skipped site)
            "<r><a>x</a></r>",                         // under min (at close)
            "<r><a>x</a><c>z</c><b>y</b></r>",         // unknown tag
            "<r>loose text<a>x</a><b>y</b></r>",       // text where none allowed
        ];
        for xml in docs {
            let stream = shred_events_report(&m, events(xml));
            let dom = shred_dom(&m, &parse(xml).unwrap());
            match (stream, dom) {
                (Ok((sdb, report)), Ok(ddb)) => {
                    assert!(report.streamed, "{xml}");
                    assert_eq!(sdb.snapshot_json(), ddb.snapshot_json(), "{xml}");
                }
                (Err(se), Err(de)) => assert_eq!(se, de, "{xml}"),
                (Ok(_), Err(de)) => panic!("{xml}: stream ok but dom rejected: {de}"),
                (Err(se), Ok(_)) => panic!("{xml}: dom ok but stream rejected: {se}"),
            }
        }
        // A root attribute kills a content model with no attribute
        // positions in both paths.
        let attr = r#"<r id="1"><a>x</a><b>y</b></r>"#;
        let se = shred_events(&m, events(attr)).unwrap_err();
        let de = shred_dom(&m, &parse(attr).unwrap()).unwrap_err();
        assert_eq!(se, de);
    }

    #[test]
    fn invalid_stream_is_rejected_like_dom() {
        let m = imdb_mapping();
        let stream_err = shred_events(&m, events("<wrong/>")).unwrap_err();
        let dom_err = shred_dom(&m, &parse("<wrong/>").unwrap()).unwrap_err();
        assert_eq!(stream_err, dom_err);
        // Invalid *content* (not just a wrong root tag) is also caught.
        let bad = "<imdb><show><title>T</title></show></imdb>";
        let stream_err = shred_events(&m, events(bad)).unwrap_err();
        let dom_err = shred_dom(&m, &parse(bad).unwrap()).unwrap_err();
        assert_eq!(stream_err, dom_err);
    }

    #[test]
    fn parse_errors_surface_through_shred_events() {
        let m = imdb_mapping();
        let err = shred_events(&m, events("<imdb><show></imdb>")).unwrap_err();
        assert!(matches!(err, ShredError::Parse(_)), "{err}");
        // Trailing content after the root is a tokenizer error too.
        let err = shred_events(&m, events("<imdb></imdb><x/>")).unwrap_err();
        assert!(matches!(err, ShredError::Parse(_)), "{err}");
    }

    #[test]
    fn shred_stream_enforces_limits() {
        let m = imdb_mapping();
        let limits = ParseLimits {
            max_depth: 2,
            ..Default::default()
        };
        let deep = "<imdb><show><title>T</title></show></imdb>";
        let err = shred_stream(&m, deep, &limits).unwrap_err();
        assert!(matches!(err, ShredError::Parse(_)), "{err}");
        assert!(shred_stream(&m, sample_xml(), &ParseLimits::default()).is_ok());
    }
}
