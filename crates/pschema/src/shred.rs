//! Shredding: loading an XML document into the relational database defined
//! by a [`Mapping`] (the paper's "corresponding mapping from XML documents
//! to databases", §1).
//!
//! Each type instance becomes one row: the key column gets a fresh id, the
//! `parent_T` column gets the owning instance's id, scalar positions fill
//! data columns, and child types recurse. Union alternatives are decided by
//! validating the candidate element (or element content, for
//! sequence-shaped types) against each alternative.

use crate::mapping::{ColumnTarget, Mapping, ANY_STEP, TILDE_STEP};
use legodb_relational::{Database, RelationalError, Value};
use legodb_schema::validate::{content_matches, element_matches};
use legodb_schema::{NameTest, ScalarKind, Schema, Type, TypeName};
use legodb_xml::{Document, Element};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A shredding failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ShredError {
    /// The document does not match the p-schema.
    Invalid(String),
    /// A storage-level failure (should not occur for valid inputs).
    Storage(RelationalError),
    /// The mapping, schema, and catalog disagree — a type the mapping
    /// references is undefined, or a column is missing. Only reachable
    /// with a hand-assembled [`Mapping`]; `rel(ps)` never produces one.
    Inconsistent(String),
}

impl fmt::Display for ShredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShredError::Invalid(m) => write!(f, "document does not match the p-schema: {m}"),
            ShredError::Storage(e) => write!(f, "storage error while shredding: {e}"),
            ShredError::Inconsistent(m) => write!(f, "mapping/schema inconsistency: {m}"),
        }
    }
}

impl std::error::Error for ShredError {}

/// The typed error for a mapping/schema/catalog lookup that only fails
/// when the caller assembled inconsistent inputs.
fn inconsistent(what: &str, name: &dyn fmt::Display) -> ShredError {
    ShredError::Inconsistent(format!("{what} `{name}` is missing"))
}

impl From<RelationalError> for ShredError {
    fn from(e: RelationalError) -> Self {
        ShredError::Storage(e)
    }
}

/// Shred `doc` into a fresh database over `mapping.catalog`.
///
/// Builds foreign-key indexes after loading (they are what the publishing
/// path and the index-join operators probe).
pub fn shred(mapping: &Mapping, doc: &Document) -> Result<Database, ShredError> {
    let schema = mapping.pschema.schema();
    let root = mapping.root().clone();
    let root_def = schema
        .get(&root)
        .ok_or_else(|| inconsistent("root type", &root))?;
    if !element_matches(schema, &doc.root, root_def) {
        return Err(ShredError::Invalid(format!(
            "root element <{}> does not match type {root}",
            doc.root.name
        )));
    }
    let mut s = Shredder {
        mapping,
        schema,
        db: Database::from_catalog(&mapping.catalog),
        next_ids: BTreeMap::new(),
    };
    s.shred_instance(&root, &doc.root, None)?;
    // FK indexes for the publisher and index joins.
    for table in s.db.tables() {
        let fks: Vec<String> = table
            .def
            .foreign_keys
            .iter()
            .map(|fk| fk.column.clone())
            .collect();
        for fk in fks {
            table.create_index(&fk)?;
        }
    }
    Ok(s.db)
}

struct Shredder<'a> {
    mapping: &'a Mapping,
    schema: &'a Schema,
    db: Database,
    /// Per-table id counters. BTreeMap, not HashMap: shredding must stay
    /// deterministic end-to-end so fingerprint-adjacent paths never see
    /// hash-randomized order.
    next_ids: BTreeMap<String, i64>,
}

impl Shredder<'_> {
    /// Shred one instance of `ty`, anchored at `element` (the instance's
    /// own element, or the parent element for sequence-shaped types).
    fn shred_instance(
        &mut self,
        ty: &TypeName,
        element: &Element,
        parent: Option<(&TypeName, i64)>,
    ) -> Result<i64, ShredError> {
        let table_mapping = self
            .mapping
            .table(ty)
            .ok_or_else(|| inconsistent("table mapping for type", ty))?;
        let def = self
            .schema
            .get(ty)
            .ok_or_else(|| inconsistent("type definition", ty))?;
        let table_def = self
            .mapping
            .catalog
            .table(&table_mapping.table)
            .ok_or_else(|| inconsistent("catalog table", &table_mapping.table))?;

        let id = {
            let n = self
                .next_ids
                .entry(table_mapping.table.clone())
                .or_insert(0);
            *n += 1;
            *n
        };

        let mut row = vec![Value::Null; table_def.columns.len()];
        let key_idx = table_def
            .column_index(&table_mapping.key)
            .ok_or_else(|| inconsistent("key column", &table_mapping.key))?;
        row[key_idx] = Value::Int(id);
        if let Some((parent_ty, parent_id)) = parent {
            if let Some(fk) = table_mapping.parent_fk.get(parent_ty) {
                let fk_idx = table_def
                    .column_index(fk)
                    .ok_or_else(|| inconsistent("foreign-key column", fk))?;
                row[fk_idx] = Value::Int(parent_id);
            }
        }

        // The element whose content the columns read: for element-anchored
        // types the instance element itself.
        for (rel_path, target) in &table_mapping.columns {
            if let Some(value) = extract_value(element, rel_path, target) {
                let idx = table_def
                    .column_index(&target.column)
                    .ok_or_else(|| inconsistent("mapped column", &target.column))?;
                row[idx] = value;
            }
        }

        self.db.insert(&table_mapping.table, row)?;

        // Recurse into child types.
        let content = match def {
            Type::Element { content, .. } => content,
            other => other,
        };
        let reserved = self.literal_names(content);
        self.spawn_children(content, element, ty, id, &reserved)?;
        Ok(id)
    }

    /// Literal child-element names claimed by named sites in a content
    /// model. Wildcard alternatives must not shred children carrying these
    /// names — they belong to their literal sites.
    fn literal_names(&self, ty: &Type) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_literal_names(ty, &mut out, 0);
        out
    }

    fn collect_literal_names(&self, ty: &Type, out: &mut BTreeSet<String>, depth: usize) {
        if depth > 16 {
            return;
        }
        match ty {
            Type::Element {
                name: NameTest::Name(n),
                ..
            } => {
                out.insert(n.clone());
            }
            Type::Seq(items) | Type::Choice(items) => {
                items
                    .iter()
                    .for_each(|t| self.collect_literal_names(t, out, depth));
            }
            Type::Rep { inner, .. } => self.collect_literal_names(inner, out, depth),
            Type::Ref(name) => {
                if let Some(def) = self.schema.get(name) {
                    match def {
                        Type::Element {
                            name: NameTest::Name(n),
                            ..
                        } => {
                            out.insert(n.clone());
                        }
                        Type::Element { .. } => {}
                        other => self.collect_literal_names(other, out, depth + 1),
                    }
                }
            }
            _ => {}
        }
    }

    /// Walk a content model over an anchor element, shredding instances of
    /// referenced types found among the element's children.
    fn spawn_children(
        &mut self,
        ty: &Type,
        element: &Element,
        owner: &TypeName,
        owner_id: i64,
        reserved: &BTreeSet<String>,
    ) -> Result<(), ShredError> {
        match ty {
            Type::Empty | Type::Scalar { .. } | Type::Attribute { .. } => Ok(()),
            Type::Element { name, content } => {
                // Inlined nested element: descend into the matching child,
                // which starts a fresh reserved-name scope.
                let child = element.child_elements().find(|e| name.matches(&e.name));
                if let Some(child) = child {
                    let inner_reserved = self.literal_names(content);
                    self.spawn_children(content, child, owner, owner_id, &inner_reserved)?;
                }
                Ok(())
            }
            Type::Seq(items) => {
                for item in items {
                    self.spawn_children(item, element, owner, owner_id, reserved)?;
                }
                Ok(())
            }
            Type::Rep { inner, .. } => {
                self.spawn_children(inner, element, owner, owner_id, reserved)
            }
            Type::Choice(_) | Type::Ref(_) if ty_is_named_layer(ty) => {
                let alts = named_alternatives(ty);
                self.shred_named_site(&alts, element, owner, owner_id, reserved)
            }
            Type::Choice(items) => {
                // A non-named choice cannot occur in a p-schema; recurse
                // defensively.
                for item in items {
                    self.spawn_children(item, element, owner, owner_id, reserved)?;
                }
                Ok(())
            }
            Type::Ref(_) => unreachable!("covered by the named-layer arm"),
        }
    }

    /// Handle one named-layer site (a `Ref` or a union of refs): find the
    /// child elements (or content groups) instantiating each alternative.
    fn shred_named_site(
        &mut self,
        alternatives: &[TypeName],
        element: &Element,
        owner: &TypeName,
        owner_id: i64,
        reserved: &BTreeSet<String>,
    ) -> Result<(), ShredError> {
        // Element-anchored alternatives claim matching child elements;
        // sequence-anchored alternatives claim the anchor element itself
        // when their content group is present.
        let mut any_sequence_claimed = false;
        for child in element.child_elements() {
            for alt in alternatives {
                let def = self
                    .schema
                    .get(alt)
                    .ok_or_else(|| inconsistent("alternative type", alt))?;
                if let Type::Element { name, .. } = def {
                    // A wildcard alternative must not steal children that
                    // literal-named sites in this content model own.
                    if name.is_wildcard() && reserved.contains(&child.name) {
                        continue;
                    }
                    if name.matches(&child.name) && element_matches(self.schema, child, def) {
                        self.shred_instance(alt, child, Some((owner, owner_id)))?;
                        break;
                    }
                }
            }
        }
        for alt in alternatives {
            let def = self
                .schema
                .get(alt)
                .ok_or_else(|| inconsistent("alternative type", alt))?;
            if matches!(def, Type::Element { .. }) {
                continue;
            }
            if any_sequence_claimed {
                break; // at most one group alternative per parent
            }
            if sequence_type_present(self.schema, def, element) {
                self.shred_instance(alt, element, Some((owner, owner_id)))?;
                any_sequence_claimed = true;
            }
        }
        Ok(())
    }
}

fn ty_is_named_layer(ty: &Type) -> bool {
    match ty {
        Type::Ref(_) => true,
        Type::Choice(items) => items.iter().all(ty_is_named_layer),
        _ => false,
    }
}

fn named_alternatives(ty: &Type) -> Vec<TypeName> {
    let mut out = Vec::new();
    fn walk(ty: &Type, out: &mut Vec<TypeName>) {
        match ty {
            Type::Ref(n) => out.push(n.clone()),
            Type::Choice(items) => items.iter().for_each(|t| walk(t, out)),
            _ => {}
        }
    }
    walk(ty, &mut out);
    out
}

/// Is an instance of a sequence-shaped type present inside `element`?
/// Checked by requiring the group's first required member element
/// (resolving type references), falling back to full content matching.
fn sequence_type_present(schema: &Schema, def: &Type, element: &Element) -> bool {
    let mut members = Vec::new();
    collect_required_members(schema, def, &mut members, 0);
    if let Some(first) = members.first() {
        return element.first_child(first).is_some();
    }
    // No required members (all optional): fall back to content matching,
    // accepting permissively when the matcher cannot decide.
    content_matches(schema, element, def)
}

fn collect_required_members(schema: &Schema, ty: &Type, out: &mut Vec<String>, depth: usize) {
    if depth > 16 {
        return; // recursive type: give up, the caller falls back
    }
    match ty {
        Type::Element {
            name: NameTest::Name(n),
            ..
        } => out.push(n.clone()),
        Type::Seq(items) => items
            .iter()
            .for_each(|t| collect_required_members(schema, t, out, depth)),
        Type::Rep { inner, occurs, .. } if !occurs.nullable() => {
            collect_required_members(schema, inner, out, depth)
        }
        Type::Ref(name) => {
            if let Some(def) = schema.get(name) {
                collect_required_members(schema, def, out, depth + 1);
            }
        }
        _ => {}
    }
}

/// Pull the scalar value addressed by a relative path out of an element.
fn extract_value(element: &Element, rel_path: &[String], target: &ColumnTarget) -> Option<Value> {
    let mut current = element;
    let mut steps = rel_path.iter().peekable();
    while let Some(step) = steps.next() {
        if let Some(attr) = step.strip_prefix('@') {
            let v = current.attribute(attr)?;
            return Some(convert(v, target.kind));
        }
        if step == TILDE_STEP {
            // The tag name of the element navigated to so far: the anchor
            // itself for `[#tilde]`, the wildcard child after `#any`.
            return Some(Value::str(current.name.clone()));
        }
        if step == ANY_STEP {
            current = current.child_elements().next()?;
            continue;
        }
        current = current.first_child(step)?;
        let _ = steps.peek();
    }
    let text = current.text();
    if text.is_empty() && target.kind == ScalarKind::Integer {
        return None;
    }
    Some(convert(&text, target.kind))
}

fn convert(text: &str, kind: ScalarKind) -> Value {
    match kind {
        ScalarKind::Integer => text
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .unwrap_or(Value::Null),
        ScalarKind::String => Value::str(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::rel;
    use crate::stratify::PSchema;
    use legodb_schema::parse_schema;
    use legodb_xml::parse;
    use legodb_xml::stats::Statistics;

    fn imdb_mapping() -> Mapping {
        let schema = parse_schema(
            "type IMDB = imdb[ Show{0,*} ]
             type Show = show [ @type[ String ], title[ String ], year[ Integer ],
                                Aka{1,10}, Review{0,*}, ( Movie | TV ) ]
             type Aka = aka[ String ]
             type Review = review[ ~[ String ] ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]
             type TV = seasons[ Integer ], description[ String ], Episode{0,*}
             type Episode = episode[ name[ String ], guest_director[ String ] ]",
        )
        .unwrap();
        rel(&PSchema::try_new(schema).unwrap(), &Statistics::new())
    }

    fn sample_doc() -> Document {
        parse(
            r#"<imdb>
                <show type="Movie">
                  <title>Fugitive, The</title><year>1993</year>
                  <aka>Auf der Flucht</aka><aka>Le Fugitif</aka>
                  <review><nyt>ok movie</nyt></review>
                  <review><suntimes>two thumbs</suntimes></review>
                  <box_office>183752965</box_office>
                  <video_sales>72450220</video_sales>
                </show>
                <show type="TV series">
                  <title>X Files, The</title><year>1994</year>
                  <aka>Aux frontieres du Reel</aka>
                  <seasons>10</seasons>
                  <description>Aliens and the FBI</description>
                  <episode><name>Ghost in the Machine</name>
                           <guest_director>Jerrold Freedman</guest_director></episode>
                  <episode><name>Fallen Angel</name>
                           <guest_director>Larry Shaw</guest_director></episode>
                </show>
              </imdb>"#,
        )
        .unwrap()
    }

    #[test]
    fn shreds_row_counts() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        assert_eq!(db.table("IMDB").unwrap().len(), 1);
        assert_eq!(db.table("Show").unwrap().len(), 2);
        assert_eq!(db.table("Aka").unwrap().len(), 3);
        assert_eq!(db.table("Review").unwrap().len(), 2);
        assert_eq!(db.table("Movie").unwrap().len(), 1);
        assert_eq!(db.table("TV").unwrap().len(), 1);
        assert_eq!(db.table("Episode").unwrap().len(), 2);
    }

    #[test]
    fn scalar_columns_are_filled() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        let show = db.table("Show").unwrap();
        let rows = show.scan();
        let def = &show.def;
        let title = def.column_index("title").unwrap();
        let year = def.column_index("year").unwrap();
        let ty = def.column_index("type").unwrap();
        assert_eq!(rows[0][title], Value::str("Fugitive, The"));
        assert_eq!(rows[0][year], Value::Int(1993));
        assert_eq!(rows[0][ty], Value::str("Movie"));
    }

    #[test]
    fn parent_foreign_keys_link_children() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        let aka = db.table("Aka").unwrap();
        let fk = aka.def.column_index("parent_Show").unwrap();
        let parents: Vec<i64> = aka.scan().iter().map(|r| r[fk].as_int().unwrap()).collect();
        assert_eq!(parents, vec![1, 1, 2]);
    }

    #[test]
    fn union_alternatives_land_in_the_right_tables() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        let movie = db.table("Movie").unwrap();
        let bo = movie.def.column_index("box_office").unwrap();
        assert_eq!(movie.scan()[0][bo], Value::Int(183752965));
        let tv = db.table("TV").unwrap();
        let seasons = tv.def.column_index("seasons").unwrap();
        assert_eq!(tv.scan()[0][seasons], Value::Int(10));
        // Episodes hang off the TV instance.
        let ep = db.table("Episode").unwrap();
        let fk = ep.def.column_index("parent_TV").unwrap();
        assert!(ep.scan().iter().all(|r| r[fk] == Value::Int(1)));
    }

    #[test]
    fn wildcard_reviews_record_tilde_and_content() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        let review = db.table("Review").unwrap();
        let tilde = review
            .def
            .columns
            .iter()
            .position(|c| c.name.contains("tilde"))
            .expect("tilde column");
        let names: Vec<String> = review
            .scan()
            .iter()
            .map(|r| r[tilde].as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["nyt", "suntimes"]);
    }

    #[test]
    fn invalid_document_is_rejected() {
        let m = imdb_mapping();
        let doc = parse("<wrong/>").unwrap();
        assert!(matches!(shred(&m, &doc), Err(ShredError::Invalid(_))));
    }

    #[test]
    fn fk_indexes_exist_after_shredding() {
        let m = imdb_mapping();
        let db = shred(&m, &sample_doc()).unwrap();
        assert!(db.table("Aka").unwrap().has_index("parent_Show"));
        assert!(db.table("Episode").unwrap().has_index("parent_TV"));
    }
}
