//! Synthetic IMDB data generation.
//!
//! Produces documents whose per-path statistics track Appendix A at a
//! chosen scale: show/director/actor counts, children-per-parent ratios,
//! movie/TV split, review-source mix, string sizes, and numeric ranges.
//! Substitutes for the proprietary IMDB dataset — the cost pipeline only
//! consumes path statistics, which this data reproduces.

use legodb_util::Rng;
use legodb_xml::{Document, Element};

/// Generator scale knobs. Defaults reproduce Appendix A ratios at
/// 1/100 scale.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Number of `show` elements.
    pub shows: usize,
    /// Number of `director` elements.
    pub directors: usize,
    /// Number of `actor` elements.
    pub actors: usize,
    /// Fraction of reviews tagged `nyt` (rest split over other sources).
    pub nyt_fraction: f64,
    /// Average akas per show (Appendix A: 13641/34798 ≈ 0.39).
    pub akas_per_show: f64,
    /// Average reviews per show (11250/34798 ≈ 0.32).
    pub reviews_per_show: f64,
    /// Fraction of shows that are movies (7000/10500 among classified).
    pub movie_fraction: f64,
    /// Average episodes per TV show (31250/3500 ≈ 8.9).
    pub episodes_per_tv: f64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig::at_scale(0.01)
    }
}

impl ScaleConfig {
    /// Appendix A ratios at a linear scale factor.
    pub fn at_scale(scale: f64) -> ScaleConfig {
        let n = |base: f64| ((base * scale).round() as usize).max(1);
        ScaleConfig {
            shows: n(34798.0),
            directors: n(26251.0),
            actors: n(165_786.0),
            nyt_fraction: 0.3,
            akas_per_show: 13641.0 / 34798.0,
            reviews_per_show: 11250.0 / 34798.0,
            movie_fraction: 7000.0 / 10500.0,
            episodes_per_tv: 31250.0 / 3500.0,
        }
    }
}

/// Generate one IMDB document.
pub fn generate_imdb(rng: &mut impl Rng, config: &ScaleConfig) -> Document {
    let mut imdb = Element::new("imdb");
    for i in 0..config.shows {
        imdb.children
            .push(legodb_xml::Node::Element(show(rng, config, i)));
    }
    for i in 0..config.directors {
        imdb.children
            .push(legodb_xml::Node::Element(director(rng, config, i)));
    }
    for i in 0..config.actors {
        imdb.children
            .push(legodb_xml::Node::Element(actor(rng, config, i)));
    }
    Document::new(imdb)
}

const REVIEW_SOURCES: [&str; 3] = ["suntimes", "variety", "guardian"];

fn rand_string(rng: &mut impl Rng, len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz ";
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

/// Sample a count with the given mean (rounded Bernoulli mixture: keeps
/// the mean exact for means below one, approximates Poisson above).
fn sample_count(rng: &mut impl Rng, mean: f64) -> usize {
    let base = mean.floor() as usize;
    let frac = mean - base as f64;
    base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
}

/// A title shared across shows, played, and directed so the join queries
/// (Q12–Q14) produce matches.
fn title_for(i: usize) -> String {
    format!("title_{i:06}")
}

fn person_name(kind: &str, i: usize) -> String {
    format!("{kind}_{i:06}")
}

fn show(rng: &mut impl Rng, config: &ScaleConfig, i: usize) -> Element {
    let is_movie = rng.gen_bool(config.movie_fraction.clamp(0.0, 1.0));
    let mut e = Element::new("show")
        .with_attr("type", if is_movie { "Movie" } else { "TV series" })
        .with_child(Element::text_leaf("title", title_for(i)))
        .with_child(Element::text_leaf(
            "year",
            rng.gen_range(1800..=2100).to_string(),
        ));
    for _ in 0..sample_count(rng, config.akas_per_show) {
        e.children
            .push(legodb_xml::Node::Element(Element::text_leaf(
                "aka",
                rand_string(rng, 40),
            )));
    }
    for _ in 0..sample_count(rng, config.reviews_per_show) {
        let source = if rng.gen_bool(config.nyt_fraction.clamp(0.0, 1.0)) {
            "nyt"
        } else {
            REVIEW_SOURCES[rng.gen_range(0..REVIEW_SOURCES.len())]
        };
        let review =
            Element::new("review").with_child(Element::text_leaf(source, rand_string(rng, 80)));
        e.children.push(legodb_xml::Node::Element(review));
    }
    if is_movie {
        e = e
            .with_child(Element::text_leaf(
                "box_office",
                rng.gen_range(10_000..=100_000_000i64).to_string(),
            ))
            .with_child(Element::text_leaf(
                "video_sales",
                rng.gen_range(10_000..=100_000_000i64).to_string(),
            ));
    } else {
        e = e
            .with_child(Element::text_leaf(
                "seasons",
                rng.gen_range(1..=30).to_string(),
            ))
            .with_child(Element::text_leaf("description", rand_string(rng, 120)));
        for _ in 0..sample_count(rng, config.episodes_per_tv) {
            let episode = Element::new("episode")
                .with_child(Element::text_leaf("name", rand_string(rng, 40)))
                .with_child(Element::text_leaf(
                    "guest_director",
                    person_name("director", rng.gen_range(0..config.directors.max(1))),
                ));
            e.children.push(legodb_xml::Node::Element(episode));
        }
    }
    e
}

fn director(rng: &mut impl Rng, config: &ScaleConfig, i: usize) -> Element {
    let mut e =
        Element::new("director").with_child(Element::text_leaf("name", person_name("director", i)));
    // 105004 / 26251 ≈ 4 directed per director.
    for _ in 0..sample_count(rng, 4.0) {
        let mut d = Element::new("directed")
            .with_child(Element::text_leaf(
                "title",
                title_for(rng.gen_range(0..config.shows.max(1))),
            ))
            .with_child(Element::text_leaf(
                "year",
                rng.gen_range(1800..=2100).to_string(),
            ));
        if rng.gen_bool(0.48) {
            d.children
                .push(legodb_xml::Node::Element(Element::text_leaf(
                    "info",
                    rand_string(rng, 100),
                )));
        }
        e.children.push(legodb_xml::Node::Element(d));
    }
    e
}

fn actor(rng: &mut impl Rng, config: &ScaleConfig, i: usize) -> Element {
    let mut e =
        Element::new("actor").with_child(Element::text_leaf("name", person_name("actor", i)));
    // 663144 / 165786 ≈ 4 played per actor.
    for _ in 0..sample_count(rng, 4.0) {
        let mut p = Element::new("played")
            .with_child(Element::text_leaf(
                "title",
                title_for(rng.gen_range(0..config.shows.max(1))),
            ))
            .with_child(Element::text_leaf(
                "year",
                rng.gen_range(1800..=2100).to_string(),
            ))
            .with_child(Element::text_leaf("character", rand_string(rng, 40)))
            .with_child(Element::text_leaf(
                "order_of_appearance",
                rng.gen_range(1..=300).to_string(),
            ));
        // 66000 / 663144 ≈ 0.1 awards per role.
        for _ in 0..sample_count(rng, 0.1) {
            let award = Element::new("award")
                .with_child(Element::text_leaf("result", "won"))
                .with_child(Element::text_leaf("award_name", rand_string(rng, 40)));
            p.children.push(legodb_xml::Node::Element(award));
        }
        e.children.push(legodb_xml::Node::Element(p));
    }
    // 20000 / 165786 ≈ 0.12 biographies per actor.
    if rng.gen_bool(20_000.0 / 165_786.0) {
        let bio = Element::new("biography")
            .with_child(Element::text_leaf(
                "birthday",
                format!(
                    "{:04}-{:02}-{:02}",
                    rng.gen_range(1900..2000),
                    rng.gen_range(1..13),
                    rng.gen_range(1..29)
                ),
            ))
            .with_child(Element::text_leaf("text", rand_string(rng, 30)));
        e.children.push(legodb_xml::Node::Element(bio));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::imdb_schema;
    use legodb_schema::validate::validate;
    use legodb_util::StdRng;
    use legodb_xml::stats::Statistics;

    fn tiny() -> ScaleConfig {
        ScaleConfig {
            shows: 40,
            directors: 20,
            actors: 60,
            ..ScaleConfig::at_scale(0.001)
        }
    }

    #[test]
    fn generated_documents_validate_against_the_schema() {
        let schema = imdb_schema();
        let mut rng = StdRng::seed_from_u64(2002);
        let doc = generate_imdb(&mut rng, &tiny());
        assert!(
            validate(&schema, &doc).is_ok(),
            "generated document is invalid"
        );
    }

    #[test]
    fn generated_statistics_track_the_config() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = ScaleConfig {
            shows: 200,
            directors: 50,
            actors: 100,
            ..tiny()
        };
        let doc = generate_imdb(&mut rng, &config);
        let stats = Statistics::collect(&doc);
        assert_eq!(stats.count(&["imdb", "show"]), Some(200));
        assert_eq!(stats.count(&["imdb", "director"]), Some(50));
        assert_eq!(stats.count(&["imdb", "actor"]), Some(100));
        // Movie fraction ≈ 2/3 of shows have box_office.
        let movies = stats.count(&["imdb", "show", "box_office"]).unwrap_or(0);
        assert!((60..=180).contains(&movies), "movies = {movies}");
        // Title sizes near the configured 12 bytes ("title_000123").
        let title = stats.get(&["imdb", "show", "title"]).unwrap();
        assert!((10.0..=14.0).contains(&title.avg_size.unwrap()));
    }

    #[test]
    fn review_mix_respects_nyt_fraction() {
        let mut rng = StdRng::seed_from_u64(13);
        let config = ScaleConfig {
            shows: 500,
            reviews_per_show: 2.0,
            nyt_fraction: 0.5,
            ..tiny()
        };
        let doc = generate_imdb(&mut rng, &config);
        let stats = Statistics::collect(&doc);
        let nyt = stats.count(&["imdb", "show", "review", "nyt"]).unwrap_or(0) as f64;
        let total = stats.count(&["imdb", "show", "review"]).unwrap_or(0) as f64;
        assert!(total > 500.0);
        let frac = nyt / total;
        assert!((0.4..=0.6).contains(&frac), "nyt fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = tiny();
        let a = generate_imdb(&mut StdRng::seed_from_u64(5), &config);
        let b = generate_imdb(&mut StdRng::seed_from_u64(5), &config);
        assert_eq!(a, b);
    }
}
