//! The IMDB schema of Appendix B, in the type-algebra notation.
//!
//! Element names follow the appendix (singular `aka`, `review`,
//! `episode`); the `Show` union `(Movie | TV)` and the wildcard review
//! content are preserved exactly — they are what the union-distribution
//! and wildcard experiments (§5.4) operate on.

use legodb_schema::{parse_schema, Schema};

/// The schema source text.
pub const IMDB_SCHEMA_SRC: &str = "
type IMDB = imdb[ Show{0,*}, Director{0,*}, Actor{0,*} ]
type Show = show[ @type[ String<#8> ],
                  title[ String<#50,#34798> ],
                  year[ Integer<#4,#1800,#2100,#300> ],
                  Aka{0,10},
                  Review{0,*},
                  ( Movie | TV ) ]
type Aka = aka[ String<#40> ]
type Review = review[ ~[ String<#800> ] ]
type Movie = box_office[ Integer<#4,#10000,#100000000,#7000> ],
             video_sales[ Integer<#4,#10000,#100000000,#7000> ]
type TV = seasons[ Integer<#4,#1,#30,#30> ],
          description[ String<#120> ],
          Episode{0,*}
type Episode = episode[ name[ String<#40> ], guest_director[ String<#40> ] ]
type Director = director[ name[ String<#40> ], Directed{0,*} ]
type Directed = directed[ title[ String<#40> ],
                          year[ Integer<#4,#1800,#2100,#300> ],
                          info[ String<#100> ]?,
                          ~[ String<#255> ]? ]
type Actor = actor[ name[ String<#40> ],
                    Played{0,*},
                    biography[ birthday[ String<#10> ], text[ String<#30> ] ]? ]
type Played = played[ title[ String<#40> ],
                      year[ Integer<#4,#1800,#2100,#200> ],
                      character[ String<#40> ],
                      order_of_appearance[ Integer<#4,#1,#300,#300> ],
                      Award{0,5} ]
type Award = award[ result[ String<#3> ], award_name[ String<#40> ] ]
";

/// Parse the IMDB schema.
///
/// # Panics
/// Never: the source is a compile-time constant checked by tests.
pub fn imdb_schema() -> Schema {
    // lint: allow(no-unwrap-in-lib) — compile-time schema constant validated by tests
    parse_schema(IMDB_SCHEMA_SRC).expect("the IMDB schema constant parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use legodb_pschema::{derive_pschema, InlineStyle};

    #[test]
    fn schema_parses_with_all_types() {
        let s = imdb_schema();
        assert_eq!(s.root().as_str(), "IMDB");
        for name in [
            "Show", "Aka", "Review", "Movie", "TV", "Episode", "Director", "Directed", "Actor",
            "Played", "Award",
        ] {
            assert!(s.get_str(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn schema_round_trips_through_the_printer() {
        let s1 = imdb_schema();
        let s2 = parse_schema(&s1.to_string()).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn both_pschema_derivations_succeed() {
        let s = imdb_schema();
        let outlined = derive_pschema(&s, InlineStyle::Outlined);
        let inlined = derive_pschema(&s, InlineStyle::Inlined);
        assert!(outlined.schema().len() > inlined.schema().len());
    }
}
