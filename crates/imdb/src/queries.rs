//! The workload queries: Figure 5's Q1–Q4 (with workloads W1/W2) and
//! Appendix C's Q1–Q20, adapted to the schema's element names (`review`
//! with tagged children instead of the figure's `nyt_reviews` shorthand).

use legodb_core::workload::Workload;
use legodb_xquery::{parse_xquery, XQuery};

/// Appendix C query sources, indexed 1–20.
pub const QUERIES: [(&str, &str); 20] = [
    (
        "Q1", // title, year, type for a show with a given title
        r#"FOR $v IN document("imdbdata")/imdb/show
           WHERE $v/title = c1
           RETURN $v/title, $v/year, $v/type"#,
    ),
    (
        "Q2", // title, year for a show with a given title
        r#"FOR $v IN document("imdbdata")/imdb/show
           WHERE $v/title = c1
           RETURN $v/title, $v/year"#,
    ),
    (
        "Q3", // title, year for all shows in a given year
        r#"FOR $v IN document("imdbdata")/imdb/show
           WHERE $v/year = 1999
           RETURN $v/title, $v/year"#,
    ),
    (
        "Q4", // description, title, year (only TV shows have description)
        r#"FOR $v IN document("imdbdata")/imdb/show
           WHERE $v/title = c1
           RETURN $v/title, $v/year, $v/description"#,
    ),
    (
        "Q5", // box office, title, year (only movies have box_office)
        r#"FOR $v IN document("imdbdata")/imdb/show
           WHERE $v/title = c1
           RETURN $v/title, $v/year, $v/box_office"#,
    ),
    (
        "Q6", // description AND box office
        r#"FOR $v IN document("imdbdata")/imdb/show
           WHERE $v/title = c1
           RETURN $v/title, $v/year, $v/box_office, $v/description"#,
    ),
    (
        "Q7", // shows that have an episode by a given guest director
        r#"FOR $v IN document("imdbdata")/imdb/show
           RETURN $v/title, $v/year,
             FOR $v/episode $e
             WHERE $e/guest_director = c1
             RETURN $e/guest_director"#,
    ),
    (
        "Q8", // birthday for an actor given his name
        r#"FOR $v IN document("imdbdata")/imdb/actor
           WHERE $v/name = c1
           RETURN $v/biography/birthday"#,
    ),
    (
        "Q9", // name, biography text for all actors born on a given date
        r#"FOR $v IN document("imdbdata")/imdb/actor
           RETURN <result>
             $v/name
             FOR $v/biography $b WHERE $b/birthday = c1
             RETURN $b/text
           </result>"#,
    ),
    (
        "Q10", // name, biography text and birthday by birth date
        r#"FOR $v IN document("imdbdata")/imdb/actor
           RETURN <result>
             $v/name
             FOR $v/biography $b WHERE $b/birthday = c1
             RETURN $b/text, $b/birthday
           </result>"#,
    ),
    (
        "Q11", // name + order of appearance for actors playing a character
        r#"FOR $v IN document("imdbdata")/imdb/actor
           RETURN <result>
             $v/name
             FOR $v/played $p WHERE $p/character = c1
             RETURN $p/order_of_appearance
           </result>"#,
    ),
    (
        "Q12", // people who acted and directed in the same movie
        r#"FOR $i IN document("imdbdata")/imdb
               $a IN $i/actor,
               $m1 IN $a/played,
               $d IN $i/director
               $m2 IN $d/directed
           WHERE $a/name = $d/name AND $m1/title = $m2/title
           RETURN <result> $a/name $m1/title $m1/year </result>"#,
    ),
    (
        "Q13", // acted-and-directed + the movie's alternate titles
        r#"FOR $i IN document("imdbdata")/imdb
               $s IN $i/show,
               $a IN $i/actor,
               $m1 IN $a/played,
               $d IN $i/director
               $m2 IN $d/directed
           WHERE $a/name = $d/name AND $m1/title = $m2/title AND $m1/title = $s/title
           RETURN <result>
             $a/name $m1/title $m1/year
             FOR $a2 IN $s/aka RETURN $a2
           </result>"#,
    ),
    (
        "Q14", // directors that directed a given actor
        r#"FOR $i IN document("imdbdata")/imdb
               $a IN $i/actor,
               $m1 IN $a/played,
               $d IN $i/director
               $m2 IN $d/directed
           WHERE $a/name = c1 AND $m1/title = $m2/title
           RETURN <result> $d/name $m1/title $m1/year </result>"#,
    ),
    (
        "Q15", // publish all actors
        r#"FOR $a IN document("imdbdata")/imdb/actor RETURN $a"#,
    ),
    (
        "Q16", // publish all shows
        r#"FOR $s IN document("imdbdata")/imdb/show RETURN $s"#,
    ),
    (
        "Q17", // publish all directors
        r#"FOR $d IN document("imdbdata")/imdb/director RETURN $d"#,
    ),
    (
        "Q18", // all info about a given actor
        r#"FOR $a IN document("imdbdata")/imdb/actor
           WHERE $a/name = c1
           RETURN $a"#,
    ),
    (
        "Q19", // all info about a given show
        r#"FOR $s IN document("imdbdata")/imdb/show
           WHERE $s/title = c1
           RETURN $s"#,
    ),
    (
        "Q20", // all info about a given director
        r#"FOR $d IN document("imdbdata")/imdb/director
           WHERE $d/name = c1
           RETURN $d"#,
    ),
];

/// Parse one Appendix C query by name (`Q1`..`Q20`).
///
/// # Panics
/// On an unknown name; sources are compile-time constants checked by
/// tests.
pub fn query(name: &str) -> XQuery {
    let (_, src) = QUERIES
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown query {name}"));
    // lint: allow(no-unwrap-in-lib) — appendix queries are compile-time constants validated by tests
    parse_xquery(src).expect("appendix queries parse")
}

/// The §5.2 *lookup* workload: Q8, Q9, Q11, Q12, Q13 (equal weights).
pub fn lookup_workload() -> Workload {
    let mut w = Workload::new();
    for name in ["Q8", "Q9", "Q11", "Q12", "Q13"] {
        w.push(name, query(name), 1.0 / 5.0);
    }
    w
}

/// The §5.2 *publish* workload: Q15, Q16, Q17 (equal weights).
pub fn publish_workload() -> Workload {
    let mut w = Workload::new();
    for name in ["Q15", "Q16", "Q17"] {
        w.push(name, query(name), 1.0 / 3.0);
    }
    w
}

/// Figure 5's four queries (§2), adapted to the schema's review tagging:
/// `FQ1` selects year-1999 shows with their NYT reviews, `FQ2` publishes
/// all shows, `FQ3` looks up a description by title, `FQ4` finds episodes
/// by guest director.
pub fn fig5_queries() -> Vec<(&'static str, XQuery)> {
    let sources = [
        (
            "FQ1",
            r#"FOR $v IN document("imdbdata")/imdb/show, $r IN $v/review
               WHERE $v/year = 1999
               RETURN $v/title, $v/year, $r/nyt"#,
        ),
        (
            "FQ2",
            r#"FOR $v IN document("imdbdata")/imdb/show RETURN $v"#,
        ),
        (
            "FQ3",
            r#"FOR $v IN document("imdbdata")/imdb/show
               WHERE $v/title = c2
               RETURN $v/description"#,
        ),
        (
            "FQ4",
            r#"FOR $v IN document("imdbdata")/imdb/show
               RETURN <result>
                 $v/title $v/year
                 FOR $v/episode $e WHERE $e/guest_director = c4 RETURN $e
               </result>"#,
        ),
    ];
    sources
        .into_iter()
        // lint: allow(no-unwrap-in-lib) — figure 5 queries are compile-time constants validated by tests
        .map(|(n, src)| (n, parse_xquery(src).expect("figure 5 queries parse")))
        .collect()
}

/// §2's W1: publishing-heavy — `{FQ1: 0.4, FQ2: 0.4, FQ3: 0.1, FQ4: 0.1}`.
pub fn workload_w1() -> Workload {
    let mut w = Workload::new();
    for ((name, q), weight) in fig5_queries().into_iter().zip([0.4, 0.4, 0.1, 0.1]) {
        w.push(name, q, weight);
    }
    w
}

/// §2's W2: lookup-heavy — `{FQ1: 0.1, FQ2: 0.1, FQ3: 0.4, FQ4: 0.4}`.
pub fn workload_w2() -> Workload {
    let mut w = Workload::new();
    for ((name, q), weight) in fig5_queries().into_iter().zip([0.1, 0.1, 0.4, 0.4]) {
        w.push(name, q, weight);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::imdb_schema;
    use crate::stats::paper_statistics;
    use legodb_pschema::{derive_pschema, rel, InlineStyle};
    use legodb_xquery::translate;

    #[test]
    fn all_twenty_queries_parse() {
        for (name, _) in QUERIES {
            let _ = query(name);
        }
    }

    #[test]
    fn all_queries_translate_against_both_initial_pschemas() {
        let schema = imdb_schema();
        let stats = paper_statistics();
        for style in [InlineStyle::Inlined, InlineStyle::Outlined] {
            let mapping = rel(&derive_pschema(&schema, style), &stats);
            for (name, _) in QUERIES {
                let q = query(name);
                let t = translate(&mapping, &q);
                assert!(t.is_ok(), "{name} failed under {style:?}: {t:?}");
            }
            for (name, q) in fig5_queries() {
                let t = translate(&mapping, &q);
                assert!(t.is_ok(), "{name} failed under {style:?}: {t:?}");
            }
        }
    }

    #[test]
    fn workloads_have_unit_weight() {
        for w in [
            lookup_workload(),
            publish_workload(),
            workload_w1(),
            workload_w2(),
        ] {
            assert!((w.total_weight() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn publish_queries_emit_multiple_statements() {
        let schema = imdb_schema();
        let mapping = rel(
            &derive_pschema(&schema, InlineStyle::Inlined),
            &paper_statistics(),
        );
        let t = translate(&mapping, &query("Q16")).unwrap();
        assert!(t.statements.len() >= 4, "{}", t.to_sql());
    }
}
