//! # legodb-imdb
//!
//! The paper's experimental application (§5.1, Appendices A–C): the
//! Internet Movie Database schema in the type-algebra notation, the full
//! Appendix A statistics, all twenty workload queries, and a synthetic
//! data generator.
//!
//! The real IMDB dataset is proprietary; the generator synthesizes
//! documents whose path statistics match Appendix A (scaled by a factor),
//! which is sufficient because every cost estimate in the paper is driven
//! only by those statistics.

#![forbid(unsafe_code)]

pub mod gen;
pub mod queries;
pub mod schema;
pub mod stats;

pub use gen::{generate_imdb, ScaleConfig};
pub use queries::{
    fig5_queries, lookup_workload, publish_workload, query, workload_w1, workload_w2,
};
pub use schema::imdb_schema;
pub use stats::{paper_statistics, scaled_statistics};
