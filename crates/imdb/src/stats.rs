//! The Appendix A statistics, verbatim (counts, sizes, bases), plus a
//! scaler for smaller experiments.
//!
//! Path conventions: attribute statistics use `@name` steps (the harvester
//! convention), wildcard content uses `TILDE` (the appendix convention).
//! The appendix records review/`TILDE` sizes; review counts appear under
//! `reviews` in the appendix but our schema's element is `review` — paths
//! here follow the schema.

use legodb_xml::stats::Statistics;

/// The Appendix A statistics for the full-size IMDB dataset.
pub fn paper_statistics() -> Statistics {
    scaled_statistics(1.0)
}

/// Appendix A statistics with all counts multiplied by `scale`
/// (sizes, value ranges, and distinct ratios preserved).
pub fn scaled_statistics(scale: f64) -> Statistics {
    let n = |base: u64| -> u64 { ((base as f64 * scale).round() as u64).max(1) };
    let mut s = Statistics::new();
    s.set_count(&["imdb"], 1)
        // shows
        .set_count(&["imdb", "show"], n(34798))
        .set_size(&["imdb", "show", "@type"], 8.0)
        .set_distinct(&["imdb", "show", "@type"], 2)
        .set_count(&["imdb", "show", "title"], n(34798))
        .set_size(&["imdb", "show", "title"], 50.0)
        .set_distinct(&["imdb", "show", "title"], n(34798))
        .set_count(&["imdb", "show", "year"], n(34798))
        .set_base(&["imdb", "show", "year"], 1800, 2100, 300)
        .set_count(&["imdb", "show", "aka"], n(13641))
        .set_size(&["imdb", "show", "aka"], 40.0)
        .set_distinct(&["imdb", "show", "aka"], n(13000))
        .set_count(&["imdb", "show", "review"], n(11250))
        .set_count(&["imdb", "show", "review", "TILDE"], n(11250))
        .set_size(&["imdb", "show", "review", "TILDE"], 800.0)
        // Per-tag share (not in the appendix; matches the generator's
        // default 30% NYT mix) — enables the wildcard experiments.
        .set_count(&["imdb", "show", "review", "nyt"], n(3375))
        .set_size(&["imdb", "show", "review", "nyt"], 800.0)
        .set_count(&["imdb", "show", "box_office"], n(7000))
        .set_base(&["imdb", "show", "box_office"], 10_000, 100_000_000, 7000)
        .set_count(&["imdb", "show", "video_sales"], n(7000))
        .set_base(&["imdb", "show", "video_sales"], 10_000, 100_000_000, 7000)
        .set_count(&["imdb", "show", "seasons"], n(3500))
        .set_base(&["imdb", "show", "seasons"], 1, 30, 30)
        .set_count(&["imdb", "show", "description"], n(3500))
        .set_size(&["imdb", "show", "description"], 120.0)
        .set_count(&["imdb", "show", "episode"], n(31250))
        .set_count(&["imdb", "show", "episode", "name"], n(31250))
        .set_size(&["imdb", "show", "episode", "name"], 40.0)
        .set_count(&["imdb", "show", "episode", "guest_director"], n(31250))
        .set_size(&["imdb", "show", "episode", "guest_director"], 40.0)
        .set_distinct(&["imdb", "show", "episode", "guest_director"], n(5000))
        // directors
        .set_count(&["imdb", "director"], n(26251))
        .set_count(&["imdb", "director", "name"], n(26251))
        .set_size(&["imdb", "director", "name"], 40.0)
        .set_distinct(&["imdb", "director", "name"], n(26251))
        .set_count(&["imdb", "director", "directed"], n(105_004))
        .set_count(&["imdb", "director", "directed", "title"], n(105_004))
        .set_size(&["imdb", "director", "directed", "title"], 40.0)
        .set_distinct(&["imdb", "director", "directed", "title"], n(34798))
        .set_count(&["imdb", "director", "directed", "year"], n(105_004))
        .set_base(&["imdb", "director", "directed", "year"], 1800, 2100, 300)
        .set_count(&["imdb", "director", "directed", "info"], n(50_000))
        .set_size(&["imdb", "director", "directed", "info"], 100.0)
        .set_count(&["imdb", "director", "directed", "TILDE"], n(50_000))
        .set_size(&["imdb", "director", "directed", "TILDE"], 255.0)
        // actors
        .set_count(&["imdb", "actor"], n(165_786))
        .set_count(&["imdb", "actor", "name"], n(165_786))
        .set_size(&["imdb", "actor", "name"], 40.0)
        .set_distinct(&["imdb", "actor", "name"], n(165_786))
        .set_count(&["imdb", "actor", "played"], n(663_144))
        .set_count(&["imdb", "actor", "played", "title"], n(663_144))
        .set_size(&["imdb", "actor", "played", "title"], 40.0)
        .set_distinct(&["imdb", "actor", "played", "title"], n(34798))
        .set_count(&["imdb", "actor", "played", "year"], n(663_144))
        .set_base(&["imdb", "actor", "played", "year"], 1800, 2100, 200)
        .set_count(&["imdb", "actor", "played", "character"], n(663_144))
        .set_size(&["imdb", "actor", "played", "character"], 40.0)
        .set_distinct(&["imdb", "actor", "played", "character"], n(300_000))
        .set_count(
            &["imdb", "actor", "played", "order_of_appearance"],
            n(663_144),
        )
        .set_base(
            &["imdb", "actor", "played", "order_of_appearance"],
            1,
            300,
            300,
        )
        .set_count(&["imdb", "actor", "played", "award"], n(66_000))
        .set_count(&["imdb", "actor", "played", "award", "result"], n(66_000))
        .set_size(&["imdb", "actor", "played", "award", "result"], 3.0)
        .set_count(
            &["imdb", "actor", "played", "award", "award_name"],
            n(66_000),
        )
        .set_size(&["imdb", "actor", "played", "award", "award_name"], 40.0)
        .set_count(&["imdb", "actor", "biography"], n(20_000))
        .set_count(&["imdb", "actor", "biography", "birthday"], n(20_000))
        .set_size(&["imdb", "actor", "biography", "birthday"], 10.0)
        .set_distinct(&["imdb", "actor", "biography", "birthday"], n(18_000))
        .set_count(&["imdb", "actor", "biography", "text"], n(20_000))
        .set_size(&["imdb", "actor", "biography", "text"], 30.0);
    s
}

/// Inject the Table 2 wildcard experiment's review statistics: a total
/// review count and the fraction tagged `nyt` (the rest use other tags).
pub fn with_review_split(
    mut stats: Statistics,
    total_reviews: u64,
    nyt_fraction: f64,
) -> Statistics {
    let nyt = (total_reviews as f64 * nyt_fraction).round() as u64;
    stats
        .set_count(&["imdb", "show", "review"], total_reviews)
        .set_count(&["imdb", "show", "review", "TILDE"], total_reviews)
        .set_count(&["imdb", "show", "review", "nyt"], nyt)
        .set_size(&["imdb", "show", "review", "nyt"], 800.0);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_match_appendix_a() {
        let s = paper_statistics();
        assert_eq!(s.count(&["imdb", "show"]), Some(34798));
        assert_eq!(s.count(&["imdb", "director"]), Some(26251));
        assert_eq!(s.count(&["imdb", "actor"]), Some(165_786));
        assert_eq!(s.count(&["imdb", "actor", "played"]), Some(663_144));
        let year = s.get(&["imdb", "show", "year"]).unwrap();
        assert_eq!(
            (year.min, year.max, year.distinct),
            (Some(1800), Some(2100), Some(300))
        );
    }

    #[test]
    fn scaling_preserves_ratios() {
        let s = scaled_statistics(0.01);
        assert_eq!(s.count(&["imdb", "show"]), Some(348));
        assert_eq!(s.count(&["imdb", "actor", "played"]), Some(6631));
        // Sizes unchanged.
        assert_eq!(s.avg_size(&["imdb", "show", "title"]), Some(50.0));
    }

    #[test]
    fn review_split_partitions_counts() {
        let s = with_review_split(paper_statistics(), 10_000, 0.25);
        assert_eq!(s.count(&["imdb", "show", "review", "nyt"]), Some(2500));
        assert_eq!(s.count(&["imdb", "show", "review", "TILDE"]), Some(10_000));
    }
}
