//! Deterministic fault injection for robustness testing.
//!
//! Instrumented call sites declare a *failpoint*: a site name plus a
//! stable per-item key. Whether a given `(site, key)` fires — and whether
//! it fires as an `Err` or as a panic — is a **pure function** of the
//! active seed, independent of call order, thread interleaving, and
//! repetition. Sequential and parallel executions of the same work
//! therefore inject *identical* faults, which the search equivalence
//! properties rely on.
//!
//! Activation, in precedence order:
//!
//! 1. A programmatic override installed with [`override_for_test`]
//!    (tests; process-global, serialized by an internal mutex).
//! 2. The `LEGODB_FAULT_SEED` environment variable (CI fault pass), with
//!    optional `LEGODB_FAULT_RATE` (default 0.02) and
//!    `LEGODB_FAULT_MODE` (`error` | `panic` | `mixed`, default `mixed`).
//!
//! With neither present, [`failpoint`] is a single relaxed atomic load.

use crate::rng::{Rng, SplitMix64};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// How an activated failpoint manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fire as a recoverable `Err` only.
    Error,
    /// Fire as a panic only.
    Panic,
    /// A deterministic per-key coin picks `Err` or panic.
    Mixed,
}

/// Fault-injection settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the decision function.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given `(site, key)` fires.
    pub rate: f64,
    /// How fired faults manifest.
    pub mode: FaultMode,
}

impl FaultConfig {
    /// A config that fires every failpoint (`rate = 1`).
    pub fn always(seed: u64, mode: FaultMode) -> FaultConfig {
        FaultConfig {
            seed,
            rate: 1.0,
            mode,
        }
    }
}

/// The error returned by a failpoint firing in error mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The instrumented site.
    pub site: String,
    /// The per-item key.
    pub key: String,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {} ({})", self.site, self.key)
    }
}

impl std::error::Error for FaultError {}

/// Fast-path flag: false means "no override and no env activation", so
/// failpoints can return immediately without locking.
static ANY_ACTIVE: AtomicBool = AtomicBool::new(false);
static OVERRIDE: Mutex<Option<FaultConfig>> = Mutex::new(None);
/// Serializes tests that install overrides (held for the guard's life).
static OVERRIDE_OWNER: Mutex<()> = Mutex::new(());

fn env_config() -> Option<FaultConfig> {
    static CONFIG: OnceLock<Option<FaultConfig>> = OnceLock::new();
    *CONFIG.get_or_init(|| {
        let seed: u64 = std::env::var("LEGODB_FAULT_SEED").ok()?.parse().ok()?;
        let rate = std::env::var("LEGODB_FAULT_RATE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.02f64)
            .clamp(0.0, 1.0);
        let mode = match std::env::var("LEGODB_FAULT_MODE").as_deref() {
            Ok("error") => FaultMode::Error,
            Ok("panic") => FaultMode::Panic,
            _ => FaultMode::Mixed,
        };
        Some(FaultConfig { seed, rate, mode })
    })
}

/// True when fault injection was activated via the environment
/// (`LEGODB_FAULT_SEED`). Tests asserting strict quantitative outcomes
/// (exact cost wins, trajectory shapes) may relax themselves under the CI
/// fault pass by consulting this.
pub fn env_enabled() -> bool {
    env_config().is_some()
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The active config, if any. Override wins over environment.
pub fn active() -> Option<FaultConfig> {
    if !ANY_ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    if let Some(over) = *lock(&OVERRIDE) {
        return Some(over);
    }
    env_config()
}

/// RAII guard for a test-installed fault config. Dropping restores the
/// environment-driven behavior. Guards serialize on an internal mutex so
/// concurrent `#[test]`s cannot observe each other's overrides.
pub struct OverrideGuard {
    _owner: MutexGuard<'static, ()>,
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        *lock(&OVERRIDE) = None;
        ANY_ACTIVE.store(env_config().is_some(), Ordering::Relaxed);
    }
}

/// Install `config` as the process-wide fault config until the returned
/// guard drops. Blocks while another override is alive.
pub fn override_for_test(config: FaultConfig) -> OverrideGuard {
    let owner = lock(&OVERRIDE_OWNER);
    *lock(&OVERRIDE) = Some(config);
    ANY_ACTIVE.store(true, Ordering::Relaxed);
    OverrideGuard { _owner: owner }
}

/// One-time initialization of the fast-path flag from the environment.
/// Called lazily by [`failpoint`]; cheap after the first call.
fn ensure_env_flag() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if env_config().is_some() {
            ANY_ACTIVE.store(true, Ordering::Relaxed);
        }
    });
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The pure decision: does `(site, key)` fire under `config`, and how?
fn decide(config: &FaultConfig, site: &str, key: &str) -> Option<FaultMode> {
    let mixed = config
        .seed
        .wrapping_add(fnv1a(site).rotate_left(17))
        .wrapping_add(fnv1a(key).rotate_left(41));
    let mut rng = SplitMix64::new(mixed);
    let draw = rng.next_u64();
    // Top 53 bits → uniform f64 in [0, 1).
    let uniform = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    if uniform >= config.rate {
        return None;
    }
    Some(match config.mode {
        FaultMode::Error => FaultMode::Error,
        FaultMode::Panic => FaultMode::Panic,
        FaultMode::Mixed => {
            if rng.next_u64() & 1 == 1 {
                FaultMode::Panic
            } else {
                FaultMode::Error
            }
        }
    })
}

/// The failpoint: returns `Ok(())` normally; under an active config,
/// deterministically returns `Err(FaultError)` or panics for the
/// configured fraction of `(site, key)` pairs.
pub fn failpoint(site: &str, key: &str) -> Result<(), FaultError> {
    ensure_env_flag();
    let Some(config) = active() else {
        return Ok(());
    };
    match decide(&config, site, key) {
        None => Ok(()),
        Some(FaultMode::Panic) => panic!("injected fault (panic) at {site} ({key})"),
        Some(FaultMode::Error | FaultMode::Mixed) => Err(FaultError {
            site: site.to_string(),
            key: key.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_failpoints_pass() {
        // No override installed here; unless the environment activates
        // injection, every failpoint passes.
        if env_enabled() {
            return;
        }
        for i in 0..100 {
            assert!(failpoint("util.test", &i.to_string()).is_ok());
        }
    }

    #[test]
    fn decisions_are_pure_and_order_independent() {
        let cfg = FaultConfig {
            seed: 7,
            rate: 0.5,
            mode: FaultMode::Mixed,
        };
        let forward: Vec<_> = (0..64).map(|i| decide(&cfg, "s", &i.to_string())).collect();
        let mut backward: Vec<_> = (0..64)
            .rev()
            .map(|i| decide(&cfg, "s", &i.to_string()))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
        // Roughly half fire at rate 0.5.
        let fired = forward.iter().filter(|d| d.is_some()).count();
        assert!((16..=48).contains(&fired), "fired {fired}/64");
    }

    #[test]
    fn rate_one_error_mode_always_errors() {
        let _guard = override_for_test(FaultConfig::always(1, FaultMode::Error));
        for i in 0..16 {
            let err = failpoint("util.rate1", &i.to_string()).unwrap_err();
            assert_eq!(err.site, "util.rate1");
        }
    }

    #[test]
    fn panic_mode_panics_with_site_in_message() {
        let _guard = override_for_test(FaultConfig::always(1, FaultMode::Panic));
        let caught = std::panic::catch_unwind(|| failpoint("util.boom", "k"));
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("util.boom"), "{msg}");
    }

    #[test]
    fn override_guard_restores_prior_behavior() {
        {
            let _guard = override_for_test(FaultConfig::always(1, FaultMode::Error));
            assert!(failpoint("util.guard", "k").is_err());
        }
        assert_eq!(active().is_some(), env_enabled());
    }
}
