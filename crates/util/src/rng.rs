//! Deterministic, seedable pseudo-random number generation with a
//! `rand`-like API.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the standard
//! pairing recommended by the xoshiro authors. Streams are fully
//! determined by the seed and stable across platforms and releases, which
//! the test suite relies on (`generate_imdb` with a fixed seed must
//! produce the same document everywhere).

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny 64-bit generator used to expand seeds into
/// xoshiro256++ state. Usable on its own when stream quality does not
/// matter (it passes BigCrush but has a 64-bit period).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's default generator: xoshiro256++ (named for the role
/// `rand::rngs::StdRng` used to play here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seed the full 256-bit state from one `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = sm.next_u64();
        }
        // The all-zero state is the one fixed point of xoshiro; SplitMix64
        // cannot emit four zero words in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A type that can be drawn uniformly from an interval; implemented for
/// the primitive integers and `f64`.
pub trait SampleUniform: Sized {
    /// One uniform draw from `lo..hi` (exclusive upper bound).
    fn sample_exclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// One uniform draw from `lo..=hi` (inclusive upper bound).
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform sampling of a value from a range; the argument type of
/// [`Rng::gen_range`]. Blanket-implemented for `Range<T>` and
/// `RangeInclusive<T>` over every [`SampleUniform`] type, so the element
/// type is inferred from the range literal exactly as with `rand`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from `self`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// A source of random `u64`s plus the derived sampling API.
///
/// Only [`Rng::next_u64`] is required; everything else has a default
/// implementation. `&mut R` implements `Rng` whenever `R` does, so
/// generators can be passed down call chains freely.
pub trait Rng {
    /// The next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = bounded(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    fn sample<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[bounded(self, slice.len() as u64) as usize])
        }
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An unbiased uniform draw from `[0, n)` by rejection sampling.
fn bounded<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Reject draws from the final partial block so every residue is
    // equally likely; at worst half the range is rejected.
    let threshold = n.wrapping_neg() % n;
    loop {
        let v = rng.next_u64();
        if v >= threshold {
            return v % n;
        }
    }
}

/// One uniform draw from the inclusive interval `[lo, hi]`, computed in
/// `i128` so a single code path serves every primitive integer width.
fn sample_int<R: Rng>(rng: &mut R, lo: i128, hi: i128) -> i128 {
    let span = (hi - lo) as u128;
    if span >= u64::MAX as u128 {
        // The full 64-bit domain: every raw output is a valid draw.
        return lo + rng.next_u64() as i128;
    }
    lo + bounded(rng, span as u64 + 1) as i128
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: Rng>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                sample_int(rng, lo as i128, hi as i128 - 1) as $t
            }
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                sample_int(rng, lo as i128, hi as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        let v = lo + rng.next_f64() * (hi - lo);
        // Rounding can land exactly on the excluded endpoint; pull back.
        if v < hi {
            v
        } else {
            hi.next_down().max(lo)
        }
    }
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "gen_range: empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_is_stable_across_releases() {
        // Pinned expected values: a change here breaks every seeded test
        // in the workspace, so it must be deliberate.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            [
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330,
            ]
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let v = rng.gen_range(0.0..1.5);
            assert!((0.0..1.5).contains(&v));
            let v = rng.gen_range(3usize..4);
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn gen_range_covers_the_whole_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn extreme_integer_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let v = rng.gen_range(i64::MAX - 1..i64::MAX);
        assert_eq!(v, i64::MAX - 1);
        let v = rng.gen_range(u64::MAX..=u64::MAX);
        assert_eq!(v, u64::MAX);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..=3300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn sample_picks_every_element_eventually() {
        let mut rng = StdRng::seed_from_u64(13);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*rng.sample(&items).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(rng.sample::<u8>(&[]).is_none());
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn takes_rng(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = takes_rng(&mut rng);
        assert!(v < 100);
    }
}
