//! Scoped parallel helpers on `std::thread::scope` — the std-only
//! replacement for `crossbeam::thread::scope` in the greedy-search
//! candidate evaluation.

/// Map `f` over `items` on up to `max_threads` scoped threads, returning
/// the results in input order.
///
/// The slice is split into contiguous chunks, one per thread, so results
/// concatenate back into input order with no per-item synchronization.
/// A panic in `f` is propagated to the caller with its original payload.
/// With an empty input, one item, or `max_threads <= 1`, no threads are
/// spawned.
pub fn scoped_map<T, U, F>(items: &[T], max_threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() <= 1 || max_threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let threads = max_threads.min(items.len());
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// A panic payload captured by [`scoped_map_catch`].
pub type CaughtPanic = Box<dyn std::any::Any + Send + 'static>;

/// Describe a caught panic payload (the `&str`/`String` message when the
/// payload carries one, a placeholder otherwise).
pub fn panic_message(payload: &CaughtPanic) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Like [`scoped_map`], but fault-isolated: a panic in `f` is caught
/// *per item* and surfaced as that item's `Err(payload)` instead of
/// tearing down the whole map. Results stay in input order. The
/// single-threaded paths (`items.len() <= 1` or `max_threads <= 1`) get
/// the same per-item isolation, so callers behave identically with and
/// without parallelism.
pub fn scoped_map_catch<T, U, F>(
    items: &[T],
    max_threads: usize,
    f: F,
) -> Vec<Result<U, CaughtPanic>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let run = |item: &T| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
    if items.len() <= 1 || max_threads <= 1 {
        return items.iter().map(run).collect();
    }
    let threads = max_threads.min(items.len());
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| scope.spawn(move || chunk.iter().map(run).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                // `run` catches panics from `f`; a join error can only be
                // a harness-level failure, which we do propagate.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// The machine's available parallelism (1 when it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let out = scoped_map(&items, threads, |&x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(scoped_map(&[] as &[u8], 4, |&x| x), Vec::<u8>::new());
        assert_eq!(scoped_map(&[7], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = scoped_map(&items, 7, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn catch_variant_isolates_panics_per_item() {
        let items: Vec<u32> = (0..64).collect();
        for threads in [1, 4, 16] {
            let out = scoped_map_catch(&items, threads, |&x| {
                if x % 7 == 3 {
                    panic!("poisoned {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), 64, "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                let x = i as u32;
                match r {
                    Ok(v) => {
                        assert_ne!(x % 7, 3);
                        assert_eq!(*v, x * 2);
                    }
                    Err(payload) => {
                        assert_eq!(x % 7, 3);
                        assert_eq!(panic_message(payload), format!("poisoned {x}"));
                    }
                }
            }
        }
    }

    #[test]
    fn catch_variant_handles_empty_and_singleton() {
        assert!(scoped_map_catch(&[] as &[u8], 4, |&x| x).is_empty());
        let out = scoped_map_catch(&[1u8], 4, |_| panic!("lone"));
        assert_eq!(out.len(), 1);
        assert!(out[0].is_err());
    }

    #[test]
    fn worker_panics_propagate_with_their_payload() {
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            scoped_map(&items, 4, |&x| {
                if x == 11 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        let payload = result.expect_err("expected propagation");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "boom at 11");
    }
}
