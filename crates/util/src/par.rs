//! Scoped parallel helpers on `std::thread::scope` — the std-only
//! replacement for `crossbeam::thread::scope` in the greedy-search
//! candidate evaluation.
//!
//! Two scheduling disciplines are offered (see [`Scheduler`]):
//!
//! * **Chunked** ([`scoped_map_catch`]): the input is split into one
//!   contiguous chunk per worker up front. No synchronization after the
//!   split, but skewed per-item costs leave workers idle once their chunk
//!   drains — exactly what incremental candidate costing produces (reused
//!   candidates finish in microseconds while recosted ones dominate).
//! * **Work-stealing** ([`steal_map_catch`]): each worker owns a LIFO
//!   deque seeded with the same contiguous chunk, pops work from its back,
//!   and — chase-lev style — steals the *oldest* item from the front of a
//!   random victim's deque when its own runs dry. Victim selection uses
//!   the in-repo xoshiro256++ generator seeded deterministically per call
//!   and per worker, so a given `(seed, worker)` probes victims in a
//!   reproducible order.
//!
//! Both disciplines preserve input order in the result vector and give
//! per-item `catch_unwind` panic isolation, and neither influences *what*
//! each item computes — so when `f` is pure per item (the fault-injection
//! layer's decisions are pure in `(seed, site, key)` by construction),
//! the result vector is bit-identical across sequential, chunked, and
//! work-stealing execution.

use crate::rng::{Rng, StdRng};
use crate::sync::{Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Map `f` over `items` on up to `max_threads` scoped threads, returning
/// the results in input order.
///
/// The slice is split into contiguous chunks, one per thread, so results
/// concatenate back into input order with no per-item synchronization.
/// A panic in `f` is propagated to the caller with its original payload.
/// With an empty input, one item, or `max_threads <= 1`, no threads are
/// spawned.
pub fn scoped_map<T, U, F>(items: &[T], max_threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() <= 1 || max_threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let threads = max_threads.min(items.len());
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// A panic payload captured by [`scoped_map_catch`].
pub type CaughtPanic = Box<dyn std::any::Any + Send + 'static>;

/// Describe a caught panic payload (the `&str`/`String` message when the
/// payload carries one, a placeholder otherwise).
pub fn panic_message(payload: &CaughtPanic) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Like [`scoped_map`], but fault-isolated: a panic in `f` is caught
/// *per item* and surfaced as that item's `Err(payload)` instead of
/// tearing down the whole map. Results stay in input order. The
/// single-threaded paths (`items.len() <= 1` or `max_threads <= 1`) get
/// the same per-item isolation, so callers behave identically with and
/// without parallelism.
pub fn scoped_map_catch<T, U, F>(
    items: &[T],
    max_threads: usize,
    f: F,
) -> Vec<Result<U, CaughtPanic>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let run = |item: &T| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
    if items.len() <= 1 || max_threads <= 1 {
        return items.iter().map(run).collect();
    }
    let threads = max_threads.min(items.len());
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| scope.spawn(move || chunk.iter().map(run).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                // `run` catches panics from `f`; a join error can only be
                // a harness-level failure, which we do propagate.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// The machine's available parallelism (1 when it cannot be determined).
///
/// `LEGODB_THREADS` overrides the detected count — useful for forcing
/// real thread interleaving on single-core machines (determinism tests)
/// or pinning bench runs to a fixed worker count.
pub fn available_threads() -> usize {
    if let Some(n) = std::env::var("LEGODB_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Which parallel scheduling discipline to run a fault-isolated map under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// One contiguous chunk per worker, fixed at spawn time
    /// ([`scoped_map_catch`]).
    Chunked,
    /// Per-worker LIFO deques with chase-lev-style stealing from random
    /// victims ([`steal_map_catch`]).
    #[default]
    WorkStealing,
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheduler::Chunked => write!(f, "chunked"),
            Scheduler::WorkStealing => write!(f, "work-stealing"),
        }
    }
}

/// Scheduling telemetry from one [`steal_map_catch`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StealReport {
    /// Workers that ran (1 on the sequential path).
    pub workers: usize,
    /// Items executed per worker (sums to the input length).
    pub executed: Vec<u64>,
    /// Items obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Steal probes that found the victim's deque empty.
    pub failed_steals: u64,
    /// Per-worker time spent inside `f`, in nanoseconds.
    pub busy_ns: Vec<u64>,
    /// Wall-clock of the whole call, in nanoseconds.
    pub wall_ns: u64,
}

impl StealReport {
    /// Mean fraction of the call's wall-clock each worker spent executing
    /// items (1.0 = perfectly occupied, no idle spinning or stealing).
    pub fn occupancy(&self) -> f64 {
        if self.workers == 0 || self.wall_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy_ns.iter().sum();
        busy as f64 / (self.workers as f64 * self.wall_ns as f64)
    }

    /// Merge another report into this one (used by the search to
    /// accumulate across iterations). Wall-clocks add; per-worker vectors
    /// add elementwise, growing to the larger worker count.
    pub fn absorb(&mut self, other: &StealReport) {
        self.workers = self.workers.max(other.workers);
        self.steals += other.steals;
        self.failed_steals += other.failed_steals;
        self.wall_ns += other.wall_ns;
        if self.executed.len() < other.executed.len() {
            self.executed.resize(other.executed.len(), 0);
        }
        for (i, n) in other.executed.iter().enumerate() {
            self.executed[i] += n;
        }
        if self.busy_ns.len() < other.busy_ns.len() {
            self.busy_ns.resize(other.busy_ns.len(), 0);
        }
        for (i, n) in other.busy_ns.iter().enumerate() {
            self.busy_ns[i] += n;
        }
    }

    /// Total items executed.
    pub fn items(&self) -> u64 {
        self.executed.iter().sum()
    }
}

/// One worker's private accounting, merged into the [`StealReport`].
struct WorkerLog<U> {
    results: Vec<(usize, Result<U, CaughtPanic>)>,
    executed: u64,
    steals: u64,
    failed_steals: u64,
    busy_ns: u64,
}

/// Like [`scoped_map_catch`], but work-stealing: each of up to
/// `max_threads` workers owns a deque seeded with a contiguous chunk of
/// item indices, pops its own work LIFO (newest first, cache-warm), and
/// steals the oldest item from the front of a random victim's deque when
/// its own is empty. Victim order is drawn from xoshiro256++ seeded by
/// `(seed, worker)`, so scheduling decisions — though racy in real time —
/// are reproducible in distribution, and the *results* are a function of
/// the items alone: input order is preserved and a panic in `f` is caught
/// per item, exactly as in [`scoped_map_catch`].
///
/// Returns the results plus a [`StealReport`] (steal counts, per-worker
/// item counts and busy time, wall-clock) for the bench layer.
pub fn steal_map_catch<T, U, F>(
    items: &[T],
    max_threads: usize,
    seed: u64,
    f: F,
) -> (Vec<Result<U, CaughtPanic>>, StealReport)
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let run = |item: &T| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
    let start = Instant::now();
    if items.len() <= 1 || max_threads <= 1 {
        let mut busy = 0u64;
        let results: Vec<_> = items
            .iter()
            .map(|item| {
                let t0 = Instant::now();
                let r = run(item);
                busy += t0.elapsed().as_nanos() as u64;
                r
            })
            .collect();
        let executed = items.len() as u64;
        let report = StealReport {
            workers: 1,
            executed: vec![executed],
            steals: 0,
            failed_steals: 0,
            busy_ns: vec![busy],
            wall_ns: (start.elapsed().as_nanos() as u64).max(1),
        };
        return (results, report);
    }

    let n = items.len();
    let workers = max_threads.min(n);
    // Seed each deque with the same contiguous chunk the chunked
    // scheduler would pin to that worker, so with zero skew the two
    // disciplines touch items with identical locality.
    let chunk = n.div_ceil(workers);
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            Mutex::new_named((lo..hi.max(lo)).collect(), "par.deque")
        })
        .collect();
    let remaining = AtomicUsize::new(n);

    let logs: Vec<WorkerLog<U>> = std::thread::scope(|scope| {
        let run = &run;
        let deques = &deques;
        let remaining = &remaining;
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (me as u64).wrapping_mul(0x9E37));
                    let mut log = WorkerLog {
                        results: Vec::with_capacity(chunk),
                        executed: 0,
                        steals: 0,
                        failed_steals: 0,
                        busy_ns: 0,
                    };
                    loop {
                        // Own work first: LIFO from the back of my deque.
                        let mine = lock_deque(&deques[me]).pop_back();
                        if let Some(i) = mine {
                            execute(i, items, run, &mut log);
                            remaining.fetch_sub(1, Ordering::Release);
                            continue;
                        }
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        // Steal: probe victims in seeded-random order;
                        // take the *oldest* item (front), the end the
                        // owner is not working.
                        let mut stolen = None;
                        for _ in 0..workers {
                            let v = rng.gen_range(0..workers);
                            if v == me {
                                continue;
                            }
                            match lock_deque(&deques[v]).pop_front() {
                                Some(i) => {
                                    stolen = Some(i);
                                    break;
                                }
                                None => log.failed_steals += 1,
                            }
                        }
                        match stolen {
                            Some(i) => {
                                log.steals += 1;
                                execute(i, items, run, &mut log);
                                remaining.fetch_sub(1, Ordering::Release);
                            }
                            // Everything is in flight on other workers;
                            // spin politely until `remaining` drains.
                            None => std::thread::yield_now(),
                        }
                    }
                    log
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(log) => log,
                // `run` catches panics from `f`; a join error can only be
                // a harness-level failure, which we do propagate.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<Result<U, CaughtPanic>>> = (0..n).map(|_| None).collect();
    let mut report = StealReport {
        workers,
        executed: Vec::with_capacity(workers),
        steals: 0,
        failed_steals: 0,
        busy_ns: Vec::with_capacity(workers),
        wall_ns: (start.elapsed().as_nanos() as u64).max(1),
    };
    for log in logs {
        report.executed.push(log.executed);
        report.busy_ns.push(log.busy_ns);
        report.steals += log.steals;
        report.failed_steals += log.failed_steals;
        for (i, r) in log.results {
            debug_assert!(slots[i].is_none(), "item {i} executed twice");
            slots[i] = Some(r);
        }
    }
    let results = slots
        .into_iter()
        .map(|s| match s {
            Some(r) => r,
            // Unreachable: every index 0..n is pushed to exactly one deque
            // and executed by exactly one worker before `remaining` hits 0.
            None => panic!("work-stealing scheduler lost an item"),
        })
        .collect();
    (results, report)
}

fn execute<T, U>(
    i: usize,
    items: &[T],
    run: &impl Fn(&T) -> Result<U, CaughtPanic>,
    log: &mut WorkerLog<U>,
) {
    let t0 = Instant::now();
    let r = run(&items[i]);
    log.busy_ns += t0.elapsed().as_nanos() as u64;
    log.executed += 1;
    log.results.push((i, r));
}

fn lock_deque(m: &Mutex<VecDeque<usize>>) -> MutexGuard<'_, VecDeque<usize>> {
    // A worker panicking while holding the deque lock is impossible (the
    // guarded section only pops an index), but `f` panics on *other*
    // threads can poison mutexes observed later; `sync::Mutex` shrugs
    // that off, and its lock-order tracking covers the steal path too.
    m.lock()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let out = scoped_map(&items, threads, |&x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(scoped_map(&[] as &[u8], 4, |&x| x), Vec::<u8>::new());
        assert_eq!(scoped_map(&[7], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = scoped_map(&items, 7, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn catch_variant_isolates_panics_per_item() {
        let items: Vec<u32> = (0..64).collect();
        for threads in [1, 4, 16] {
            let out = scoped_map_catch(&items, threads, |&x| {
                if x % 7 == 3 {
                    panic!("poisoned {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), 64, "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                let x = i as u32;
                match r {
                    Ok(v) => {
                        assert_ne!(x % 7, 3);
                        assert_eq!(*v, x * 2);
                    }
                    Err(payload) => {
                        assert_eq!(x % 7, 3);
                        assert_eq!(panic_message(payload), format!("poisoned {x}"));
                    }
                }
            }
        }
    }

    #[test]
    fn catch_variant_handles_empty_and_singleton() {
        assert!(scoped_map_catch(&[] as &[u8], 4, |&x| x).is_empty());
        let out = scoped_map_catch(&[1u8], 4, |_| panic!("lone"));
        assert_eq!(out.len(), 1);
        assert!(out[0].is_err());
    }

    #[test]
    fn steal_results_preserve_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let (out, report) = steal_map_catch(&items, threads, 42, |&x| x * 2);
            let values: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(
                values,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "threads={threads}"
            );
            assert_eq!(report.items(), 257, "threads={threads}");
            assert_eq!(report.workers, threads.clamp(1, 257));
        }
    }

    #[test]
    fn steal_handles_empty_singleton_and_zero_workers() {
        let (out, report) = steal_map_catch(&[] as &[u8], 4, 0, |&x| x);
        assert!(out.is_empty());
        assert_eq!(report.workers, 1);
        assert_eq!(report.items(), 0);
        let (out, report) = steal_map_catch(&[7u8], 4, 0, |&x| x + 1);
        assert_eq!(out.len(), 1);
        assert_eq!(*out[0].as_ref().unwrap(), 8);
        assert_eq!(report.items(), 1);
        // Zero threads degrades to the sequential path, never to zero
        // workers.
        let (out, report) = steal_map_catch(&[1u8, 2, 3], 0, 0, |&x| x);
        assert_eq!(out.len(), 3);
        assert_eq!(report.workers, 1);
        assert_eq!(report.steals, 0);
    }

    #[test]
    fn steal_visits_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..500).collect();
        let (out, report) = steal_map_catch(&items, 7, 9, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
        assert_eq!(report.items(), 500);
        assert_eq!(report.executed.iter().sum::<u64>(), 500);
    }

    #[test]
    fn skewed_workloads_get_rebalanced_by_stealing() {
        // The first chunk holds all the slow items: under chunked
        // scheduling one worker does ~all the work; stealing must spread
        // it. 4 workers, 64 items, items 0..16 are 100x slower.
        let items: Vec<u64> = (0..64).collect();
        let (out, report) = steal_map_catch(&items, 4, 1, |&x| {
            let spins = if x < 16 { 200_000 } else { 2_000 };
            // A data-dependent spin so the optimizer cannot elide it.
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out.len(), 64);
        // On a single core the 4 workers timeslice and a whole deque can
        // drain before its thief ever runs, so rebalancing is not
        // guaranteed — the same reason ci.sh skips its work-stealing
        // speedup gate there.
        let multicore = std::thread::available_parallelism().is_ok_and(|n| n.get() >= 2);
        if report.workers == 4 && multicore {
            // Every worker must end up executing something: the three
            // whose chunks drain quickly steal from the loaded one.
            assert!(
                report.executed.iter().all(|&n| n > 0),
                "executed: {:?}",
                report.executed
            );
            assert!(report.steals > 0, "{report:?}");
        }
    }

    #[test]
    fn steal_isolates_panics_per_item_including_stolen_ones() {
        let items: Vec<u32> = (0..128).collect();
        for threads in [1, 4, 16] {
            let (out, _) = steal_map_catch(&items, threads, 5, |&x| {
                if x % 5 == 2 {
                    panic!("poisoned {x}");
                }
                x * 3
            });
            assert_eq!(out.len(), 128, "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                let x = i as u32;
                match r {
                    Ok(v) => {
                        assert_ne!(x % 5, 2);
                        assert_eq!(*v, x * 3);
                    }
                    Err(payload) => {
                        assert_eq!(x % 5, 2);
                        assert_eq!(panic_message(payload), format!("poisoned {x}"));
                    }
                }
            }
        }
    }

    #[test]
    fn steal_matches_sequential_and_chunked_bit_for_bit() {
        // The permutation-invariance contract: execution order must not
        // leak into results. `f` is pure per item, so all three
        // disciplines must produce identical vectors.
        let items: Vec<u64> = (0..300).collect();
        let sequential: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xabc).collect();
        for threads in [2, 5, 8] {
            for seed in [0, 1, 99] {
                let (out, _) =
                    steal_map_catch(&items, threads, seed, |&x| x.wrapping_mul(x) ^ 0xabc);
                let values: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
                assert_eq!(values, sequential, "threads={threads} seed={seed}");
                let chunked = scoped_map_catch(&items, threads, |&x| x.wrapping_mul(x) ^ 0xabc);
                let chunked: Vec<u64> = chunked.into_iter().map(|r| r.unwrap()).collect();
                assert_eq!(chunked, sequential, "threads={threads}");
            }
        }
    }

    #[test]
    fn steal_report_occupancy_and_absorb() {
        let items: Vec<u64> = (0..32).collect();
        let (_, a) = steal_map_catch(&items, 4, 3, |&x| x);
        let occupancy = a.occupancy();
        assert!((0.0..=1.0).contains(&occupancy), "{occupancy}");
        let mut merged = StealReport::default();
        merged.absorb(&a);
        merged.absorb(&a);
        assert_eq!(merged.items(), 2 * a.items());
        assert_eq!(merged.steals, 2 * a.steals);
        assert_eq!(merged.wall_ns, 2 * a.wall_ns);
        assert_eq!(merged.workers, a.workers);
    }

    #[test]
    fn scheduler_names_render() {
        assert_eq!(Scheduler::Chunked.to_string(), "chunked");
        assert_eq!(Scheduler::WorkStealing.to_string(), "work-stealing");
        assert_eq!(Scheduler::default(), Scheduler::WorkStealing);
    }

    #[test]
    fn worker_panics_propagate_with_their_payload() {
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            scoped_map(&items, 4, |&x| {
                if x == 11 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        let payload = result.expect_err("expected propagation");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "boom at 11");
    }
}
