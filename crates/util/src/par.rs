//! Scoped parallel helpers on `std::thread::scope` — the std-only
//! replacement for `crossbeam::thread::scope` in the greedy-search
//! candidate evaluation.

/// Map `f` over `items` on up to `max_threads` scoped threads, returning
/// the results in input order.
///
/// The slice is split into contiguous chunks, one per thread, so results
/// concatenate back into input order with no per-item synchronization.
/// A panic in `f` is propagated to the caller with its original payload.
/// With an empty input, one item, or `max_threads <= 1`, no threads are
/// spawned.
pub fn scoped_map<T, U, F>(items: &[T], max_threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() <= 1 || max_threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let threads = max_threads.min(items.len());
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// The machine's available parallelism (1 when it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let out = scoped_map(&items, threads, |&x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(scoped_map(&[] as &[u8], 4, |&x| x), Vec::<u8>::new());
        assert_eq!(scoped_map(&[7], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = scoped_map(&items, 7, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn worker_panics_propagate_with_their_payload() {
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            scoped_map(&items, 4, |&x| {
                if x == 11 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        let payload = result.expect_err("expected propagation");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "boom at 11");
    }
}
