//! Runtime lock-order sanitizer: the dynamic half of the two-tier
//! concurrency analyzer (DESIGN.md §17).
//!
//! Every acquisition of a [`crate::sync::RwLock`] / [`crate::sync::Mutex`]
//! (and therefore every [`crate::sync::Striped`] stripe) reports here
//! before it blocks. Each thread keeps a stack of the locks it currently
//! holds; acquiring `B` while holding `A` records the directed edge
//! `A → B` in a process-global acquisition-order graph, together with a
//! *witness*: the acquiring thread's held-lock stack at that moment. If a
//! new edge closes a cycle (`B` can already reach `A`), the acquisition
//! panics immediately — **before** blocking on the inner lock — with both
//! witness stacks, so a latent deadlock becomes a loud test failure
//! instead of a hung CI job.
//!
//! The tracker is identity-precise: every lock instance gets a unique id
//! from a process-wide counter (ids are never reused), so two tables'
//! `rows` locks are distinct nodes and re-acquiring the *same* lock is
//! recognized as self-deadlock rather than an order edge. Uncontended,
//! un-nested acquisitions never touch the global graph — they cost two
//! thread-local `Vec` operations.
//!
//! Gating: compiled to a no-op unless `debug_assertions` are on (the
//! `fault`, `recovery`, and `hardened` CI passes all build with them, so
//! those seeded property runs double as deadlock detectors). Within a
//! debug build, `LEGODB_LOCK_ORDER=0` (or `off`) disables it at runtime;
//! any other value — or no value — leaves it on.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// How a lock is being taken. Shared re-acquisition of the same lock on
/// one thread is legal (std `RwLock` reads don't self-deadlock on any
/// platform we run); anything involving an exclusive side does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `RwLock::read`.
    Shared,
    /// `RwLock::write` / `Mutex::lock`.
    Exclusive,
}

impl Mode {
    fn verb(self) -> &'static str {
        match self {
            Mode::Shared => "read",
            Mode::Exclusive => "write",
        }
    }
}

/// One lock a thread currently holds.
#[derive(Debug, Clone, Copy)]
struct Held {
    id: u64,
    name: &'static str,
    mode: Mode,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// Monotonic lock-id source; id 0 is reserved for "untracked".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// New-edge counter, for tests proving the wiring executes.
static EDGES: AtomicU64 = AtomicU64::new(0);

struct Edge {
    to_name: &'static str,
    witness: String,
}

#[derive(Default)]
struct Graph {
    /// `from-id → (to-id → first witness)`; edges are only ever added.
    edges: BTreeMap<u64, BTreeMap<u64, Edge>>,
    names: BTreeMap<u64, &'static str>,
}

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(Graph::default()))
}

/// Allocate a unique id for a new lock instance.
pub fn next_lock_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Is the tracker observing acquisitions in this process?
pub fn is_active() -> bool {
    if !cfg!(debug_assertions) {
        return false;
    }
    static ACTIVE: OnceLock<bool> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        !matches!(
            std::env::var("LEGODB_LOCK_ORDER").as_deref(),
            Ok("0") | Ok("off")
        )
    })
}

/// Distinct acquisition-order edges recorded so far (0 when inactive).
pub fn edges_recorded() -> u64 {
    EDGES.load(Ordering::Relaxed)
}

/// RAII token for one tracked acquisition: dropping it pops the lock
/// from the owning thread's held stack.
#[derive(Debug)]
pub struct HeldLock {
    id: u64,
}

impl Drop for HeldLock {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Pop the most recent entry for this id: guards usually drop
            // LIFO, and with shared re-acquisition any entry of the id is
            // equivalent.
            if let Some(pos) = held.iter().rposition(|h| h.id == self.id) {
                held.remove(pos);
            }
        });
    }
}

/// Report an acquisition *about to block* on lock `id`. Checks the
/// acquisition-order graph first, so an actual deadlock panics (with both
/// witness stacks) instead of hanging. Returns the pop-on-drop token.
pub fn enter(id: u64, name: &'static str, mode: Mode) -> HeldLock {
    if !is_active() {
        return HeldLock { id: 0 };
    }
    let stack = HELD.with(|held| held.borrow().clone());
    if let Some(prior) = stack.iter().find(|h| h.id == id) {
        if mode == Mode::Exclusive || prior.mode == Mode::Exclusive {
            panic!(
                "lock-order: self-deadlock — thread already holds \
                 `{name}` (#{id}, {}) and is re-acquiring it for {}\n\
                 held stack: {}",
                prior.mode.verb(),
                mode.verb(),
                render(&stack),
            );
        }
    } else if let Some(top) = stack.last() {
        record_edge(top, id, name, mode, &stack);
    }
    HELD.with(|held| held.borrow_mut().push(Held { id, name, mode }));
    HeldLock { id }
}

fn render(stack: &[Held]) -> String {
    if stack.is_empty() {
        return "(none)".to_string();
    }
    stack
        .iter()
        .map(|h| format!("`{}` (#{}, {})", h.name, h.id, h.mode.verb()))
        .collect::<Vec<_>>()
        .join(" -> ")
}

fn record_edge(top: &Held, id: u64, name: &'static str, mode: Mode, stack: &[Held]) {
    let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
    g.names.insert(top.id, top.name);
    g.names.insert(id, name);
    if g.edges.get(&top.id).is_some_and(|m| m.contains_key(&id)) {
        return; // edge already known — it was cycle-checked when first seen
    }
    // Would `top.id → id` close a cycle? Walk the existing graph from
    // `id` looking for a path back to `top.id`.
    if let Some(path) = find_path(&g, id, top.id) {
        let mut lines = vec![format!(
            "lock-order: cycle detected — acquiring `{name}` (#{id}, {}) \
             while holding {}",
            mode.verb(),
            render(stack),
        )];
        lines.push(format!(
            "  this thread wants the edge `{}` (#{}) -> `{name}` (#{id})",
            top.name, top.id
        ));
        lines.push("  but the reverse order was already witnessed:".to_string());
        for (from, to) in path.windows(2).map(|w| (w[0], w[1])) {
            let edge = &g.edges[&from][&to];
            lines.push(format!(
                "    `{}` (#{from}) -> `{}` (#{to}): first seen with held stack {}",
                g.names.get(&from).copied().unwrap_or("?"),
                edge.to_name,
                edge.witness,
            ));
        }
        panic!("{}", lines.join("\n"));
    }
    g.edges.entry(top.id).or_default().insert(
        id,
        Edge {
            to_name: name,
            witness: render(stack),
        },
    );
    EDGES.fetch_add(1, Ordering::Relaxed);
}

/// A path `from → … → to` through the recorded edges, if one exists
/// (breadth-first, deterministic order).
fn find_path(g: &Graph, from: u64, to: u64) -> Option<Vec<u64>> {
    let mut prev: BTreeMap<u64, u64> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![to];
            let mut at = to;
            while at != from {
                at = prev[&at];
                path.push(at);
            }
            path.reverse();
            return Some(path);
        }
        if let Some(nexts) = g.edges.get(&node) {
            for &next in nexts.keys() {
                if next != from && !prev.contains_key(&next) {
                    prev.insert(next, node);
                    queue.push_back(next);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_lock_id();
        let b = next_lock_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn inactive_tokens_are_inert() {
        // An id-0 token must never touch the thread-local stack.
        let t = HeldLock { id: 0 };
        drop(t);
    }
}
