//! A poison-tolerant reader–writer lock with the `parking_lot` calling
//! convention (`read()`/`write()` return guards directly).
//!
//! The storage engine takes table locks around operations that never
//! intentionally panic; if one does, the data is a plain `Vec`/`BTreeMap`
//! left in a consistent state by Rust's unwinding rules, so propagating
//! std's poison flag would only turn one test failure into a cascade.
//! Lock acquisition therefore shrugs off poison and returns the guard.

use std::sync::{PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A thin wrapper over [`std::sync::RwLock`] that ignores poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn concurrent_readers_coexist() {
        let lock = RwLock::new(7);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn survives_a_poisoning_panic() {
        let lock = RwLock::new(vec![1, 2, 3]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock.write();
            panic!("poison");
        }));
        assert!(result.is_err());
        // A std RwLock would now refuse access; ours recovers the data.
        assert_eq!(*lock.read(), vec![1, 2, 3]);
        *lock.write() = vec![4];
        assert_eq!(lock.into_inner(), vec![4]);
    }
}
