//! Poison-tolerant locks with the `parking_lot` calling convention
//! (`read()`/`write()`/`lock()` return guards directly), instrumented for
//! the runtime lock-order sanitizer in [`crate::lockcheck`].
//!
//! The storage engine takes table locks around operations that never
//! intentionally panic; if one does, the data is a plain `Vec`/`BTreeMap`
//! left in a consistent state by Rust's unwinding rules, so propagating
//! std's poison flag would only turn one test failure into a cascade.
//! Lock acquisition therefore shrugs off poison and returns the guard.
//!
//! Every lock instance carries a unique id and a static name (pass one
//! via [`RwLock::new_named`] / [`Mutex::new_named`] so sanitizer reports
//! read `table.rows -> table.indexes` instead of opaque ids). Under
//! `debug_assertions` each acquisition reports to the lock-order tracker
//! *before* blocking, so an inverted acquisition order panics with both
//! witness stacks instead of deadlocking (see DESIGN.md §17).

use crate::lockcheck::{self, HeldLock, Mode};
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A thin wrapper over [`std::sync::RwLock`] that ignores poisoning and
/// feeds the lock-order sanitizer.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    id: u64,
    name: &'static str,
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    // Field order is drop order: release the inner lock, then pop the
    // sanitizer's held-stack entry.
    inner: std::sync::RwLockReadGuard<'a, T>,
    _held: HeldLock,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    _held: HeldLock,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> RwLock<T> {
    /// A new unlocked lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock::new_named(value, "RwLock")
    }

    /// A new unlocked lock with a static name for sanitizer reports.
    pub fn new_named(value: T, name: &'static str) -> RwLock<T> {
        RwLock {
            id: lockcheck::next_lock_id(),
            name,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let held = lockcheck::enter(self.id, self.name, Mode::Shared);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            _held: held,
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let held = lockcheck::enter(self.id, self.name, Mode::Exclusive);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            _held: held,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A poison-tolerant, sanitizer-tracked mutex with a direct-guard API —
/// the mutual-exclusion counterpart of [`RwLock`] (the work-stealing
/// scheduler's deques use it).
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    id: u64,
    name: &'static str,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
    _held: HeldLock,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex::new_named(value, "Mutex")
    }

    /// A new unlocked mutex with a static name for sanitizer reports.
    pub fn new_named(value: T, name: &'static str) -> Mutex<T> {
        Mutex {
            id: lockcheck::next_lock_id(),
            name,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let held = lockcheck::enter(self.id, self.name, Mode::Exclusive);
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            _held: held,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A lock-striped view: `N` independent [`RwLock`]s over shards of `T`,
/// indexed by a caller-supplied hash. Readers and writers touching
/// different stripes never contend — the sharing discipline the search's
/// cost memo uses so parallel candidate evaluators stop serializing on
/// one cache lock.
///
/// Stripe selection must be a *stable* function of the key (use
/// [`crate::hash::StableHasher`]), so the same key always lands in the
/// same stripe regardless of thread interleaving; the shards themselves
/// can then stay deterministic collections (`BTreeMap`). Each stripe is
/// its own tracked lock instance, so the sanitizer sees cross-stripe
/// nesting precisely.
#[derive(Debug)]
pub struct Striped<T> {
    stripes: Vec<RwLock<T>>,
}

impl<T: Default> Striped<T> {
    /// `stripes` default-initialized shards (clamped to at least 1).
    pub fn new(stripes: usize) -> Striped<T> {
        Striped::with(stripes, T::default)
    }
}

impl<T> Striped<T> {
    /// `stripes` shards built by `init` (clamped to at least 1).
    pub fn with(stripes: usize, init: impl Fn() -> T) -> Striped<T> {
        Striped {
            stripes: (0..stripes.max(1))
                .map(|_| RwLock::new_named(init(), "stripe"))
                .collect(),
        }
    }

    /// The stripe a hash maps to.
    pub fn stripe(&self, hash: u64) -> &RwLock<T> {
        &self.stripes[(hash % self.stripes.len() as u64) as usize]
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Always false: a `Striped` has at least one stripe.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over every stripe (e.g. to aggregate sizes).
    pub fn iter(&self) -> impl Iterator<Item = &RwLock<T>> {
        self.stripes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn concurrent_readers_coexist() {
        let lock = RwLock::new(7);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn mutex_round_trip_and_default() {
        let m = Mutex::new(vec![1u8]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
        let d: Mutex<u32> = Mutex::default();
        *d.lock() += 5;
        assert_eq!(d.into_inner(), 5);
        let mut g = Mutex::new(3u8);
        *g.get_mut() = 4;
        assert_eq!(g.into_inner(), 4);
    }

    #[test]
    fn default_rwlock_holds_default_value() {
        let lock: RwLock<Vec<u8>> = RwLock::default();
        assert!(lock.read().is_empty());
        let mut lock = RwLock::new(1u8);
        *lock.get_mut() = 9;
        assert_eq!(*lock.read(), 9);
    }

    #[test]
    fn striped_routes_hashes_to_stable_stripes() {
        let striped: Striped<Vec<u64>> = Striped::new(8);
        assert_eq!(striped.len(), 8);
        for h in 0..64u64 {
            striped.stripe(h).write().push(h);
        }
        // Same hash, same stripe — and every value landed somewhere.
        for h in 0..64u64 {
            assert!(striped.stripe(h).read().contains(&h));
        }
        let total: usize = striped.iter().map(|s| s.read().len()).sum();
        assert_eq!(total, 64);
        // With 8 stripes and hashes 0..64, the modulo spread uses all 8.
        assert!(striped.iter().all(|s| !s.read().is_empty()));
    }

    #[test]
    fn striped_clamps_to_one_stripe() {
        let striped: Striped<u32> = Striped::new(0);
        assert_eq!(striped.len(), 1);
        assert!(!striped.is_empty());
        *striped.stripe(u64::MAX).write() = 7;
        assert_eq!(*striped.stripe(0).read(), 7);
    }

    #[test]
    fn survives_a_poisoning_panic() {
        let lock = RwLock::new(vec![1, 2, 3]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock.write();
            panic!("poison");
        }));
        assert!(result.is_err());
        // A std RwLock would now refuse access; ours recovers the data.
        assert_eq!(*lock.read(), vec![1, 2, 3]);
        *lock.write() = vec![4];
        assert_eq!(lock.into_inner(), vec![4]);
    }
}
