//! A poison-tolerant reader–writer lock with the `parking_lot` calling
//! convention (`read()`/`write()` return guards directly).
//!
//! The storage engine takes table locks around operations that never
//! intentionally panic; if one does, the data is a plain `Vec`/`BTreeMap`
//! left in a consistent state by Rust's unwinding rules, so propagating
//! std's poison flag would only turn one test failure into a cascade.
//! Lock acquisition therefore shrugs off poison and returns the guard.

use std::sync::{PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A thin wrapper over [`std::sync::RwLock`] that ignores poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A lock-striped view: `N` independent [`RwLock`]s over shards of `T`,
/// indexed by a caller-supplied hash. Readers and writers touching
/// different stripes never contend — the sharing discipline the search's
/// cost memo uses so parallel candidate evaluators stop serializing on
/// one cache lock.
///
/// Stripe selection must be a *stable* function of the key (use
/// [`crate::hash::StableHasher`]), so the same key always lands in the
/// same stripe regardless of thread interleaving; the shards themselves
/// can then stay deterministic collections (`BTreeMap`).
#[derive(Debug)]
pub struct Striped<T> {
    stripes: Vec<RwLock<T>>,
}

impl<T: Default> Striped<T> {
    /// `stripes` default-initialized shards (clamped to at least 1).
    pub fn new(stripes: usize) -> Striped<T> {
        Striped::with(stripes, T::default)
    }
}

impl<T> Striped<T> {
    /// `stripes` shards built by `init` (clamped to at least 1).
    pub fn with(stripes: usize, init: impl Fn() -> T) -> Striped<T> {
        Striped {
            stripes: (0..stripes.max(1)).map(|_| RwLock::new(init())).collect(),
        }
    }

    /// The stripe a hash maps to.
    pub fn stripe(&self, hash: u64) -> &RwLock<T> {
        &self.stripes[(hash % self.stripes.len() as u64) as usize]
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Always false: a `Striped` has at least one stripe.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over every stripe (e.g. to aggregate sizes).
    pub fn iter(&self) -> impl Iterator<Item = &RwLock<T>> {
        self.stripes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn concurrent_readers_coexist() {
        let lock = RwLock::new(7);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn striped_routes_hashes_to_stable_stripes() {
        let striped: Striped<Vec<u64>> = Striped::new(8);
        assert_eq!(striped.len(), 8);
        for h in 0..64u64 {
            striped.stripe(h).write().push(h);
        }
        // Same hash, same stripe — and every value landed somewhere.
        for h in 0..64u64 {
            assert!(striped.stripe(h).read().contains(&h));
        }
        let total: usize = striped.iter().map(|s| s.read().len()).sum();
        assert_eq!(total, 64);
        // With 8 stripes and hashes 0..64, the modulo spread uses all 8.
        assert!(striped.iter().all(|s| !s.read().is_empty()));
    }

    #[test]
    fn striped_clamps_to_one_stripe() {
        let striped: Striped<u32> = Striped::new(0);
        assert_eq!(striped.len(), 1);
        assert!(!striped.is_empty());
        *striped.stripe(u64::MAX).write() = 7;
        assert_eq!(*striped.stripe(0).read(), 7);
    }

    #[test]
    fn survives_a_poisoning_panic() {
        let lock = RwLock::new(vec![1, 2, 3]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock.write();
            panic!("poison");
        }));
        assert!(result.is_err());
        // A std RwLock would now refuse access; ours recovers the data.
        assert_eq!(*lock.read(), vec![1, 2, 3]);
        *lock.write() = vec![4];
        assert_eq!(lock.into_inner(), vec![4]);
    }
}
