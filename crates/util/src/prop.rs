//! A minimal property-testing harness: the std-only replacement for
//! `proptest` in this workspace.
//!
//! [`prop_check!`] declares a `#[test]` that draws each argument from an
//! integer range, runs the body for a configurable number of cases, and
//! on failure *shrinks* the inputs — first by halving each argument's
//! offset from its range start, then by decrementing — before reporting
//! the minimal failing input together with the seed needed to replay it.
//!
//! ```
//! use legodb_util::{prop_check, prop_assert};
//!
//! prop_check! {
//!     cases = 64,
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert!(a + b == b + a, "{a} + {b}");
//!     }
//! }
//! ```
//!
//! Environment overrides: `LEGODB_PROP_CASES` (case count) and
//! `LEGODB_PROP_SEED` (stream seed, for replaying a reported failure).

use crate::rng::{Rng, StdRng};
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of one property-case execution. Returned by the body closure
/// that [`prop_check!`] wraps around the test block; the `prop_assert*`
/// macros construct the non-`Pass` variants via early `return`.
#[derive(Debug)]
pub enum CaseResult {
    /// The property held for this input.
    Pass,
    /// The input was rejected by `prop_assume!`; draw another.
    Discard,
    /// The property failed, with an explanation.
    Fail(String),
}

/// Harness configuration, normally built by [`PropConfig::from_env`].
#[derive(Debug, Clone)]
pub struct PropConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Seed of the case-generation stream.
    pub seed: u64,
    /// Upper bound on shrink-candidate evaluations after a failure.
    pub max_shrink_iters: u32,
}

impl PropConfig {
    /// `default_cases` cases, overridable via `LEGODB_PROP_CASES` and
    /// `LEGODB_PROP_SEED`.
    pub fn from_env(default_cases: u32) -> PropConfig {
        fn parse<T: std::str::FromStr>(var: &str) -> Option<T> {
            std::env::var(var).ok().and_then(|v| v.parse().ok())
        }
        PropConfig {
            cases: parse("LEGODB_PROP_CASES").unwrap_or(default_cases),
            seed: parse("LEGODB_PROP_SEED").unwrap_or(0x001E_60DB),
            max_shrink_iters: 1024,
        }
    }
}

/// A failed property after shrinking: the offsets reconstruct the minimal
/// failing input via [`PropRange::value_at`].
#[derive(Debug)]
pub struct Failure {
    /// Per-argument offsets of the minimal failing input.
    pub offsets: Vec<u64>,
    /// The failure message (assertion text or panic payload).
    pub message: String,
    /// How many cases passed before this one.
    pub case: u32,
    /// The stream seed, for replay.
    pub seed: u64,
    /// Shrink candidates evaluated.
    pub shrink_steps: u32,
}

/// An argument source for [`prop_check!`]: draws values as `u64` offsets
/// from the range start so the shrinker can operate uniformly.
pub trait PropRange {
    /// The value type produced.
    type Value: std::fmt::Debug + Copy;
    /// Draw a uniform offset in `[0, span]`.
    fn draw_offset(&self, rng: &mut StdRng) -> u64;
    /// Reconstruct a value from an offset (clamped to the range).
    fn value_at(&self, offset: u64) -> Self::Value;
}

macro_rules! impl_prop_range {
    ($($t:ty),* $(,)?) => {$(
        impl PropRange for Range<$t> {
            type Value = $t;
            fn draw_offset(&self, rng: &mut StdRng) -> u64 {
                assert!(self.start < self.end, "prop_check: empty range");
                rng.gen_range(0..=(self.end as i128 - 1 - self.start as i128) as u64)
            }
            fn value_at(&self, offset: u64) -> $t {
                let span = (self.end as i128 - 1 - self.start as i128) as u64;
                (self.start as i128 + offset.min(span) as i128) as $t
            }
        }
        impl PropRange for RangeInclusive<$t> {
            type Value = $t;
            fn draw_offset(&self, rng: &mut StdRng) -> u64 {
                assert!(self.start() <= self.end(), "prop_check: empty range");
                rng.gen_range(0..=(*self.end() as i128 - *self.start() as i128) as u64)
            }
            fn value_at(&self, offset: u64) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                (*self.start() as i128 + offset.min(span) as i128) as $t
            }
        }
    )*};
}

impl_prop_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

fn protected(eval: impl Fn(&[u64]) -> CaseResult, offsets: &[u64]) -> CaseResult {
    match catch_unwind(AssertUnwindSafe(|| eval(offsets))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panicked with a non-string payload".to_string());
            CaseResult::Fail(format!("panic: {msg}"))
        }
    }
}

/// Drive one property: draw offset vectors with `draw`, evaluate them
/// with `eval`, shrink on the first failure. Returns the number of
/// passing cases, or the shrunk [`Failure`].
///
/// This is the engine behind [`prop_check!`]; it is public so the
/// harness can be tested (and reused) directly.
pub fn run_raw(
    config: &PropConfig,
    mut draw: impl FnMut(&mut StdRng) -> Vec<u64>,
    eval: impl Fn(&[u64]) -> CaseResult,
) -> Result<u32, Failure> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut passed = 0u32;
    let mut draws = 0u32;
    let max_draws = config.cases.saturating_mul(16).max(64);
    while passed < config.cases && draws < max_draws {
        draws += 1;
        let offsets = draw(&mut rng);
        match protected(&eval, &offsets) {
            CaseResult::Pass => passed += 1,
            CaseResult::Discard => {}
            CaseResult::Fail(message) => {
                return Err(shrink(config, offsets, message, passed, &eval));
            }
        }
    }
    assert!(
        passed >= config.cases / 2,
        "prop_check: only {passed}/{} cases survived prop_assume! filtering",
        config.cases
    );
    Ok(passed)
}

/// Shrink a failing offset vector: repeatedly halve each component while
/// the property still fails, then refine by unit decrements. Offsets
/// shrink toward zero, i.e. values shrink toward their range start.
fn shrink(
    config: &PropConfig,
    mut best: Vec<u64>,
    mut message: String,
    case: u32,
    eval: &impl Fn(&[u64]) -> CaseResult,
) -> Failure {
    let mut iters = 0u32;
    loop {
        let mut improved = false;
        for i in 0..best.len() {
            for step in [Step::Halve, Step::Decrement] {
                while best[i] > 0 && iters < config.max_shrink_iters {
                    let mut candidate = best.clone();
                    candidate[i] = match step {
                        Step::Halve => candidate[i] / 2,
                        Step::Decrement => candidate[i] - 1,
                    };
                    iters += 1;
                    match protected(eval, &candidate) {
                        CaseResult::Fail(m) => {
                            best = candidate;
                            message = m;
                            improved = true;
                        }
                        _ => break,
                    }
                }
            }
        }
        if !improved || iters >= config.max_shrink_iters {
            break;
        }
    }
    Failure {
        offsets: best,
        message,
        case,
        seed: config.seed,
        shrink_steps: iters,
    }
}

#[derive(Clone, Copy)]
enum Step {
    Halve,
    Decrement,
}

/// Declare a property test. See the [module docs](self) for syntax and
/// behavior; arguments are drawn from integer `lo..hi` / `lo..=hi`
/// ranges, and the body uses [`prop_assert!`](crate::prop_assert),
/// [`prop_assert_eq!`](crate::prop_assert_eq), and
/// [`prop_assume!`](crate::prop_assume) (plain `assert!`/panics are also
/// caught, at the cost of noisier output during shrinking).
#[macro_export]
macro_rules! prop_check {
    (fn $name:ident($($arg:ident in $range:expr),+ $(,)?) $body:block) => {
        $crate::prop_check!(cases = 32, fn $name($($arg in $range),+) $body);
    };
    (cases = $cases:expr, fn $name:ident($($arg:ident in $range:expr),+ $(,)?) $body:block) => {
        #[test]
        fn $name() {
            use $crate::prop::PropRange as _;
            let __config = $crate::prop::PropConfig::from_env($cases);
            let __draw = |__rng: &mut $crate::StdRng| -> ::std::vec::Vec<u64> {
                ::std::vec![$(($range).draw_offset(__rng)),+]
            };
            let __eval = |__offsets: &[u64]| -> $crate::prop::CaseResult {
                let mut __i = 0usize;
                $(
                    let $arg = ($range).value_at(__offsets[__i]);
                    __i += 1;
                )+
                let _ = __i;
                let __body = || -> $crate::prop::CaseResult {
                    $body
                    #[allow(unreachable_code)]
                    $crate::prop::CaseResult::Pass
                };
                __body()
            };
            if let ::std::result::Result::Err(__failure) =
                $crate::prop::run_raw(&__config, __draw, __eval)
            {
                let mut __inputs = ::std::string::String::new();
                let mut __i = 0usize;
                $(
                    __inputs.push_str(&::std::format!(
                        "  {} = {:?}\n",
                        ::std::stringify!($arg),
                        ($range).value_at(__failure.offsets[__i]),
                    ));
                    __i += 1;
                )+
                let _ = __i;
                ::std::panic!(
                    "property `{}` failed at case {} ({} shrink steps)\n\
                     minimal failing input:\n{}cause: {}\n\
                     replay with LEGODB_PROP_SEED={}",
                    ::std::stringify!($name),
                    __failure.case,
                    __failure.shrink_steps,
                    __inputs,
                    __failure.message,
                    __failure.seed,
                );
            }
        }
    };
}

/// Property-test assertion: on failure the current case returns
/// [`CaseResult::Fail`] (no panic, so shrinking stays quiet).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::prop::CaseResult::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::prop::CaseResult::Fail(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion for property tests; reports both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return $crate::prop::CaseResult::Fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                __l,
                __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return $crate::prop::CaseResult::Fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                __l,
                __r,
            ));
        }
    }};
}

/// Discard the current case unless `cond` holds (the case does not count
/// toward the target; excessive discarding fails the run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::prop::CaseResult::Discard;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(cases: u32) -> PropConfig {
        PropConfig {
            cases,
            seed: 99,
            max_shrink_iters: 1024,
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let passed = run_raw(
            &config(50),
            |rng| vec![rng.gen_range(0..=1000u64)],
            |ks| {
                assert!(ks[0] <= 1000);
                CaseResult::Pass
            },
        )
        .expect("property holds");
        assert_eq!(passed, 50);
    }

    #[test]
    fn shrinking_reports_the_minimal_failing_case() {
        // Fails iff k >= 317: halving alone cannot land on the boundary,
        // so this checks the decrement refinement too.
        let failure = run_raw(
            &config(200),
            |rng| vec![rng.gen_range(0..=100_000u64)],
            |ks| {
                if ks[0] >= 317 {
                    CaseResult::Fail(format!("{} too big", ks[0]))
                } else {
                    CaseResult::Pass
                }
            },
        )
        .expect_err("property must fail");
        assert_eq!(
            failure.offsets,
            vec![317],
            "shrink should reach the boundary"
        );
        assert_eq!(failure.message, "317 too big");
    }

    #[test]
    fn shrinking_is_component_wise() {
        // Fails iff a >= 10 && b >= 20; minimum is (10, 20).
        let failure = run_raw(
            &config(500),
            |rng| vec![rng.gen_range(0..=5000u64), rng.gen_range(0..=5000u64)],
            |ks| {
                if ks[0] >= 10 && ks[1] >= 20 {
                    CaseResult::Fail("both big".into())
                } else {
                    CaseResult::Pass
                }
            },
        )
        .expect_err("property must fail");
        assert_eq!(failure.offsets, vec![10, 20]);
    }

    #[test]
    fn panics_in_the_body_are_failures_and_shrink() {
        let failure = run_raw(
            &config(100),
            |rng| vec![rng.gen_range(0..=1000u64)],
            |ks| {
                assert!(ks[0] < 64, "boom {}", ks[0]);
                CaseResult::Pass
            },
        )
        .expect_err("property must fail");
        assert_eq!(failure.offsets, vec![64]);
        assert!(failure.message.contains("boom 64"), "{}", failure.message);
    }

    #[test]
    fn discarded_cases_do_not_count() {
        let evaluated = std::cell::Cell::new(0u32);
        let passed = run_raw(
            &config(10),
            |rng| vec![rng.gen_range(0..=1u64)],
            |ks| {
                evaluated.set(evaluated.get() + 1);
                if ks[0] == 0 {
                    CaseResult::Discard
                } else {
                    CaseResult::Pass
                }
            },
        )
        .expect("property holds");
        assert_eq!(passed, 10);
        assert!(evaluated.get() > 10, "discards must force extra draws");
    }

    #[test]
    fn failures_replay_under_the_same_seed() {
        let run = || {
            run_raw(
                &config(100),
                |rng| vec![rng.gen_range(0..=10_000u64)],
                |ks| {
                    if ks[0] >= 1234 {
                        CaseResult::Fail("big".into())
                    } else {
                        CaseResult::Pass
                    }
                },
            )
        };
        let (a, b) = (run().expect_err("fails"), run().expect_err("fails"));
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.case, b.case);
    }

    // The macro itself, exercised end to end on a passing property.
    crate::prop_check! {
        cases = 40,
        fn macro_generated_test_passes(a in 0usize..7, b in -3i64..=3) {
            crate::prop_assume!(b != 0);
            crate::prop_assert!(a < 7);
            crate::prop_assert_eq!(b.signum() * b.signum(), 1);
        }
    }
}
