//! A monotonic-clock micro-benchmark harness: the std-only replacement
//! for Criterion in this workspace.
//!
//! Each benchmark runs a warmup, then takes `samples` timing samples on
//! [`std::time::Instant`]; fast bodies are batched so every sample spans
//! at least [`BenchConfig::min_sample_ns`]. Results print as a table and
//! are appended as JSON-lines to the path in `LEGODB_BENCH_JSON` (if
//! set), one object per benchmark, so CI can archive and diff runs.
//!
//! ```no_run
//! let mut bench = legodb_util::bench::Bench::from_args();
//! bench.bench_function("fib_20", |b| b.iter(|| fibonacci(20)));
//! bench.finish();
//! # fn fibonacci(_: u32) -> u64 { 0 }
//! ```
//!
//! Full measurement requires the `--bench` flag, which `cargo bench`
//! passes to `harness = false` targets. Without it (`cargo test
//! --benches`, or running the binary directly) the harness is in smoke
//! mode: every body runs exactly once and no statistics are reported —
//! the same convention Criterion uses, so benches double as tests.

pub use std::hint::black_box;

use crate::json::JsonObject;
use std::io::Write as _;
use std::time::Instant;

/// Harness knobs; env overrides `LEGODB_BENCH_WARMUP` / `LEGODB_BENCH_SAMPLES`.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Calls of the body before measurement starts.
    pub warmup_iters: u64,
    /// Timing samples per benchmark.
    pub samples: usize,
    /// Batch the body until one sample spans at least this long.
    pub min_sample_ns: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        let parse = |var: &str| std::env::var(var).ok().and_then(|v| v.parse().ok());
        BenchConfig {
            warmup_iters: parse("LEGODB_BENCH_WARMUP").unwrap_or(5),
            samples: parse("LEGODB_BENCH_SAMPLES")
                .map(|n: u64| n as usize)
                .unwrap_or(30),
            min_sample_ns: 50_000,
        }
    }
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Benchmark name.
    pub name: String,
    /// Timing samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub batch: u64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
}

impl Summary {
    fn to_json_line(&self) -> String {
        JsonObject::new()
            .str("name", &self.name)
            .u64("samples", self.samples as u64)
            .u64("batch", self.batch)
            .f64("min_ns", self.min_ns)
            .f64("median_ns", self.median_ns)
            .f64("p95_ns", self.p95_ns)
            .f64("mean_ns", self.mean_ns)
            .finish()
    }
}

/// The harness: create with [`Bench::from_args`], register benchmarks
/// with [`Bench::bench_function`], and call [`Bench::finish`].
#[derive(Debug)]
pub struct Bench {
    config: BenchConfig,
    test_mode: bool,
    json_path: Option<std::path::PathBuf>,
    filter: Option<String>,
    results: Vec<Summary>,
}

impl Bench {
    /// A harness honoring the CLI contract of `harness = false` targets:
    /// `--bench` (passed by `cargo bench`) enables full measurement,
    /// anything else — including `cargo test --benches` — gets smoke
    /// mode; a bare argument filters benchmarks by substring, and
    /// `LEGODB_BENCH_JSON` names the JSON-lines output.
    pub fn from_args() -> Bench {
        let mut bench_mode = false;
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => test_mode = true,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        let test_mode = test_mode || !bench_mode;
        Bench {
            config: BenchConfig::default(),
            test_mode,
            json_path: std::env::var_os("LEGODB_BENCH_JSON").map(Into::into),
            filter,
            results: Vec::new(),
        }
    }

    /// A harness with explicit settings (no CLI/env parsing).
    pub fn with_config(config: BenchConfig) -> Bench {
        Bench {
            config,
            test_mode: false,
            json_path: None,
            filter: None,
            results: Vec::new(),
        }
    }

    /// Run one benchmark. The closure receives a [`Bencher`] and must
    /// call [`Bencher::iter`] with the body to measure.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Bench {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            config: self.config.clone(),
            test_mode: self.test_mode,
            times_ns: Vec::new(),
            batch: 1,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{name:<40} ok (smoke)");
            return self;
        }
        let summary = bencher.summarize(name);
        println!(
            "{name:<40} median {:>10}  p95 {:>10}  min {:>10}  ({} samples x {} iters)",
            fmt_ns(summary.median_ns),
            fmt_ns(summary.p95_ns),
            fmt_ns(summary.min_ns),
            summary.samples,
            summary.batch,
        );
        self.results.push(summary);
        self
    }

    /// Flush JSON-lines output (when configured) and return the results.
    pub fn finish(&mut self) -> Vec<Summary> {
        if let Some(path) = &self.json_path {
            if !self.results.is_empty() {
                match append_json_lines(path, self.results.iter().map(Summary::to_json_line)) {
                    Ok(()) => eprintln!(
                        "bench: appended {} records to {}",
                        self.results.len(),
                        path.display()
                    ),
                    Err(e) => eprintln!("bench: cannot write {}: {e}", path.display()),
                }
            }
        }
        std::mem::take(&mut self.results)
    }
}

/// Measurement context handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    config: BenchConfig,
    test_mode: bool,
    times_ns: Vec<u64>,
    batch: u64,
}

impl Bencher {
    /// Measure `f`: warmup, batch calibration, then timed samples. In
    /// smoke mode, runs `f` once.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.test_mode {
            black_box(f());
            return;
        }
        for _ in 0..self.config.warmup_iters {
            black_box(f());
        }
        // Grow the batch until one sample is long enough to time reliably.
        let mut batch = 1u64;
        loop {
            let t = time_batch(&mut f, batch);
            if t >= self.config.min_sample_ns || batch >= (1 << 24) {
                break;
            }
            batch *= 2;
        }
        self.batch = batch;
        self.times_ns = (0..self.config.samples)
            .map(|_| time_batch(&mut f, batch))
            .collect();
    }

    fn summarize(self, name: &str) -> Summary {
        assert!(
            !self.times_ns.is_empty(),
            "bench_function body never called Bencher::iter"
        );
        let mut per_iter: Vec<f64> = self
            .times_ns
            .iter()
            .map(|&t| t as f64 / self.batch as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let n = per_iter.len();
        Summary {
            name: name.to_string(),
            samples: n,
            batch: self.batch,
            min_ns: per_iter[0],
            median_ns: percentile(&per_iter, 0.50),
            p95_ns: percentile(&per_iter, 0.95),
            mean_ns: per_iter.iter().sum::<f64>() / n as f64,
        }
    }
}

fn time_batch<R>(f: &mut impl FnMut() -> R, batch: u64) -> u64 {
    let start = Instant::now();
    for _ in 0..batch {
        black_box(f());
    }
    start.elapsed().as_nanos() as u64
}

/// Nearest-rank percentile of an ascending-sorted slice; `q` in `[0, 1]`.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Run `f` once, returning its result and wall time — for coarse
/// whole-experiment timing (the `fig*`/`tab*` binaries).
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// Append pre-rendered JSON lines to `path`, creating parents as needed.
pub fn append_json_lines(
    path: &std::path::Path,
    lines: impl IntoIterator<Item = String>,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for line in lines {
        writeln!(file, "{line}")?;
    }
    Ok(())
}

/// Human-readable nanoseconds (`412ns`, `3.21µs`, `15.4ms`, `2.05s`).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> BenchConfig {
        BenchConfig {
            warmup_iters: 1,
            samples: 8,
            min_sample_ns: 1_000,
        }
    }

    #[test]
    fn measures_and_summarizes() {
        let mut bench = Bench::with_config(quick_config());
        bench.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let results = bench.finish();
        assert_eq!(results.len(), 1);
        let s = &results[0];
        assert_eq!(s.name, "spin");
        assert_eq!(s.samples, 8);
        assert!(s.batch >= 1);
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns);
    }

    #[test]
    fn percentiles_of_known_data() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 1.0), 100.0);
        assert_eq!(percentile(&data, 0.5), 51.0);
        assert_eq!(percentile(&data, 0.95), 95.0);
    }

    #[test]
    fn json_lines_append_and_accumulate() {
        let dir = std::env::temp_dir().join(format!("legodb-util-bench-{}", std::process::id()));
        let path = dir.join("bench.jsonl");
        let _ = std::fs::remove_file(&path);
        append_json_lines(&path, ["{\"a\":1}".to_string()]).unwrap();
        append_json_lines(&path, ["{\"b\":2}".to_string()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formats_time_scales() {
        assert_eq!(fmt_ns(412.0), "412ns");
        assert_eq!(fmt_ns(3_210.0), "3.21µs");
        assert_eq!(fmt_ns(15_400_000.0), "15.40ms");
        assert_eq!(fmt_ns(2_050_000_000.0), "2.05s");
    }

    #[test]
    fn time_once_returns_the_result() {
        let (value, elapsed) = time_once(|| 6 * 7);
        assert_eq!(value, 42);
        assert!(elapsed.as_nanos() > 0);
    }
}
