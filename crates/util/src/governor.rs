//! Resource governor: wall-clock deadlines, evaluation budgets, and
//! memory-estimate caps for long-running engine work.
//!
//! The paper's greedy search (Algorithm 4.1) "can take minutes" on real
//! schemas; a production engine must be able to stop early and return the
//! best configuration found so far. [`Budget`] declares the limits,
//! [`Budget::start`] turns them into a running [`Governor`], and hot loops
//! call [`Governor::checkpoint`] — a few atomic loads plus one monotonic
//! clock read — to learn whether to keep going.
//!
//! The governor is shared by reference across scoped worker threads; all
//! counters are atomic, and the first limit to trip is latched so every
//! caller observes the same exhaustion reason.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Declarative resource limits for one engine run. All limits are
/// optional; [`Budget::none`] (and `Default`) is unlimited.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock allowance, measured from [`Budget::start`] on a
    /// monotonic clock.
    pub deadline: Option<Duration>,
    /// Maximum number of unit evaluations (e.g. candidate costings).
    pub max_evaluations: Option<u64>,
    /// Maximum *estimated* bytes of transient materializations. This is a
    /// work proxy accumulated via [`Governor::note_memory`], not an
    /// allocator measurement.
    pub max_memory_bytes: Option<u64>,
}

impl Budget {
    /// An unlimited budget.
    pub fn none() -> Budget {
        Budget::default()
    }

    /// Set the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Set the evaluation cap.
    pub fn with_max_evaluations(mut self, max: u64) -> Budget {
        self.max_evaluations = Some(max);
        self
    }

    /// Set the memory-estimate cap.
    pub fn with_max_memory_bytes(mut self, max: u64) -> Budget {
        self.max_memory_bytes = Some(max);
        self
    }

    /// True when no limit is set (every checkpoint passes).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_evaluations.is_none() && self.max_memory_bytes.is_none()
    }

    /// Start the clock: produce a running [`Governor`] for this budget.
    pub fn start(&self) -> Governor {
        Governor {
            budget: self.clone(),
            started: Instant::now(),
            evaluations: AtomicU64::new(0),
            memory_bytes: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIPPED_NONE),
        }
    }
}

/// Which limit a [`Governor`] ran out of first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The evaluation cap was reached.
    Evaluations,
    /// The memory-estimate cap was reached.
    Memory,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Deadline => write!(f, "wall-clock deadline exceeded"),
            BudgetExceeded::Evaluations => write!(f, "evaluation budget exhausted"),
            BudgetExceeded::Memory => write!(f, "memory-estimate budget exhausted"),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

const TRIPPED_NONE: u8 = 0;
const TRIPPED_DEADLINE: u8 = 1;
const TRIPPED_EVALUATIONS: u8 = 2;
const TRIPPED_MEMORY: u8 = 3;

fn decode(tripped: u8) -> Option<BudgetExceeded> {
    match tripped {
        TRIPPED_DEADLINE => Some(BudgetExceeded::Deadline),
        TRIPPED_EVALUATIONS => Some(BudgetExceeded::Evaluations),
        TRIPPED_MEMORY => Some(BudgetExceeded::Memory),
        _ => None,
    }
}

/// A running budget: the live counters behind [`Budget`]. Shared by
/// reference across worker threads (all state is atomic).
#[derive(Debug)]
pub struct Governor {
    budget: Budget,
    started: Instant,
    evaluations: AtomicU64,
    memory_bytes: AtomicU64,
    tripped: AtomicU8,
}

impl Governor {
    /// The budget this governor enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Time elapsed since [`Budget::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Evaluations recorded so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Estimated bytes recorded so far.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes.load(Ordering::Relaxed)
    }

    /// Record `n` unit evaluations.
    pub fn note_evaluations(&self, n: u64) {
        self.evaluations.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `bytes` of estimated transient materialization.
    pub fn note_memory(&self, bytes: u64) {
        self.memory_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Latch `reason` as the exhaustion cause if none is latched yet, and
    /// return the (possibly earlier) latched reason.
    fn trip(&self, reason: u8) -> BudgetExceeded {
        match self.tripped.compare_exchange(
            TRIPPED_NONE,
            reason,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            // lint: allow(no-unwrap-in-lib) — the latched value is only ever written through encode(), which decode() inverts
            Ok(_) => decode(reason).expect("trip called with a valid reason"),
            // lint: allow(no-unwrap-in-lib) — the latched value is only ever written through encode(), which decode() inverts
            Err(prior) => decode(prior).expect("latched value is a valid reason"),
        }
    }

    /// Cheap go/no-go check: `Ok(())` while within budget, `Err` with the
    /// first limit that tripped otherwise. Once a limit trips, every
    /// subsequent checkpoint (on any thread) reports the same reason.
    pub fn checkpoint(&self) -> Result<(), BudgetExceeded> {
        if let Some(reason) = decode(self.tripped.load(Ordering::Relaxed)) {
            return Err(reason);
        }
        if let Some(max) = self.budget.max_evaluations {
            if self.evaluations.load(Ordering::Relaxed) >= max {
                return Err(self.trip(TRIPPED_EVALUATIONS));
            }
        }
        if let Some(max) = self.budget.max_memory_bytes {
            if self.memory_bytes.load(Ordering::Relaxed) >= max {
                return Err(self.trip(TRIPPED_MEMORY));
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self.started.elapsed() >= deadline {
                return Err(self.trip(TRIPPED_DEADLINE));
            }
        }
        Ok(())
    }

    /// The latched exhaustion reason, if any checkpoint has failed.
    pub fn exceeded(&self) -> Option<BudgetExceeded> {
        decode(self.tripped.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let g = Budget::none().start();
        g.note_evaluations(1_000_000);
        g.note_memory(u64::MAX / 2);
        assert!(g.checkpoint().is_ok());
        assert!(g.exceeded().is_none());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let g = Budget::none().with_deadline(Duration::ZERO).start();
        assert_eq!(g.checkpoint(), Err(BudgetExceeded::Deadline));
        assert_eq!(g.exceeded(), Some(BudgetExceeded::Deadline));
    }

    #[test]
    fn evaluation_cap_trips_at_the_limit() {
        let g = Budget::none().with_max_evaluations(10).start();
        g.note_evaluations(9);
        assert!(g.checkpoint().is_ok());
        g.note_evaluations(1);
        assert_eq!(g.checkpoint(), Err(BudgetExceeded::Evaluations));
    }

    #[test]
    fn memory_cap_trips_at_the_limit() {
        let g = Budget::none().with_max_memory_bytes(1024).start();
        g.note_memory(1023);
        assert!(g.checkpoint().is_ok());
        g.note_memory(1);
        assert_eq!(g.checkpoint(), Err(BudgetExceeded::Memory));
    }

    #[test]
    fn first_tripped_reason_is_latched() {
        let g = Budget::none()
            .with_max_evaluations(1)
            .with_deadline(Duration::ZERO)
            .start();
        g.note_evaluations(5);
        let first = g.checkpoint().unwrap_err();
        // Whatever tripped first keeps being reported, even though both
        // limits are now exceeded.
        for _ in 0..3 {
            assert_eq!(g.checkpoint(), Err(first));
        }
    }

    #[test]
    fn checkpoint_is_shareable_across_threads() {
        let g = Budget::none().with_max_evaluations(1000).start();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..250 {
                        g.note_evaluations(1);
                    }
                });
            }
        });
        assert_eq!(g.evaluations(), 1000);
        assert_eq!(g.checkpoint(), Err(BudgetExceeded::Evaluations));
    }
}
