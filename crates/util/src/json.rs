//! A tiny JSON writer *and reader* — just enough to emit the bench
//! harness's JSON-lines records and read them back in `bench-gate`,
//! without an external serialization crate. The reader is a full
//! recursive-descent JSON parser (RFC 8259), but the workspace only ever
//! round-trips the flat objects [`JsonObject`] produces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Builder for one flat JSON object, rendered in field-insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, name: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(name));
        &mut self.buf
    }

    /// Add a string field (escaped).
    pub fn str(mut self, name: &str, value: &str) -> JsonObject {
        let escaped = escape(value);
        let _ = write!(self.key(name), "\"{escaped}\"");
        self
    }

    /// Add an integer field.
    pub fn u64(mut self, name: &str, value: u64) -> JsonObject {
        let _ = write!(self.key(name), "{value}");
        self
    }

    /// Add a float field. Non-finite values become `null` (JSON has no
    /// NaN/Infinity).
    pub fn f64(mut self, name: &str, value: f64) -> JsonObject {
        if value.is_finite() {
            let _ = write!(self.key(name), "{value}");
        } else {
            let _ = write!(self.key(name), "null");
        }
        self
    }

    /// Render the object as one line (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Escape a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Objects keep keys in a [`BTreeMap`] — the
/// deterministic-collections rule applies to anything downstream code
/// may iterate and fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as f64 — bench records never exceed
    /// 2^53 so the mantissa is exact for our integers).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The numeric value, if this is a number or a bool (`true` = 1).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Render for diagnostics (not guaranteed round-trip formatting).
    pub fn render(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Number(n) => format!("{n}"),
            Value::String(s) => format!("\"{}\"", escape(s)),
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(Value::render).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Object(m) => {
                let inner: Vec<String> = m
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// A JSON parse error: what was expected, and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Parse a JSON-lines file body: one object per non-empty line.
/// Malformed lines are returned as errors tagged with their 1-based line
/// number.
pub fn parse_lines(input: &str) -> Result<Vec<Value>, JsonParseError> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse(line).map_err(|e| JsonParseError {
            message: format!("line {}: {}", i + 1, e.message),
            offset: e.offset,
        })?;
        out.push(value);
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b < 0xE0 => 2,
                        b if b < 0xF0 => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid hex in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fields_in_order() {
        let line = JsonObject::new()
            .str("name", "xml_parse")
            .u64("samples", 30)
            .f64("median_ns", 1234.5)
            .finish();
        assert_eq!(
            line,
            r#"{"name":"xml_parse","samples":30,"median_ns":1234.5}"#
        );
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let line = JsonObject::new().str("k", "va\"lue").finish();
        assert_eq!(line, r#"{"k":"va\"lue"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = JsonObject::new().f64("x", f64::NAN).f64("y", 2.0).finish();
        assert_eq!(line, r#"{"x":null,"y":2}"#);
    }

    #[test]
    fn reader_round_trips_writer_output() {
        let line = JsonObject::new()
            .str("experiment", "search_scale")
            .u64("scale", 10)
            .f64("speedup", 1.62)
            .f64("nan_becomes", f64::NAN)
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("search_scale"));
        assert_eq!(v.get("scale").unwrap().as_f64(), Some(10.0));
        assert_eq!(v.get("speedup").unwrap().as_f64(), Some(1.62));
        assert_eq!(v.get("nan_becomes"), Some(&Value::Null));
    }

    #[test]
    fn parses_nested_values_and_escapes() {
        let v = parse(r#"{"a":[1,-2.5,1e3,true,false,null],"b":{"c":"x\ny A 😀"}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Array(vec![
                Value::Number(1.0),
                Value::Number(-2.5),
                Value::Number(1000.0),
                Value::Bool(true),
                Value::Bool(false),
                Value::Null,
            ])
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny A 😀")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"abc", "{} x", "1.2.3"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parse_lines_reads_jsonl_and_tags_errors() {
        let body = "{\"a\":1}\n\n{\"a\":2}\n";
        let values = parse_lines(body).unwrap();
        assert_eq!(values.len(), 2);
        assert_eq!(values[1].get("a").unwrap().as_f64(), Some(2.0));
        let err = parse_lines("{\"a\":1}\nnope\n").unwrap_err();
        assert!(err.message.contains("line 2"), "{err}");
    }
}
