//! A tiny JSON *writer* — just enough to emit the bench harness's
//! JSON-lines records without an external serialization crate. There is
//! deliberately no parser: nothing in the workspace reads JSON back.

use std::fmt::Write as _;

/// Builder for one flat JSON object, rendered in field-insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, name: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(name));
        &mut self.buf
    }

    /// Add a string field (escaped).
    pub fn str(mut self, name: &str, value: &str) -> JsonObject {
        let escaped = escape(value);
        let _ = write!(self.key(name), "\"{escaped}\"");
        self
    }

    /// Add an integer field.
    pub fn u64(mut self, name: &str, value: u64) -> JsonObject {
        let _ = write!(self.key(name), "{value}");
        self
    }

    /// Add a float field. Non-finite values become `null` (JSON has no
    /// NaN/Infinity).
    pub fn f64(mut self, name: &str, value: f64) -> JsonObject {
        if value.is_finite() {
            let _ = write!(self.key(name), "{value}");
        } else {
            let _ = write!(self.key(name), "null");
        }
        self
    }

    /// Render the object as one line (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Escape a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fields_in_order() {
        let line = JsonObject::new()
            .str("name", "xml_parse")
            .u64("samples", 30)
            .f64("median_ns", 1234.5)
            .finish();
        assert_eq!(
            line,
            r#"{"name":"xml_parse","samples":30,"median_ns":1234.5}"#
        );
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let line = JsonObject::new().str("k", "va\"lue").finish();
        assert_eq!(line, r#"{"k":"va\"lue"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = JsonObject::new().f64("x", f64::NAN).f64("y", 2.0).finish();
        assert_eq!(line, r#"{"x":null,"y":2}"#);
    }
}
