//! A stable, non-cryptographic 64-bit hasher (FNV-1a) for fingerprints
//! that must be deterministic across runs and platforms.
//!
//! `std::collections::hash_map::DefaultHasher` is randomly seeded per
//! process, which is exactly wrong for memoization keys that feed
//! equivalence checks and replayable benchmarks. This hasher is seeded by
//! construction and mixes every input length-prefixed, so concatenation
//! ambiguities (`"ab" + "c"` vs `"a" + "bc"`) cannot collide by framing.

/// FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a fingerprint builder.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: OFFSET }
    }

    /// Absorb raw bytes (no framing).
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(PRIME);
        }
        self
    }

    /// Absorb a length-prefixed string.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// Absorb a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorb an `f64` by its IEEE-754 bit pattern (so `-0.0 != 0.0` and
    /// NaN payloads are distinguished — fingerprints must be exact).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// The current fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot fingerprint of a string.
pub fn fingerprint_str(s: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(s);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StableHasher::new();
        a.write_str("show").write_u64(42).write_f64(1.5);
        let mut b = StableHasher::new();
        b.write_str("show").write_u64(42).write_f64(1.5);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn framing_distinguishes_concatenations() {
        let mut a = StableHasher::new();
        a.write_str("ab").write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_matter() {
        let mut a = StableHasher::new();
        a.write_f64(0.0);
        let mut b = StableHasher::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn known_value_is_stable() {
        // Pin the fingerprint so accidental algorithm changes are caught:
        // cached artifacts keyed by these hashes must not silently rot.
        assert_eq!(fingerprint_str(""), {
            let mut h = StableHasher::new();
            h.write_u64(0);
            h.finish()
        });
        assert_eq!(fingerprint_str("a"), fingerprint_str("a"));
        assert_ne!(fingerprint_str("a"), fingerprint_str("b"));
    }
}
