//! # legodb-util
//!
//! Std-only runtime support for the LegoDB workspace. This crate exists
//! so the whole workspace builds **fully offline**: it replaces every
//! external dependency the repository used to declare with small,
//! purpose-built equivalents.
//!
//! | Module | Replaces | Provides |
//! |---|---|---|
//! | [`rng`] | `rand` | seedable SplitMix64 / xoshiro256++ PRNG, `Rng` trait (`gen_range`, `gen_bool`, `shuffle`, `sample`) |
//! | [`par`] | `crossbeam::thread::scope` + `crossbeam::deque` | [`par::scoped_map`] / [`par::scoped_map_catch`] order-preserving (fault-isolated) parallel maps; [`par::steal_map_catch`] work-stealing deque scheduler with [`par::StealReport`] telemetry |
//! | [`governor`] | — | [`governor::Budget`] deadlines / evaluation / memory-estimate budgets with a cheap `checkpoint()` |
//! | [`fault`] | `fail` | deterministic, order-independent fault injection (`LEGODB_FAULT_SEED`) |
//! | [`sync`] | `parking_lot` | poison-tolerant [`sync::RwLock`] / [`sync::Mutex`] with direct-guard API; [`sync::Striped`] lock-striped shards |
//! | [`lockcheck`] | `tsan`-style deadlock detection | debug-only runtime lock-order sanitizer fed by [`sync`] (held-lock stacks, acquisition-order graph, cycle panics with witnesses) |
//! | [`hash`] | — | [`hash::StableHasher`]: seeded, platform-stable FNV-1a fingerprints |
//! | [`prop`] | `proptest` | [`prop_check!`] macro: case generation, shrinking-by-halving, seed replay |
//! | [`bench`] | `criterion` | warmup + N-sample micro-bench harness, median/p95, JSON-lines output |
//! | [`json`] | `serde` | minimal JSON writer for the bench records, and a JSON-lines reader for the CI gate |
//! | [`fs`] | — | [`fs::DirHandle`] capability-style directory handle: the only sanctioned route to `std::fs` (atomic replace, append logs, truncation) |
//!
//! Everything here is deterministic where it matters (seeded streams are
//! stable across platforms) and dependency-free by policy: see the
//! README's "Building offline" section.

#![forbid(unsafe_code)]

pub mod bench;
pub mod fault;
pub mod fs;
pub mod governor;
pub mod hash;
pub mod json;
pub mod lockcheck;
pub mod par;
pub mod prop;
pub mod rng;
pub mod sync;

pub use fault::{failpoint, FaultConfig, FaultError, FaultMode};
pub use fs::{DirHandle, LogFile};
pub use governor::{Budget, BudgetExceeded, Governor};
pub use hash::StableHasher;
pub use par::{scoped_map, scoped_map_catch, steal_map_catch, Scheduler, StealReport};
pub use rng::{Rng, SampleRange, SampleUniform, SplitMix64, StdRng};
pub use sync::{Mutex, RwLock, Striped};
