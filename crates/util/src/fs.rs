//! Capability-style filesystem access: the only sanctioned route to
//! `std::fs` in this workspace.
//!
//! The `no-ambient-authority` lint rule bans `std::fs` / `File::` /
//! `OpenOptions` everywhere outside `crates/util`, so any code that
//! needs durable storage must be *handed* a [`DirHandle`] — a handle to
//! one directory, inside which all reads and writes stay. This keeps
//! filesystem authority explicit in signatures (a function that cannot
//! receive a handle cannot touch the disk) and keeps the deterministic
//! fault-injection story honest: failpoints on the write paths are the
//! only source of I/O failure the tests need to model.
//!
//! Names passed to a handle are `/`-separated *relative* paths and are
//! validated: absolute paths, `..` components, and empty components are
//! rejected with `InvalidInput` rather than escaping the root.
//!
//! [`DirHandle::write_atomic`] is the crash-safe publication primitive:
//! write to a temp file, fsync it, rename over the target, fsync the
//! directory. A crash at any point leaves either the old file or the
//! new one, never a torn mixture — the checkpoint/restore path in
//! `crates/relational` leans on exactly this.

use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// A capability to read and write inside one directory.
#[derive(Debug, Clone)]
pub struct DirHandle {
    root: PathBuf,
}

impl DirHandle {
    /// Open an existing directory as a capability root.
    pub fn open(path: impl AsRef<Path>) -> io::Result<DirHandle> {
        let root = path.as_ref().to_path_buf();
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} is not a directory", root.display()),
            ));
        }
        Ok(DirHandle { root })
    }

    /// Create the directory (and parents) if needed, then open it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<DirHandle> {
        fs::create_dir_all(path.as_ref())?;
        DirHandle::open(path)
    }

    /// Split a file path from the CLI boundary into (handle on the
    /// parent directory, file name). This is where ambient authority is
    /// allowed to enter a program: an operator-supplied path on argv.
    pub fn open_containing(path: impl AsRef<Path>) -> io::Result<(DirHandle, String)> {
        let (parent, name) = split_containing(path.as_ref())?;
        Ok((DirHandle::open(parent)?, name))
    }

    /// Like [`DirHandle::open_containing`], creating the parent
    /// directory first.
    pub fn create_containing(path: impl AsRef<Path>) -> io::Result<(DirHandle, String)> {
        let (parent, name) = split_containing(path.as_ref())?;
        Ok((DirHandle::create(parent)?, name))
    }

    /// The directory this handle is rooted at.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Validate `name` and resolve it against the root. Rejects absolute
    /// paths and any `..` / empty component.
    fn resolve(&self, name: &str) -> io::Result<PathBuf> {
        if name.is_empty() || name.starts_with('/') || name.contains('\\') {
            return Err(bad_name(name));
        }
        let mut path = self.root.clone();
        for part in name.split('/') {
            if part.is_empty() || part == "." || part == ".." {
                return Err(bad_name(name));
            }
            path.push(part);
        }
        Ok(path)
    }

    /// Does `name` exist under this root?
    pub fn exists(&self, name: &str) -> io::Result<bool> {
        Ok(self.resolve(name)?.exists())
    }

    /// Read a file's bytes.
    pub fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.resolve(name)?)
    }

    /// Read a file's bytes, mapping "not found" to `None`.
    pub fn read_opt(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.resolve(name)?) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Read a file as UTF-8.
    pub fn read_to_string(&self, name: &str) -> io::Result<String> {
        fs::read_to_string(self.resolve(name)?)
    }

    /// Size of a file in bytes (0 if it does not exist).
    pub fn file_len(&self, name: &str) -> io::Result<u64> {
        match fs::metadata(self.resolve(name)?) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Atomically replace `name` with `bytes`: write `<name>.tmp`, fsync
    /// it, rename over `name`, fsync the directory. A crash leaves either
    /// the old contents or the new, never a torn file.
    pub fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let target = self.resolve(name)?;
        let tmp = self.resolve(&format!("{name}.tmp"))?;
        if let Some(parent) = target.parent() {
            fs::create_dir_all(parent)?;
        }
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &target)?;
        // Persist the rename itself. Directory fsync is a no-op on some
        // platforms; failure to open the directory is not fatal.
        if let Some(parent) = target.parent() {
            if let Ok(dir) = fs::File::open(parent) {
                dir.sync_all()?;
            }
        }
        Ok(())
    }

    /// Open (creating if absent) an append-only log file.
    pub fn append_log(&self, name: &str) -> io::Result<LogFile> {
        let path = self.resolve(name)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        Ok(LogFile { file })
    }

    /// Truncate (or extend with zeros) a file to `len` bytes. Creates the
    /// file if it does not exist.
    pub fn set_len(&self, name: &str, len: u64) -> io::Result<()> {
        let path = self.resolve(name)?;
        // truncate(false): `set_len` below does the sizing; opening must
        // not clobber the contents we may be keeping a prefix of.
        let file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(len)?;
        file.sync_all()
    }

    /// Remove a file if it exists.
    pub fn remove(&self, name: &str) -> io::Result<()> {
        match fs::remove_file(self.resolve(name)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Remove a subdirectory and everything under it (no-op if absent).
    pub fn remove_tree(&self, name: &str) -> io::Result<()> {
        match fs::remove_dir_all(self.resolve(name)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Entries directly under this root, name-sorted.
    pub fn list(&self) -> io::Result<Vec<DirEntryInfo>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = match entry.file_name().into_string() {
                Ok(n) => n,
                Err(_) => continue, // non-UTF-8 names are invisible to the capability API
            };
            let is_dir = entry.file_type()?.is_dir();
            out.push(DirEntryInfo { name, is_dir });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    /// A handle on an existing subdirectory.
    pub fn subdir(&self, name: &str) -> io::Result<DirHandle> {
        DirHandle::open(self.resolve(name)?)
    }

    /// A handle on a subdirectory, creating it if needed.
    pub fn create_subdir(&self, name: &str) -> io::Result<DirHandle> {
        DirHandle::create(self.resolve(name)?)
    }
}

/// One entry of [`DirHandle::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntryInfo {
    /// File or directory name (one component, no separators).
    pub name: String,
    /// True for directories.
    pub is_dir: bool,
}

fn split_containing(path: &Path) -> io::Result<(PathBuf, String)> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| bad_name(&path.display().to_string()))?
        .to_string();
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    Ok((parent, name))
}

fn bad_name(name: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("invalid relative path {name:?}: must be non-empty, relative, and `..`-free"),
    )
}

/// An append-only file: the WAL's write primitive.
#[derive(Debug)]
pub struct LogFile {
    file: fs::File,
}

impl LogFile {
    /// Append bytes at the end of the file.
    pub fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    /// Durably flush appended bytes (fdatasync-style).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Current length of the file in bytes.
    pub fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// True if the file is empty.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Read the whole file from the start (diagnostics/tests).
    pub fn read_all(&mut self) -> io::Result<Vec<u8>> {
        use std::io::Seek as _;
        let mut out = Vec::new();
        self.file.seek(io::SeekFrom::Start(0))?;
        self.file.read_to_end(&mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("legodb-util-fs-{tag}-{}", std::process::id()))
    }

    #[test]
    fn create_read_write_roundtrip() {
        let root = scratch("rw");
        let _ = fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        dir.write_atomic("a.txt", b"hello").unwrap();
        assert_eq!(dir.read_to_string("a.txt").unwrap(), "hello");
        assert!(dir.exists("a.txt").unwrap());
        assert!(!dir.exists("b.txt").unwrap());
        assert_eq!(dir.read_opt("b.txt").unwrap(), None);
        assert_eq!(dir.file_len("a.txt").unwrap(), 5);
        // nested relative paths work and create parents on write
        dir.write_atomic("sub/inner.txt", b"x").unwrap();
        assert_eq!(dir.read("sub/inner.txt").unwrap(), b"x");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn escaping_names_are_rejected() {
        let root = scratch("escape");
        let _ = fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        for bad in ["", "/etc/passwd", "../up", "a/../b", "a//b", "./a"] {
            assert!(dir.read(bad).is_err(), "{bad:?} must be rejected");
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn write_atomic_replaces_whole_files() {
        let root = scratch("atomic");
        let _ = fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        dir.write_atomic("f", b"old contents").unwrap();
        dir.write_atomic("f", b"new").unwrap();
        assert_eq!(dir.read("f").unwrap(), b"new");
        // the temp file does not linger
        assert!(!dir.exists("f.tmp").unwrap());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn append_log_accumulates_and_truncates() {
        let root = scratch("log");
        let _ = fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        {
            let mut log = dir.append_log("wal.log").unwrap();
            log.append(b"abc").unwrap();
            log.append(b"def").unwrap();
            log.sync().unwrap();
            assert_eq!(log.len().unwrap(), 6);
            assert_eq!(log.read_all().unwrap(), b"abcdef");
        }
        dir.set_len("wal.log", 4).unwrap();
        assert_eq!(dir.read("wal.log").unwrap(), b"abcd");
        // appends after truncation land at the new end
        let mut log = dir.append_log("wal.log").unwrap();
        log.append(b"Z").unwrap();
        drop(log);
        assert_eq!(dir.read("wal.log").unwrap(), b"abcdZ");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn list_and_subdir_enumerate_entries() {
        let root = scratch("list");
        let _ = fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        dir.write_atomic("b.txt", b"1").unwrap();
        dir.create_subdir("adir").unwrap();
        let entries = dir.list().unwrap();
        assert_eq!(
            entries,
            vec![
                DirEntryInfo {
                    name: "adir".into(),
                    is_dir: true
                },
                DirEntryInfo {
                    name: "b.txt".into(),
                    is_dir: false
                },
            ]
        );
        let sub = dir.subdir("adir").unwrap();
        sub.write_atomic("c", b"2").unwrap();
        assert_eq!(dir.read("adir/c").unwrap(), b"2");
        dir.remove_tree("adir").unwrap();
        assert!(!dir.exists("adir").unwrap());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn open_containing_splits_cli_paths() {
        let root = scratch("cli");
        let _ = fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        dir.write_atomic("records.json", b"{}").unwrap();
        let (parent, name) = DirHandle::open_containing(root.join("records.json")).unwrap();
        assert_eq!(name, "records.json");
        assert_eq!(parent.read(&name).unwrap(), b"{}");
        // bare file names resolve against "."
        let (_, bare) = DirHandle::create_containing("bare.txt").unwrap();
        assert_eq!(bare, "bare.txt");
        let _ = fs::remove_dir_all(&root);
    }
}
