//! Runtime proof that the `debug_assertions` lock-order sanitizer
//! catches an intentionally inverted lock pair (ISSUE 10 acceptance
//! criterion), and that ordinary nesting merely records edges.
//!
//! These tests construct their own private locks, so the edges they
//! record can never alias the library's named locks; the deliberate
//! inversion stays contained to this process's test graph.

use legodb_util::lockcheck;
use legodb_util::sync::{Mutex, RwLock, Striped};

/// The sanitizer is compiled out in release builds and can be disabled
/// via `LEGODB_LOCK_ORDER=0`; in either case there is nothing to test.
fn tracker_on() -> bool {
    lockcheck::is_active()
}

#[test]
fn inverted_lock_pair_is_caught_at_runtime() {
    if !tracker_on() {
        eprintln!("lockcheck inactive (release build or LEGODB_LOCK_ORDER=0); skipping");
        return;
    }
    let a = RwLock::new_named(0u32, "test.inverted.a");
    let b = RwLock::new_named(0u32, "test.inverted.b");

    // Establish the legal order a -> b.
    {
        let _ga = a.write();
        let _gb = b.write();
    }

    // Now invert it: b -> a must panic *before* any blocking, with both
    // witness stacks in the message.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _gb = b.write();
        let _ga = a.write();
    }))
    .expect_err("inverted acquisition order must panic under the sanitizer");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
    assert!(msg.contains("lock-order: cycle detected"), "got: {msg}");
    assert!(msg.contains("test.inverted.a"), "got: {msg}");
    assert!(msg.contains("test.inverted.b"), "got: {msg}");
    assert!(msg.contains("first seen with held stack"), "got: {msg}");
}

#[test]
fn exclusive_reacquire_is_self_deadlock() {
    if !tracker_on() {
        return;
    }
    let m = Mutex::new_named((), "test.self");
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _g1 = m.lock();
        let _g2 = m.lock();
    }))
    .expect_err("re-locking a held mutex must panic instead of hanging");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
    assert!(msg.contains("self-deadlock"), "got: {msg}");
}

#[test]
fn consistent_nesting_records_edges_without_panicking() {
    if !tracker_on() {
        return;
    }
    let before = lockcheck::edges_recorded();
    let outer = RwLock::new_named(1u32, "test.outer");
    let striped: Striped<u32> = Striped::new(4);
    // Same order every time: outer, then a stripe. No cycle, no panic —
    // but the wiring must actually record the nesting.
    for h in 0..8u64 {
        let _go = outer.read();
        let _gs = striped.stripe(h).write();
    }
    assert!(
        lockcheck::edges_recorded() > before,
        "nested acquisitions should have recorded at least one order edge"
    );
}
