//! The greedy search of Algorithm 4.1: iteratively apply the single
//! transformation that lowers workload cost the most, until no candidate
//! improves. Candidate evaluation is independent per candidate and runs on
//! scoped threads (`legodb_util::scoped_map`).

use crate::cost::{pschema_cost, CostError, CostReport};
use crate::transform::{apply, enumerate_candidates, Transformation, TransformationSet};
use crate::workload::Workload;
use legodb_optimizer::OptimizerConfig;
use legodb_pschema::{derive_pschema, InlineStyle, PSchema};
use legodb_schema::Schema;
use legodb_xml::stats::Statistics;

/// Which end of the inline spectrum the search starts from (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartPoint {
    /// *greedy-si*: everything inlined, search explores outlining.
    #[default]
    MaximallyInlined,
    /// *greedy-so*: everything outlined, search explores inlining.
    MaximallyOutlined,
}

/// Search knobs.
#[derive(Debug, Clone, Default)]
pub struct SearchConfig {
    /// Starting configuration.
    pub start: StartPoint,
    /// Allowed transformation kinds. When `None`, matches the paper's
    /// prototype: inline moves from an outlined start, outline moves from
    /// an inlined start.
    pub transformations: Option<TransformationSet>,
    /// Optimizer settings used by `GetPSchemaCost`.
    pub optimizer: OptimizerConfig,
    /// Safety cap on greedy iterations (0 = unlimited).
    pub max_iterations: usize,
    /// Evaluate candidates on scoped threads.
    pub parallel: bool,
    /// Stop when the relative improvement of an iteration falls below this
    /// threshold (the paper suggests this optimization; 0.0 disables it).
    pub improvement_threshold: f64,
}

impl SearchConfig {
    fn transformation_set(&self) -> TransformationSet {
        match &self.transformations {
            Some(set) => set.clone(),
            None => match self.start {
                StartPoint::MaximallyInlined => TransformationSet::outline_only(),
                StartPoint::MaximallyOutlined => TransformationSet::inline_only(),
            },
        }
    }
}

/// One greedy iteration's record, for the Figure 10 style convergence
/// plots.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Iteration number (0 = the initial configuration).
    pub iteration: usize,
    /// Cost after this iteration.
    pub cost: f64,
    /// Number of candidates evaluated.
    pub candidates: usize,
    /// The transformation applied (`None` for the initial configuration).
    pub applied: Option<String>,
}

/// The search outcome.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The selected physical schema.
    pub pschema: PSchema,
    /// Its workload cost.
    pub cost: f64,
    /// Full cost report (per-query costs, catalog, DDL).
    pub report: CostReport,
    /// Per-iteration trajectory (index 0 is the starting configuration).
    pub trajectory: Vec<IterationReport>,
}

/// Run Algorithm 4.1 from an arbitrary source schema.
pub fn greedy_search(
    schema: &Schema,
    stats: &Statistics,
    workload: &Workload,
    config: &SearchConfig,
) -> Result<SearchResult, CostError> {
    let start = match config.start {
        StartPoint::MaximallyInlined => derive_pschema(schema, InlineStyle::Inlined),
        StartPoint::MaximallyOutlined => derive_pschema(schema, InlineStyle::Outlined),
    };
    greedy_search_from(start, stats, workload, config)
}

/// Run Algorithm 4.1 from a specific initial p-schema.
pub fn greedy_search_from(
    initial: PSchema,
    stats: &Statistics,
    workload: &Workload,
    config: &SearchConfig,
) -> Result<SearchResult, CostError> {
    let set = config.transformation_set();
    let mut current = initial;
    let mut report = pschema_cost(&current, stats, workload, &config.optimizer)?;
    let mut cost = report.total;
    let mut trajectory = vec![IterationReport {
        iteration: 0,
        cost,
        candidates: 0,
        applied: None,
    }];

    let mut iteration = 0;
    loop {
        iteration += 1;
        if config.max_iterations != 0 && iteration > config.max_iterations {
            break;
        }
        let candidates = enumerate_candidates(&current, &set);
        let evaluated = evaluate_candidates(&current, &candidates, stats, workload, config);
        let best = evaluated
            .into_iter()
            .min_by(|a, b| a.2.total.partial_cmp(&b.2.total).expect("finite costs"));
        let Some((t, pschema, new_report)) = best else {
            break;
        };
        if new_report.total >= cost {
            break;
        }
        let improvement = (cost - new_report.total) / cost.max(f64::MIN_POSITIVE);
        current = pschema;
        cost = new_report.total;
        report = new_report;
        trajectory.push(IterationReport {
            iteration,
            cost,
            candidates: candidates.len(),
            applied: Some(t.to_string()),
        });
        if config.improvement_threshold > 0.0 && improvement < config.improvement_threshold {
            break;
        }
    }

    Ok(SearchResult {
        pschema: current,
        cost,
        report,
        trajectory,
    })
}

/// Evaluate all candidates, optionally in parallel. Candidates whose
/// application or costing fails are dropped (a candidate that cannot be
/// priced cannot be chosen).
fn evaluate_candidates(
    current: &PSchema,
    candidates: &[Transformation],
    stats: &Statistics,
    workload: &Workload,
    config: &SearchConfig,
) -> Vec<(Transformation, PSchema, CostReport)> {
    let evaluate_one = |t: &Transformation| -> Option<(Transformation, PSchema, CostReport)> {
        let pschema = apply(current, t).ok()?;
        let report = pschema_cost(&pschema, stats, workload, &config.optimizer).ok()?;
        Some((t.clone(), pschema, report))
    };
    if !config.parallel || candidates.len() < 2 {
        return candidates.iter().filter_map(evaluate_one).collect();
    }
    legodb_util::scoped_map(
        candidates,
        legodb_util::par::available_threads(),
        evaluate_one,
    )
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use legodb_schema::parse_schema;

    fn schema() -> Schema {
        parse_schema(
            "type IMDB = imdb[ Show{0,*} ]
             type Show = show [ title[ String ], year[ Integer ],
                                description[ String ], Aka{0,*} ]
             type Aka = aka[ String ]",
        )
        .unwrap()
    }

    fn stats() -> Statistics {
        let mut s = Statistics::new();
        s.set_count(&["imdb"], 1)
            .set_count(&["imdb", "show"], 20000)
            .set_size(&["imdb", "show", "title"], 50.0)
            .set_distinct(&["imdb", "show", "title"], 20000)
            .set_count(&["imdb", "show", "year"], 20000)
            .set_base(&["imdb", "show", "year"], 1900, 2000, 100)
            .set_count(&["imdb", "show", "description"], 20000)
            .set_size(&["imdb", "show", "description"], 2000.0)
            .set_count(&["imdb", "show", "aka"], 60000)
            .set_size(&["imdb", "show", "aka"], 40.0);
        s
    }

    fn lookup_workload() -> Workload {
        Workload::from_sources([(
            "lookup",
            r#"FOR $v IN document("x")/imdb/show WHERE $v/title = c1 RETURN $v/year"#,
            1.0,
        )])
        .unwrap()
    }

    #[test]
    fn search_monotonically_improves() {
        let result = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig {
                start: StartPoint::MaximallyInlined,
                ..Default::default()
            },
        )
        .unwrap();
        let costs: Vec<f64> = result.trajectory.iter().map(|r| r.cost).collect();
        assert!(costs.windows(2).all(|w| w[1] <= w[0]), "{costs:?}");
        assert_eq!(result.cost, *costs.last().unwrap());
    }

    #[test]
    fn lookup_workload_fragments_the_fat_table() {
        // Show carries a 2 KB description and is only ever probed by
        // title: the search should fragment it (outline the filter column
        // for a narrow selection scan, or the fat description) — paper §2:
        // "the large Description element need not be inlined unless it is
        // frequently queried".
        let result = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig {
                start: StartPoint::MaximallyInlined,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            result.trajectory.len() >= 2,
            "expected at least one outline move"
        );
        assert!(
            result.pschema.schema().len() > 3,
            "expected new outlined types:\n{}",
            result.pschema.schema()
        );
        let initial = result.trajectory[0].cost;
        assert!(
            result.cost < 0.5 * initial,
            "cost {initial} -> {} too small a win",
            result.cost
        );
    }

    #[test]
    fn publish_workload_keeps_narrow_columns_inline() {
        // With only narrow columns there is nothing to gain from
        // fragmentation: publishing pays a join per extra table.
        let mut narrow_stats = stats();
        narrow_stats.set_size(&["imdb", "show", "description"], 20.0);
        let publish = Workload::from_sources([(
            "publish",
            r#"FOR $v IN document("x")/imdb/show RETURN $v"#,
            1.0,
        )])
        .unwrap();
        let result = greedy_search(
            &schema(),
            &narrow_stats,
            &publish,
            &SearchConfig {
                start: StartPoint::MaximallyInlined,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            result.trajectory.len(),
            1,
            "publish over narrow columns should stay fully inlined:\n{}",
            result.pschema.schema()
        );
    }

    #[test]
    fn both_starts_converge_to_similar_costs() {
        let w = lookup_workload();
        let si = greedy_search(
            &schema(),
            &stats(),
            &w,
            &SearchConfig {
                start: StartPoint::MaximallyInlined,
                ..Default::default()
            },
        )
        .unwrap();
        let so = greedy_search(
            &schema(),
            &stats(),
            &w,
            &SearchConfig {
                start: StartPoint::MaximallyOutlined,
                ..Default::default()
            },
        )
        .unwrap();
        let ratio = si.cost / so.cost;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "si={} so={} should converge to similar costs",
            si.cost,
            so.cost
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let w = lookup_workload();
        let seq = greedy_search(
            &schema(),
            &stats(),
            &w,
            &SearchConfig {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        let par = greedy_search(
            &schema(),
            &stats(),
            &w,
            &SearchConfig {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((seq.cost - par.cost).abs() < 1e-9);
    }

    #[test]
    fn max_iterations_caps_the_search() {
        let result = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig {
                start: StartPoint::MaximallyOutlined,
                max_iterations: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(result.trajectory.len() <= 2);
    }
}
