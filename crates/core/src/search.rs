//! The greedy search of Algorithm 4.1: iteratively apply the single
//! transformation that lowers workload cost the most, until no candidate
//! improves. Candidate evaluation is independent per candidate and runs on
//! scoped threads (`legodb_util::scoped_map_catch`), fault-isolated: a
//! panicking or unpriceable candidate is dropped (and counted), never
//! allowed to tear down the search. An optional [`Budget`] bounds
//! wall-clock time, candidate evaluations, and estimated memory; on
//! exhaustion the search returns its best-so-far configuration tagged
//! with a [`SearchOutcome`] instead of an error.

use crate::cost::{CostError, CostEvaluator, CostReport, EvalStats};
use crate::transform::{apply, enumerate_candidates, Transformation, TransformationSet};
use crate::workload::Workload;
use legodb_optimizer::OptimizerConfig;
use legodb_pschema::{derive_pschema, InlineStyle, PSchema};
use legodb_schema::Schema;
use legodb_util::governor::{Budget, BudgetExceeded, Governor};
use legodb_util::{fault, scoped_map_catch, steal_map_catch, Scheduler, StealReport};
use legodb_xml::stats::Statistics;

/// Which end of the inline spectrum the search starts from (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartPoint {
    /// *greedy-si*: everything inlined, search explores outlining.
    #[default]
    MaximallyInlined,
    /// *greedy-so*: everything outlined, search explores inlining.
    MaximallyOutlined,
}

/// Search knobs.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Starting configuration.
    pub start: StartPoint,
    /// Allowed transformation kinds. When `None`, matches the paper's
    /// prototype: inline moves from an outlined start, outline moves from
    /// an inlined start.
    pub transformations: Option<TransformationSet>,
    /// Optimizer settings used by `GetPSchemaCost`.
    pub optimizer: OptimizerConfig,
    /// Safety cap on greedy iterations (0 = unlimited).
    pub max_iterations: usize,
    /// Evaluate candidates on scoped threads.
    pub parallel: bool,
    /// Which parallel discipline to use when `parallel` is set: the
    /// work-stealing deque scheduler (default) rebalances the skewed
    /// per-candidate costs incremental pricing produces; the chunked
    /// scheduler pins one contiguous chunk per worker (the bench's
    /// control arm). Scheduling never changes results: each candidate's
    /// cost is a pure function of the candidate, so both disciplines —
    /// and the sequential path — price bit-identically.
    pub scheduler: Scheduler,
    /// Stop when the relative improvement of an iteration falls below this
    /// threshold (the paper suggests this optimization; 0.0 disables it).
    pub improvement_threshold: f64,
    /// Resource budget (deadline / evaluations / memory estimate). When
    /// exhausted mid-search the best configuration found so far is
    /// returned with a non-[`SearchOutcome::Converged`] outcome.
    pub budget: Option<Budget>,
    /// Price candidates incrementally against their parent, with a shared
    /// memo cache (default). Off = every candidate is priced from scratch
    /// (the pre-incremental behavior; costs are bit-identical either way).
    pub memoize: bool,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            start: StartPoint::default(),
            transformations: None,
            optimizer: OptimizerConfig::default(),
            max_iterations: 0,
            parallel: false,
            scheduler: Scheduler::default(),
            improvement_threshold: 0.0,
            budget: None,
            memoize: true,
        }
    }
}

impl SearchConfig {
    fn transformation_set(&self) -> TransformationSet {
        match &self.transformations {
            Some(set) => set.clone(),
            None => match self.start {
                StartPoint::MaximallyInlined => TransformationSet::outline_only(),
                StartPoint::MaximallyOutlined => TransformationSet::inline_only(),
            },
        }
    }
}

/// One greedy iteration's record, for the Figure 10 style convergence
/// plots.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Iteration number (0 = the initial configuration).
    pub iteration: usize,
    /// Cost after this iteration.
    pub cost: f64,
    /// Number of candidates evaluated.
    pub candidates: usize,
    /// Candidates dropped this iteration: panicked, failed to apply or
    /// price, or priced to a non-finite cost.
    pub dropped: usize,
    /// The transformation applied (`None` for the initial configuration).
    pub applied: Option<String>,
    /// Evaluator counters for this iteration (how many query pricings
    /// were reused, memo-served, or recomputed).
    pub eval: EvalStats,
}

/// How a search run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchOutcome {
    /// No candidate improved the current configuration (the normal,
    /// fixed-point termination of Algorithm 4.1).
    #[default]
    Converged,
    /// The wall-clock deadline passed; the result is best-so-far.
    DeadlineExceeded,
    /// The evaluation or memory budget ran out; the result is
    /// best-so-far.
    BudgetExhausted,
}

impl From<BudgetExceeded> for SearchOutcome {
    fn from(e: BudgetExceeded) -> Self {
        match e {
            BudgetExceeded::Deadline => SearchOutcome::DeadlineExceeded,
            BudgetExceeded::Evaluations | BudgetExceeded::Memory => SearchOutcome::BudgetExhausted,
        }
    }
}

/// The search outcome.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The selected physical schema.
    pub pschema: PSchema,
    /// Its workload cost.
    pub cost: f64,
    /// Full cost report (per-query costs, catalog, DDL).
    pub report: CostReport,
    /// Per-iteration trajectory (index 0 is the starting configuration).
    pub trajectory: Vec<IterationReport>,
    /// Whether the search converged or stopped on a budget limit.
    pub outcome: SearchOutcome,
    /// Total candidates dropped across all iterations (panics, apply or
    /// costing failures, non-finite costs) — including iterations that
    /// did not improve and are absent from `trajectory`.
    pub dropped_candidates: u64,
    /// One line per dropped candidate, naming the move and why it was
    /// dropped (e.g. `optimizing publish (candidate inline(Aka)): ...`).
    pub dropped_diagnostics: Vec<String>,
    /// Cumulative evaluator counters across the whole run.
    pub eval: EvalStats,
    /// Work-stealing telemetry accumulated across every iteration's
    /// candidate evaluation (`None` when the search ran sequentially or
    /// under the chunked scheduler, which has no telemetry to report).
    pub sched: Option<StealReport>,
}

/// Run Algorithm 4.1 from an arbitrary source schema.
pub fn greedy_search(
    schema: &Schema,
    stats: &Statistics,
    workload: &Workload,
    config: &SearchConfig,
) -> Result<SearchResult, CostError> {
    let start = match config.start {
        StartPoint::MaximallyInlined => derive_pschema(schema, InlineStyle::Inlined),
        StartPoint::MaximallyOutlined => derive_pschema(schema, InlineStyle::Outlined),
    };
    greedy_search_from(start, stats, workload, config)
}

/// Run Algorithm 4.1 from a specific initial p-schema.
pub fn greedy_search_from(
    initial: PSchema,
    stats: &Statistics,
    workload: &Workload,
    config: &SearchConfig,
) -> Result<SearchResult, CostError> {
    let set = config.transformation_set();
    let evaluator = CostEvaluator::with_memoize(config.optimizer, config.memoize);
    let mut current = initial;
    let mut report = evaluator.evaluate_full(&current, stats, workload)?;
    let mut cost = report.total;
    if !cost.is_finite() {
        return Err(CostError::NonFiniteCost {
            context: "initial configuration".to_string(),
            value: cost,
        });
    }
    let mut eval_snapshot = evaluator.stats();
    let mut trajectory = vec![IterationReport {
        iteration: 0,
        cost,
        candidates: 0,
        dropped: 0,
        applied: None,
        eval: eval_snapshot,
    }];

    let governor = config.budget.as_ref().map(Budget::start);
    let mut outcome = SearchOutcome::Converged;
    let mut dropped_candidates: u64 = 0;
    let mut dropped_diagnostics: Vec<String> = Vec::new();
    let mut sched: Option<StealReport> = None;
    let mut iteration = 0;
    loop {
        iteration += 1;
        if config.max_iterations != 0 && iteration > config.max_iterations {
            break;
        }
        if let Some(exceeded) = budget_exceeded(&governor) {
            outcome = exceeded.into();
            break;
        }
        let candidates = enumerate_candidates(&current, &set);
        let (evaluated, diagnostics, dropped, iteration_sched) = evaluate_candidates(
            &current,
            &report,
            &candidates,
            stats,
            workload,
            &evaluator,
            config,
            governor.as_ref(),
            // Seed the victim-selection PRNG deterministically per call:
            // the iteration number is stable across runs, so a given
            // (run, iteration, worker) always probes victims in the same
            // order.
            iteration as u64,
        );
        if let Some(r) = iteration_sched {
            sched.get_or_insert_with(StealReport::default).absorb(&r);
        }
        dropped_candidates += dropped as u64;
        dropped_diagnostics.extend(diagnostics);
        let best = evaluated
            .into_iter()
            .min_by(|a, b| a.2.total.total_cmp(&b.2.total));
        let Some((t, pschema, new_report)) = best else {
            // Nothing priced. If the budget ran out mid-iteration that is
            // why; otherwise we are at a fixed point.
            if let Some(exceeded) = budget_exceeded(&governor) {
                outcome = exceeded.into();
            }
            break;
        };
        if new_report.total >= cost {
            break;
        }
        // Both costs are finite here: the initial cost was checked above
        // and evaluate_candidates drops non-finite candidates.
        let improvement = (cost - new_report.total) / cost.max(f64::MIN_POSITIVE);
        current = pschema;
        cost = new_report.total;
        report = new_report;
        let now = evaluator.stats();
        trajectory.push(IterationReport {
            iteration,
            cost,
            candidates: candidates.len(),
            dropped,
            applied: Some(t.to_string()),
            eval: now.since(&eval_snapshot),
        });
        eval_snapshot = now;
        if config.improvement_threshold > 0.0 && improvement < config.improvement_threshold {
            break;
        }
        if let Some(exceeded) = budget_exceeded(&governor) {
            outcome = exceeded.into();
            break;
        }
    }

    Ok(SearchResult {
        pschema: current,
        cost,
        report,
        trajectory,
        outcome,
        dropped_candidates,
        dropped_diagnostics,
        eval: evaluator.stats(),
        sched,
    })
}

fn budget_exceeded(governor: &Option<Governor>) -> Option<BudgetExceeded> {
    governor.as_ref().and_then(|g| g.checkpoint().err())
}

/// Coarse per-candidate materialization estimate charged against
/// [`Budget::max_memory_bytes`]: the candidate p-schema, its mapping, and
/// the translated statements scale with the number of types.
fn estimate_candidate_bytes(pschema: &PSchema) -> u64 {
    pschema.schema().len() as u64 * 4096
}

/// One candidate's evaluation verdict (see `evaluate_candidates`).
enum Eval {
    /// Applied and priced to a finite cost. The report is boxed to keep
    /// the enum (and the per-candidate result vectors) small.
    Priced(Transformation, PSchema, Box<CostReport>),
    /// Failed to apply/price, hit an injected fault, or priced non-finite.
    /// Carries a diagnostic naming the move and the reason, when known.
    Dropped(Option<String>),
    /// Not evaluated: the budget was already exhausted.
    Skipped,
}

/// Evaluate all candidates, optionally in parallel, with per-candidate
/// fault isolation: a candidate that panics, fails to apply or price, or
/// prices to a non-finite cost is dropped and counted (a candidate that
/// cannot be priced cannot be chosen — and must not abort the search).
/// Candidates are priced incrementally against the parent's report
/// through the shared evaluator (one lock-striped memo serving every
/// worker). Returns the priced survivors, one diagnostic per dropped
/// candidate, the dropped count, and — under the work-stealing
/// scheduler — the iteration's scheduling telemetry.
type PricedCandidate = (Transformation, PSchema, CostReport);

#[allow(clippy::too_many_arguments)]
fn evaluate_candidates(
    current: &PSchema,
    parent: &CostReport,
    candidates: &[Transformation],
    stats: &Statistics,
    workload: &Workload,
    evaluator: &CostEvaluator,
    config: &SearchConfig,
    governor: Option<&Governor>,
    steal_seed: u64,
) -> (
    Vec<PricedCandidate>,
    Vec<String>,
    usize,
    Option<StealReport>,
) {
    let evaluate_one = |t: &Transformation| -> Eval {
        if let Some(g) = governor {
            if g.checkpoint().is_err() {
                return Eval::Skipped;
            }
            g.note_evaluations(1);
        }
        if fault::failpoint("core.search.candidate", &t.to_string()).is_err() {
            return Eval::Dropped(Some(format!("{t}: injected fault")));
        }
        let (pschema, delta) = match apply(current, t) {
            Ok(applied) => applied,
            Err(e) => return Eval::Dropped(Some(format!("{t}: {e}"))),
        };
        let report = match evaluator.evaluate_incremental(&pschema, stats, workload, parent, &delta)
        {
            Ok(report) => report,
            Err(e) => return Eval::Dropped(Some(e.with_transformation(t).to_string())),
        };
        if !report.total.is_finite() {
            return Eval::Dropped(Some(format!("{t}: non-finite cost {}", report.total)));
        }
        if let Some(g) = governor {
            g.note_memory(estimate_candidate_bytes(&pschema));
        }
        Eval::Priced(t.clone(), pschema, Box::new(report))
    };
    let threads = if config.parallel {
        legodb_util::par::available_threads()
    } else {
        1
    };
    let mut priced = Vec::new();
    let mut diagnostics = Vec::new();
    let mut dropped = 0;
    let (results, sched) = match config.scheduler {
        Scheduler::WorkStealing if config.parallel => {
            let (results, report) = steal_map_catch(candidates, threads, steal_seed, evaluate_one);
            (results, Some(report))
        }
        _ => (scoped_map_catch(candidates, threads, evaluate_one), None),
    };
    for (t, result) in candidates.iter().zip(results) {
        match result {
            Ok(Eval::Priced(t, pschema, report)) => priced.push((t, pschema, *report)),
            Ok(Eval::Dropped(msg)) => {
                dropped += 1;
                diagnostics.push(msg.unwrap_or_else(|| format!("{t}: dropped")));
            }
            Err(_) => {
                dropped += 1;
                diagnostics.push(format!("{t}: panicked during evaluation"));
            }
            Ok(Eval::Skipped) => {}
        }
    }
    (priced, diagnostics, dropped, sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use legodb_schema::parse_schema;

    fn schema() -> Schema {
        parse_schema(
            "type IMDB = imdb[ Show{0,*} ]
             type Show = show [ title[ String ], year[ Integer ],
                                description[ String ], Aka{0,*} ]
             type Aka = aka[ String ]",
        )
        .unwrap()
    }

    fn stats() -> Statistics {
        let mut s = Statistics::new();
        s.set_count(&["imdb"], 1)
            .set_count(&["imdb", "show"], 20000)
            .set_size(&["imdb", "show", "title"], 50.0)
            .set_distinct(&["imdb", "show", "title"], 20000)
            .set_count(&["imdb", "show", "year"], 20000)
            .set_base(&["imdb", "show", "year"], 1900, 2000, 100)
            .set_count(&["imdb", "show", "description"], 20000)
            .set_size(&["imdb", "show", "description"], 2000.0)
            .set_count(&["imdb", "show", "aka"], 60000)
            .set_size(&["imdb", "show", "aka"], 40.0);
        s
    }

    fn lookup_workload() -> Workload {
        Workload::from_sources([(
            "lookup",
            r#"FOR $v IN document("x")/imdb/show WHERE $v/title = c1 RETURN $v/year"#,
            1.0,
        )])
        .unwrap()
    }

    #[test]
    fn search_monotonically_improves() {
        let result = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig {
                start: StartPoint::MaximallyInlined,
                ..Default::default()
            },
        )
        .unwrap();
        let costs: Vec<f64> = result.trajectory.iter().map(|r| r.cost).collect();
        assert!(costs.windows(2).all(|w| w[1] <= w[0]), "{costs:?}");
        assert_eq!(result.cost, *costs.last().unwrap());
    }

    #[test]
    fn lookup_workload_fragments_the_fat_table() {
        if fault::env_enabled() {
            // Under the CI fault-injection pass, candidates this assertion
            // depends on may be deterministically dropped; the robustness
            // invariants are covered by the fault-injection properties.
            return;
        }
        // Show carries a 2 KB description and is only ever probed by
        // title: the search should fragment it (outline the filter column
        // for a narrow selection scan, or the fat description) — paper §2:
        // "the large Description element need not be inlined unless it is
        // frequently queried".
        let result = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig {
                start: StartPoint::MaximallyInlined,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            result.trajectory.len() >= 2,
            "expected at least one outline move"
        );
        assert!(
            result.pschema.schema().len() > 3,
            "expected new outlined types:\n{}",
            result.pschema.schema()
        );
        let initial = result.trajectory[0].cost;
        assert!(
            result.cost < 0.5 * initial,
            "cost {initial} -> {} too small a win",
            result.cost
        );
    }

    #[test]
    fn publish_workload_keeps_narrow_columns_inline() {
        // With only narrow columns there is nothing to gain from
        // fragmentation: publishing pays a join per extra table.
        let mut narrow_stats = stats();
        narrow_stats.set_size(&["imdb", "show", "description"], 20.0);
        let publish = Workload::from_sources([(
            "publish",
            r#"FOR $v IN document("x")/imdb/show RETURN $v"#,
            1.0,
        )])
        .unwrap();
        let result = greedy_search(
            &schema(),
            &narrow_stats,
            &publish,
            &SearchConfig {
                start: StartPoint::MaximallyInlined,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            result.trajectory.len(),
            1,
            "publish over narrow columns should stay fully inlined:\n{}",
            result.pschema.schema()
        );
    }

    #[test]
    fn both_starts_converge_to_similar_costs() {
        if fault::env_enabled() {
            // Injected faults can prune the two starts' move sets
            // asymmetrically; skip the quantitative comparison.
            return;
        }
        let w = lookup_workload();
        let si = greedy_search(
            &schema(),
            &stats(),
            &w,
            &SearchConfig {
                start: StartPoint::MaximallyInlined,
                ..Default::default()
            },
        )
        .unwrap();
        let so = greedy_search(
            &schema(),
            &stats(),
            &w,
            &SearchConfig {
                start: StartPoint::MaximallyOutlined,
                ..Default::default()
            },
        )
        .unwrap();
        let ratio = si.cost / so.cost;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "si={} so={} should converge to similar costs",
            si.cost,
            so.cost
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let w = lookup_workload();
        let seq = greedy_search(
            &schema(),
            &stats(),
            &w,
            &SearchConfig {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        let par = greedy_search(
            &schema(),
            &stats(),
            &w,
            &SearchConfig {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((seq.cost - par.cost).abs() < 1e-9);
    }

    #[test]
    fn all_schedulers_agree_bit_for_bit() {
        // The PR's hard invariant: sequential, chunked, and work-stealing
        // candidate evaluation price identically — same final cost bits,
        // same trajectory, same applied moves.
        let w = lookup_workload();
        let seq = greedy_search(
            &schema(),
            &stats(),
            &w,
            &SearchConfig {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(seq.sched.is_none(), "sequential runs report no telemetry");
        for scheduler in [Scheduler::Chunked, Scheduler::WorkStealing] {
            let par = greedy_search(
                &schema(),
                &stats(),
                &w,
                &SearchConfig {
                    parallel: true,
                    scheduler,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                seq.cost.to_bits(),
                par.cost.to_bits(),
                "scheduler {scheduler}"
            );
            assert_eq!(seq.trajectory.len(), par.trajectory.len());
            for (a, b) in seq.trajectory.iter().zip(&par.trajectory) {
                assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "scheduler {scheduler}");
                assert_eq!(a.applied, b.applied, "scheduler {scheduler}");
            }
            match scheduler {
                Scheduler::WorkStealing => {
                    let sched = par.sched.expect("work-stealing telemetry");
                    assert!(sched.items() > 0);
                    assert!(sched.workers >= 1);
                }
                Scheduler::Chunked => assert!(par.sched.is_none()),
            }
        }
    }

    #[test]
    fn work_stealing_contains_injected_panics() {
        // Panic isolation must hold for stolen tasks exactly as for
        // chunk-local ones: every candidate panics, the search survives.
        let _guard =
            fault::override_for_test(fault::FaultConfig::always(11, fault::FaultMode::Panic));
        let result = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig {
                parallel: true,
                scheduler: Scheduler::WorkStealing,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.outcome, SearchOutcome::Converged);
        assert!(result.dropped_candidates > 0);
        assert_eq!(result.trajectory.len(), 1);
    }

    #[test]
    fn zero_deadline_returns_initial_configuration_as_best_so_far() {
        let result = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig {
                budget: Some(Budget::none().with_deadline(std::time::Duration::ZERO)),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.outcome, SearchOutcome::DeadlineExceeded);
        assert_eq!(result.trajectory.len(), 1);
        assert_eq!(result.cost, result.trajectory[0].cost);
    }

    #[test]
    fn evaluation_budget_stops_with_best_so_far() {
        let unbounded = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig::default(),
        )
        .unwrap();
        let bounded = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig {
                budget: Some(Budget::none().with_max_evaluations(1)),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(bounded.outcome, SearchOutcome::BudgetExhausted);
        // Best-so-far never exceeds the starting cost, and a bounded
        // search cannot beat the unbounded one.
        assert!(bounded.cost <= bounded.trajectory[0].cost);
        assert!(bounded.cost >= unbounded.cost);
    }

    #[test]
    fn memory_budget_stops_with_best_so_far() {
        let result = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig {
                budget: Some(Budget::none().with_max_memory_bytes(1)),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.outcome, SearchOutcome::BudgetExhausted);
        assert!(result.cost <= result.trajectory[0].cost);
    }

    #[test]
    fn injected_candidate_panics_are_contained() {
        let _guard =
            fault::override_for_test(fault::FaultConfig::always(3, fault::FaultMode::Panic));
        for parallel in [false, true] {
            let result = greedy_search(
                &schema(),
                &stats(),
                &lookup_workload(),
                &SearchConfig {
                    parallel,
                    ..Default::default()
                },
            )
            .unwrap();
            // Every candidate panicked, so the search must hold the
            // initial configuration and report the drops.
            assert_eq!(result.outcome, SearchOutcome::Converged);
            assert!(result.dropped_candidates > 0, "parallel={parallel}");
            assert_eq!(result.trajectory.len(), 1);
            assert_eq!(result.cost, result.trajectory[0].cost);
        }
    }

    #[test]
    fn memoization_does_not_change_the_search() {
        // Two independent branches: moves in one branch can reuse the
        // other branch's query pricing.
        let two_branch = parse_schema(
            "type IMDB = imdb[ Show{0,*}, Studio{0,*} ]
             type Show = show [ title[ String ], year[ Integer ],
                                description[ String ], Aka{0,*} ]
             type Aka = aka[ String ]
             type Studio = studio[ sname[ String ],
                                   addr[ street[ String ], city[ String ] ] ]",
        )
        .unwrap();
        let mut s = stats();
        s.set_count(&["imdb", "studio"], 500)
            .set_size(&["imdb", "studio", "sname"], 30.0)
            .set_distinct(&["imdb", "studio", "sname"], 500)
            .set_size(&["imdb", "studio", "addr", "street"], 2000.0)
            .set_size(&["imdb", "studio", "addr", "city"], 20.0);
        let w = Workload::from_sources([
            (
                "lookup",
                r#"FOR $v IN document("x")/imdb/show WHERE $v/title = c1 RETURN $v/year"#,
                0.5,
            ),
            (
                "studios",
                r#"FOR $u IN document("x")/imdb/studio WHERE $u/sname = c2 RETURN $u/sname"#,
                0.5,
            ),
        ])
        .unwrap();
        let on = greedy_search(&two_branch, &s, &w, &SearchConfig::default()).unwrap();
        let off = greedy_search(
            &two_branch,
            &s,
            &w,
            &SearchConfig {
                memoize: false,
                ..Default::default()
            },
        )
        .unwrap();
        // Bit-identical trajectory and final cost either way.
        assert_eq!(on.cost.to_bits(), off.cost.to_bits());
        assert_eq!(on.trajectory.len(), off.trajectory.len());
        for (a, b) in on.trajectory.iter().zip(&off.trajectory) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.applied, b.applied);
        }
        // The control arm never reuses; the incremental arm does real work
        // avoidance once the search moves past the first iteration.
        assert_eq!(off.eval.reused + off.eval.memo_hits, 0, "{}", off.eval);
        assert!(off.eval.recosted > 0);
        if !fault::env_enabled() {
            assert!(
                on.eval.reused + on.eval.memo_hits > 0,
                "expected some avoided pricings: {}",
                on.eval
            );
        }
    }

    #[test]
    fn dropped_candidates_are_named_in_diagnostics() {
        let _guard =
            fault::override_for_test(fault::FaultConfig::always(7, fault::FaultMode::Error));
        let result = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig::default(),
        )
        .unwrap();
        assert!(result.dropped_candidates > 0);
        assert_eq!(
            result.dropped_diagnostics.len() as u64,
            result.dropped_candidates
        );
        // Every diagnostic names the move (inlined start => outline moves).
        assert!(
            result
                .dropped_diagnostics
                .iter()
                .all(|d| d.contains("outline(")),
            "{:?}",
            result.dropped_diagnostics
        );
    }

    #[test]
    fn max_iterations_caps_the_search() {
        let result = greedy_search(
            &schema(),
            &stats(),
            &lookup_workload(),
            &SearchConfig {
                start: StartPoint::MaximallyOutlined,
                max_iterations: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(result.trajectory.len() <= 2);
    }
}
