//! The [`LegoDb`] façade: the paper's Figure 7 architecture in one struct.
//! Inputs are purely XML-level — schema, statistics, XQuery workload —
//! honoring the logical/physical independence principle: callers never
//! touch relational artifacts except through the resulting mapping.

use crate::cost::{pschema_cost, CostError, CostReport};
use crate::search::{greedy_search_from, SearchConfig, SearchOutcome, SearchResult, StartPoint};
use crate::transform::{apply, Transformation};
use crate::workload::Workload;
use legodb_optimizer::OptimizerConfig;
use legodb_pschema::{derive_pschema, InlineStyle, Mapping, PSchema};
use legodb_schema::Schema;
use legodb_util::governor::Budget;
use legodb_xml::stats::Statistics;

/// The LegoDB mapping engine.
#[derive(Debug, Clone)]
pub struct LegoDb {
    schema: Schema,
    stats: Statistics,
    workload: Workload,
    search: SearchConfig,
}

/// The engine's output: a chosen configuration plus its full report.
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// The chosen physical schema.
    pub pschema: PSchema,
    /// The relational mapping (catalog, DDL, per-type table mappings).
    pub mapping: Mapping,
    /// Workload cost of the chosen configuration.
    pub cost: f64,
    /// Per-query costs.
    pub per_query: Vec<(String, f64)>,
    /// The greedy trajectory.
    pub trajectory: Vec<crate::search::IterationReport>,
    /// Whether the search converged or stopped on a budget limit (the
    /// configuration is best-so-far either way).
    pub outcome: SearchOutcome,
    /// Candidates dropped across the search (panics, pricing failures,
    /// non-finite costs).
    pub dropped_candidates: u64,
    /// One diagnostic line per dropped candidate, naming the move.
    pub dropped_diagnostics: Vec<String>,
    /// Incremental-costing counters (reused / memo-served / recomputed
    /// query pricings) across the search.
    pub eval: crate::cost::EvalStats,
    /// Work-stealing scheduler telemetry across the search (`None` when
    /// candidates were evaluated sequentially or chunked).
    pub sched: Option<legodb_util::StealReport>,
}

impl From<SearchResult> for EngineResult {
    fn from(r: SearchResult) -> Self {
        EngineResult {
            pschema: r.pschema,
            mapping: r.report.mapping.clone(),
            cost: r.cost,
            per_query: r.report.per_query(),
            trajectory: r.trajectory,
            outcome: r.outcome,
            dropped_candidates: r.dropped_candidates,
            dropped_diagnostics: r.dropped_diagnostics,
            eval: r.eval,
            sched: r.sched,
        }
    }
}

impl LegoDb {
    /// Create an engine for an application (schema + statistics +
    /// workload), with default search settings.
    pub fn new(schema: Schema, stats: Statistics, workload: Workload) -> LegoDb {
        LegoDb {
            schema,
            stats,
            workload,
            search: SearchConfig::default(),
        }
    }

    /// Override the search configuration.
    pub fn with_search_config(mut self, search: SearchConfig) -> LegoDb {
        self.search = search;
        self
    }

    /// Bound the search by a resource budget (deadline, evaluations,
    /// memory estimate); on exhaustion [`LegoDb::optimize`] returns its
    /// best-so-far configuration with the corresponding
    /// [`SearchOutcome`].
    pub fn with_budget(mut self, budget: Budget) -> LegoDb {
        self.search.budget = Some(budget);
        self
    }

    /// Replace the workload (e.g. to price the same schema under a
    /// different query mix).
    pub fn with_workload(mut self, workload: Workload) -> LegoDb {
        self.workload = workload;
        self
    }

    /// The source schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The statistics.
    pub fn stats(&self) -> &Statistics {
        &self.stats
    }

    /// The workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Run the greedy search and return the chosen configuration.
    pub fn optimize(&self) -> Result<EngineResult, CostError> {
        let initial = self.initial_pschema(self.search.start);
        greedy_search_from(initial, &self.stats, &self.workload, &self.search).map(Into::into)
    }

    /// The initial p-schema for a starting point.
    pub fn initial_pschema(&self, start: StartPoint) -> PSchema {
        match start {
            StartPoint::MaximallyInlined => derive_pschema(&self.schema, InlineStyle::Inlined),
            StartPoint::MaximallyOutlined => derive_pschema(&self.schema, InlineStyle::Outlined),
        }
    }

    /// The paper's ALL-INLINED baseline (Figure 4(a) / §5.3): unions are
    /// first converted to optional groups (nullable columns), then
    /// everything inlineable is inlined.
    pub fn all_inlined_pschema(&self) -> PSchema {
        let mut current = derive_pschema(&self.schema, InlineStyle::Inlined);
        // Convert unions to options wherever applicable, repeatedly (an
        // application may expose another site), then re-derive to inline
        // the freed structure.
        loop {
            let candidates = crate::transform::enumerate_candidates(
                &current,
                &crate::transform::TransformationSet {
                    union_to_options: true,
                    ..Default::default()
                },
            );
            let Some(t) = candidates.first() else { break };
            match apply(&current, t) {
                Ok((next, _)) => current = next,
                Err(_) => break,
            }
        }
        derive_pschema(current.schema(), InlineStyle::Inlined)
    }

    /// Price an arbitrary p-schema under this engine's statistics and
    /// workload (`GetPSchemaCost`).
    pub fn cost_of(&self, pschema: &PSchema) -> Result<CostReport, CostError> {
        pschema_cost(pschema, &self.stats, &self.workload, &self.search.optimizer)
    }

    /// Price a p-schema under a *different* workload (used by the §5.3
    /// sensitivity experiment: configurations tuned for one mix are priced
    /// across the whole spectrum).
    pub fn cost_under(
        &self,
        pschema: &PSchema,
        workload: &Workload,
    ) -> Result<CostReport, CostError> {
        pschema_cost(pschema, &self.stats, workload, &self.search.optimizer)
    }

    /// Apply one transformation to a p-schema (pass-through convenience).
    pub fn transform(
        &self,
        pschema: &PSchema,
        t: &Transformation,
    ) -> Result<PSchema, crate::transform::TransformError> {
        apply(pschema, t).map(|(pschema, _)| pschema)
    }

    /// The optimizer configuration used for costing.
    pub fn optimizer_config(&self) -> &OptimizerConfig {
        &self.search.optimizer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legodb_schema::parse_schema;

    fn engine() -> LegoDb {
        let schema = parse_schema(
            "type IMDB = imdb[ Show{0,*} ]
             type Show = show [ title[ String ], year[ Integer ], ( Movie | TV ) ]
             type Movie = box_office[ Integer ]
             type TV = seasons[ Integer ]",
        )
        .unwrap();
        let mut stats = Statistics::new();
        stats
            .set_count(&["imdb"], 1)
            .set_count(&["imdb", "show"], 10000)
            .set_size(&["imdb", "show", "title"], 50.0)
            .set_distinct(&["imdb", "show", "title"], 10000)
            .set_count(&["imdb", "show", "box_office"], 7000)
            .set_count(&["imdb", "show", "seasons"], 3000);
        let workload = Workload::from_sources([(
            "lookup",
            r#"FOR $v IN document("x")/imdb/show WHERE $v/title = c1 RETURN $v/year"#,
            1.0,
        )])
        .unwrap();
        LegoDb::new(schema, stats, workload)
    }

    #[test]
    fn optimize_returns_a_priced_configuration() {
        let result = engine().optimize().unwrap();
        assert!(result.cost > 0.0);
        assert!(!result.mapping.catalog.is_empty());
        assert!(!result.per_query.is_empty());
    }

    #[test]
    fn all_inlined_flattens_unions_into_nullable_columns() {
        let e = engine();
        let p = e.all_inlined_pschema();
        let s = p.schema();
        assert!(s.get_str("Movie").is_none(), "{s}");
        assert!(s.get_str("TV").is_none(), "{s}");
        // box_office is now a (nullable) column of Show.
        let report = e.cost_of(&p).unwrap();
        let show = report.mapping.catalog.table("Show").unwrap();
        let bo = show.column("box_office").expect("inlined column");
        assert!(bo.nullable);
    }

    #[test]
    fn optimize_surfaces_the_search_outcome() {
        let converged = engine().optimize().unwrap();
        assert_eq!(converged.outcome, SearchOutcome::Converged);
        let deadline = engine()
            .with_budget(Budget::none().with_deadline(std::time::Duration::ZERO))
            .optimize()
            .unwrap();
        assert_eq!(deadline.outcome, SearchOutcome::DeadlineExceeded);
        assert!(deadline.cost > 0.0);
        assert!(!deadline.mapping.catalog.is_empty());
    }

    #[test]
    fn cost_under_prices_alternative_workloads() {
        let e = engine();
        let p = e.initial_pschema(StartPoint::MaximallyInlined);
        let publish = Workload::from_sources([(
            "publish",
            r#"FOR $v IN document("x")/imdb/show RETURN $v"#,
            1.0,
        )])
        .unwrap();
        let lookup_cost = e.cost_of(&p).unwrap().total;
        let publish_cost = e.cost_under(&p, &publish).unwrap().total;
        assert!(publish_cost > lookup_cost);
    }
}
