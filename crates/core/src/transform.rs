//! The schema transformations of §4.1. Each rewriting takes a valid
//! p-schema and returns a new valid p-schema that validates the same set
//! of documents (except [`Transformation::UnionToOptions`], which widens
//! the language — the paper flags the same caveat for [19]'s heuristic).
//!
//! Transformations are *first enumerated* over a p-schema (yielding the
//! candidate moves of one greedy iteration) and *then applied*; both steps
//! are pure.

use legodb_pschema::{PSchema, StratifyError};
use legodb_relational::Layout;
use legodb_schema::{NameTest, Schema, Type, TypeName};
use std::fmt;

/// One schema rewriting.
#[derive(Debug, Clone, PartialEq)]
pub enum Transformation {
    /// Replace the single reference to a type with its definition,
    /// removing the type (a table disappears; its columns move into the
    /// parent's table).
    Inline(TypeName),
    /// Hoist the nested element at `rel` (element-name steps from the
    /// type's top element) into a fresh named type (a new table).
    Outline {
        /// The type containing the element.
        in_type: TypeName,
        /// Element-name path to the element to hoist.
        rel: Vec<String>,
    },
    /// Distribute a union over its containing element:
    /// `show[c, (Movie | TV)]` ⇒ `Show_Part1 | Show_Part2` with the common
    /// content duplicated into each part (the paper's two union laws
    /// composed, Figure 4(c)). Horizontal partitioning.
    UnionDistribute {
        /// The element type whose content holds the union.
        in_type: TypeName,
    },
    /// `T{m,n}` with `m ≥ 1` ⇒ first occurrence inlined as columns,
    /// remainder `T{m-1,n-1}` (the `a+ == a, a*` law).
    RepetitionSplit {
        /// The type whose definition holds the repetition.
        in_type: TypeName,
        /// The repeated type.
        target: TypeName,
    },
    /// Split a wildcard type `~[t]` into a materialized name plus the
    /// remainder: `(nyt[t] | ~!nyt[t])`. Horizontal partitioning by tag.
    WildcardMaterialize {
        /// The wildcard type to split.
        wildcard_type: TypeName,
        /// The tag name to materialize.
        name: String,
    },
    /// Replace a union of group types with a sequence of optional groups:
    /// `(Movie | TV)` ⇒ `(box_office, video_sales)?, (seasons, ...)?`.
    /// Widens the document language (`t1|t2 ⊂ t1?,t2?`); inlines union
    /// members as nullable columns ([19]'s treatment).
    UnionToOptions {
        /// The type whose definition holds the union.
        in_type: TypeName,
    },
    /// Assign the relation a type maps to a storage layout (row heap ⇄
    /// column store). Leaves the schema untouched — this is the purely
    /// physical dimension of the design space, priced through the same
    /// cost seam as the logical rewritings.
    SetLayout {
        /// The type whose relation changes layout.
        type_name: TypeName,
        /// The layout to assign.
        layout: Layout,
    },
}

impl fmt::Display for Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transformation::Inline(t) => write!(f, "inline({t})"),
            Transformation::Outline { in_type, rel } => {
                write!(f, "outline({in_type}/{})", rel.join("/"))
            }
            Transformation::UnionDistribute { in_type } => write!(f, "union-dist({in_type})"),
            Transformation::RepetitionSplit { in_type, target } => {
                write!(f, "rep-split({in_type}, {target})")
            }
            Transformation::WildcardMaterialize {
                wildcard_type,
                name,
            } => {
                write!(f, "wildcard({wildcard_type}, {name})")
            }
            Transformation::UnionToOptions { in_type } => write!(f, "union-to-opts({in_type})"),
            Transformation::SetLayout { type_name, layout } => {
                write!(f, "set-layout({type_name}, {layout})")
            }
        }
    }
}

/// Why a transformation cannot be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// The named type does not exist.
    UnknownType(TypeName),
    /// Inline preconditions violated (shared, recursive, or in the named
    /// layer).
    NotInlinable(TypeName, &'static str),
    /// No matching site for the transformation.
    NoSite(String),
    /// The rewriting produced a non-stratified schema (a bug).
    Stratify(StratifyError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::UnknownType(t) => write!(f, "unknown type {t}"),
            TransformError::NotInlinable(t, why) => write!(f, "cannot inline {t}: {why}"),
            TransformError::NoSite(what) => write!(f, "no site for {what}"),
            TransformError::Stratify(e) => write!(f, "transformation broke stratification: {e}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<StratifyError> for TransformError {
    fn from(e: StratifyError) -> Self {
        TransformError::Stratify(e)
    }
}

/// The named types a transformation touched, computed by diffing the
/// schema before and after [`apply`]. This is the seam incremental
/// costing hangs off: a candidate's cost can only differ from its
/// parent's where the delta (plus the fingerprint cascade it induces —
/// parents of a removed type, children of a rewritten one) reaches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransformDelta {
    /// Types present after but not before.
    pub created: Vec<TypeName>,
    /// Types present before but not after.
    pub removed: Vec<TypeName>,
    /// Types present in both whose definition changed.
    pub rewritten: Vec<TypeName>,
}

impl TransformDelta {
    /// Diff two schemas into a delta (declaration order).
    pub fn between(before: &Schema, after: &Schema) -> TransformDelta {
        let mut delta = TransformDelta::default();
        for (name, old_def) in before.iter() {
            match after.get(name) {
                None => delta.removed.push(name.clone()),
                Some(new_def) if new_def != old_def => delta.rewritten.push(name.clone()),
                Some(_) => {}
            }
        }
        for (name, _) in after.iter() {
            if before.get(name).is_none() {
                delta.created.push(name.clone());
            }
        }
        delta
    }

    /// True when the transformation was a no-op on the schema.
    pub fn is_empty(&self) -> bool {
        self.created.is_empty() && self.removed.is_empty() && self.rewritten.is_empty()
    }

    /// All touched type names (created ∪ removed ∪ rewritten).
    pub fn touched(&self) -> impl Iterator<Item = &TypeName> {
        self.created
            .iter()
            .chain(self.removed.iter())
            .chain(self.rewritten.iter())
    }
}

impl fmt::Display for TransformDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let join = |v: &[TypeName]| {
            v.iter()
                .map(TypeName::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        write!(
            f,
            "+[{}] -[{}] ~[{}]",
            join(&self.created),
            join(&self.removed),
            join(&self.rewritten)
        )
    }
}

/// Which transformation kinds the search may use.
#[derive(Debug, Clone, Default)]
pub struct TransformationSet {
    /// Allow inlining.
    pub inline: bool,
    /// Allow outlining.
    pub outline: bool,
    /// Allow union distribution.
    pub union_distribute: bool,
    /// Allow repetition splitting.
    pub repetition_split: bool,
    /// Wildcard tags that may be materialized (empty = never).
    pub wildcard_names: Vec<String>,
    /// Allow union-to-options.
    pub union_to_options: bool,
    /// Allow storage-layout flips (row heap ⇄ column store).
    pub layouts: bool,
}

impl TransformationSet {
    /// Only inline moves — the paper's prototype greedy-si setting.
    pub fn inline_only() -> Self {
        TransformationSet {
            inline: true,
            ..Default::default()
        }
    }

    /// Only outline moves — the greedy-so setting.
    pub fn outline_only() -> Self {
        TransformationSet {
            outline: true,
            ..Default::default()
        }
    }

    /// Inline + outline (a richer greedy).
    pub fn inline_outline() -> Self {
        TransformationSet {
            inline: true,
            outline: true,
            ..Default::default()
        }
    }

    /// Everything, with the given wildcard hints.
    pub fn all(wildcard_names: Vec<String>) -> Self {
        TransformationSet {
            inline: true,
            outline: true,
            union_distribute: true,
            repetition_split: true,
            wildcard_names,
            union_to_options: true,
            layouts: true,
        }
    }

    /// Only layout flips — pure physical design over a fixed schema.
    pub fn layouts_only() -> Self {
        TransformationSet {
            layouts: true,
            ..Default::default()
        }
    }
}

/// Enumerate every applicable transformation on `pschema` from the allowed
/// set, in deterministic order.
pub fn enumerate_candidates(pschema: &PSchema, set: &TransformationSet) -> Vec<Transformation> {
    let schema = pschema.schema();
    let mut out = Vec::new();
    for (name, def) in schema.iter() {
        if set.inline && inlinable(schema, name).is_ok() {
            out.push(Transformation::Inline(name.clone()));
        }
        if set.outline {
            for rel in outline_sites(def) {
                out.push(Transformation::Outline {
                    in_type: name.clone(),
                    rel,
                });
            }
        }
        if set.union_distribute && union_site(def).is_some() && !schema.is_recursive(name) {
            out.push(Transformation::UnionDistribute {
                in_type: name.clone(),
            });
        }
        if set.repetition_split {
            for target in rep_split_sites(def) {
                out.push(Transformation::RepetitionSplit {
                    in_type: name.clone(),
                    target,
                });
            }
        }
        if !set.wildcard_names.is_empty() {
            // A wildcard-shaped definition — or a definition *containing*
            // an inline wildcard element (which is outlined on the fly).
            let admitting = |nt: &NameTest, tag: &str| nt.is_wildcard() && nt.matches(tag);
            let mut has_wildcard: Vec<&str> = Vec::new();
            match def {
                Type::Element { name: nt, .. } if nt.is_wildcard() => {
                    for tag in &set.wildcard_names {
                        if admitting(nt, tag) {
                            has_wildcard.push(tag);
                        }
                    }
                }
                _ => {
                    if let Some(nt) = find_inline_wildcard(def) {
                        for tag in &set.wildcard_names {
                            if admitting(nt, tag) {
                                has_wildcard.push(tag);
                            }
                        }
                    }
                }
            }
            for tag in has_wildcard {
                out.push(Transformation::WildcardMaterialize {
                    wildcard_type: name.clone(),
                    name: tag.to_string(),
                });
            }
        }
        if set.union_to_options && union_to_options_applicable(schema, def) {
            out.push(Transformation::UnionToOptions {
                in_type: name.clone(),
            });
        }
        if set.layouts {
            // One move per type: flip to the layout it does not have.
            let flipped = match pschema.layout(name) {
                Layout::Row => Layout::Columnar,
                Layout::Columnar => Layout::Row,
            };
            out.push(Transformation::SetLayout {
                type_name: name.clone(),
                layout: flipped,
            });
        }
    }
    // Different walk paths can surface the same move twice (e.g. repeated
    // wildcard hints, or a repetition of the same target at two sites
    // collapsing to one (in_type, target) pair); evaluating a duplicate
    // wastes a full costing pass. Deduplicate preserving first-seen order.
    let mut seen: Vec<Transformation> = Vec::with_capacity(out.len());
    out.retain(|t| {
        if seen.contains(t) {
            false
        } else {
            seen.push(t.clone());
            true
        }
    });
    out
}

/// Apply one transformation, returning the rewritten p-schema together
/// with the [`TransformDelta`] naming the types it created, removed, or
/// rewrote (the input to incremental re-costing).
pub fn apply(
    pschema: &PSchema,
    t: &Transformation,
) -> Result<(PSchema, TransformDelta), TransformError> {
    // Layout flips leave the schema untouched, so a schema diff would be
    // empty; the delta names the flipped type explicitly — its table def
    // (and nothing else) changes, which is exactly what incremental
    // costing must invalidate.
    if let Transformation::SetLayout { type_name, layout } = t {
        if pschema.schema().get(type_name).is_none() {
            return Err(TransformError::UnknownType(type_name.clone()));
        }
        let mut out = pschema.clone();
        out.set_layout(type_name, *layout);
        let delta = TransformDelta {
            rewritten: vec![type_name.clone()],
            ..TransformDelta::default()
        };
        return Ok((out, delta));
    }
    let schema = pschema.schema().clone();
    let rewritten = match t {
        Transformation::Inline(name) => apply_inline(schema, name)?,
        Transformation::Outline { in_type, rel } => apply_outline(schema, in_type, rel)?,
        Transformation::UnionDistribute { in_type } => apply_union_distribute(schema, in_type)?,
        Transformation::RepetitionSplit { in_type, target } => {
            apply_rep_split(schema, in_type, target)?
        }
        Transformation::WildcardMaterialize {
            wildcard_type,
            name,
        } => apply_wildcard(schema, wildcard_type, name)?,
        Transformation::UnionToOptions { in_type } => apply_union_to_options(schema, in_type)?,
        Transformation::SetLayout { .. } => unreachable!("handled above"),
    };
    let delta = TransformDelta::between(pschema.schema(), &rewritten);
    // Layout assignments ride along; entries for types a rewriting
    // removed are dropped by the layout-preserving constructor.
    Ok((
        PSchema::try_new_with_layouts(rewritten, pschema.layouts().clone())?,
        delta,
    ))
}

// ---------------------------------------------------------------- inline

/// Check the paper's inlining preconditions.
fn inlinable(schema: &Schema, name: &TypeName) -> Result<(), TransformError> {
    if name == schema.root() {
        return Err(TransformError::NotInlinable(name.clone(), "root type"));
    }
    if schema.reference_count(name) != 1 {
        return Err(TransformError::NotInlinable(name.clone(), "shared type"));
    }
    if schema.is_recursive(name) {
        return Err(TransformError::NotInlinable(name.clone(), "recursive type"));
    }
    // The single reference must sit in the column world (not inside a
    // multi-valued repetition or union).
    let parents = schema.parents_of(name);
    let parent = parents
        .first()
        .ok_or_else(|| TransformError::NotInlinable(name.clone(), "unreachable type"))?;
    let parent_def = schema
        .get(parent)
        .ok_or_else(|| TransformError::UnknownType(parent.clone()))?;
    if ref_in_named_layer(parent_def, name) {
        return Err(TransformError::NotInlinable(
            name.clone(),
            "multi-valued or union member",
        ));
    }
    Ok(())
}

/// Is any reference to `name` inside a multi-valued repetition or union?
fn ref_in_named_layer(ty: &Type, name: &TypeName) -> bool {
    fn walk(ty: &Type, name: &TypeName, in_named: bool) -> bool {
        match ty {
            Type::Ref(n) => in_named && n == name,
            Type::Element { content, .. } => walk(content, name, false),
            Type::Attribute { .. } | Type::Scalar { .. } | Type::Empty => false,
            Type::Seq(items) => items.iter().any(|t| walk(t, name, in_named)),
            Type::Choice(items) => items.iter().any(|t| walk(t, name, true)),
            Type::Rep { inner, occurs, .. } => walk(inner, name, in_named || occurs.multi_valued()),
        }
    }
    walk(ty, name, false)
}

fn apply_inline(mut schema: Schema, name: &TypeName) -> Result<Schema, TransformError> {
    inlinable(&schema, name)?;
    let def = schema
        .get(name)
        .cloned()
        .ok_or_else(|| TransformError::UnknownType(name.clone()))?;
    let parent = schema
        .parents_of(name)
        .pop()
        .ok_or_else(|| TransformError::NotInlinable(name.clone(), "unreachable type"))?;
    let parent_def = schema
        .get(&parent)
        .cloned()
        .ok_or_else(|| TransformError::UnknownType(parent.clone()))?;
    let replaced = parent_def.map(&mut |t| match t {
        Type::Ref(n) if &n == name => def.clone(),
        other => other,
    });
    schema.set(parent, replaced);
    schema.remove(name);
    schema.garbage_collect();
    Ok(schema)
}

// --------------------------------------------------------------- outline

/// Element-name paths of nested elements eligible for outlining: elements
/// in the column world of the definition (below the top element).
fn outline_sites(def: &Type) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let content = match def {
        Type::Element { content, .. } => content,
        other => other,
    };
    collect_outline_sites(content, &mut Vec::new(), &mut out);
    out
}

fn collect_outline_sites(ty: &Type, prefix: &mut Vec<String>, out: &mut Vec<Vec<String>>) {
    match ty {
        Type::Element {
            name: NameTest::Name(n),
            content,
        } => {
            prefix.push(n.clone());
            out.push(prefix.clone());
            collect_outline_sites(content, prefix, out);
            prefix.pop();
        }
        Type::Seq(items) => items
            .iter()
            .for_each(|t| collect_outline_sites(t, prefix, out)),
        Type::Rep { inner, occurs, .. } if !occurs.multi_valued() => {
            collect_outline_sites(inner, prefix, out)
        }
        _ => {}
    }
}

fn apply_outline(
    mut schema: Schema,
    in_type: &TypeName,
    rel: &[String],
) -> Result<Schema, TransformError> {
    let def = schema
        .get(in_type)
        .cloned()
        .ok_or_else(|| TransformError::UnknownType(in_type.clone()))?;
    let stem = rel
        .last()
        .map(|s| capitalize(s))
        .ok_or_else(|| TransformError::NoSite("outline with empty path".into()))?;
    let fresh = schema.fresh_name(&stem);
    let mut extracted: Option<Type> = None;
    // Sites are paths inside the definition's *content* (the top element
    // itself stays — it names the type's table).
    let rewritten = match def {
        Type::Element { name, content } => {
            let inner = outline_at(*content, rel, &fresh, &mut extracted);
            Type::Element {
                name,
                content: Box::new(inner),
            }
        }
        other => outline_at(other, rel, &fresh, &mut extracted),
    };
    let element = extracted
        .ok_or_else(|| TransformError::NoSite(format!("outline {in_type}/{}", rel.join("/"))))?;
    schema.set(fresh, element);
    schema.set(in_type.clone(), rewritten);
    Ok(schema)
}

/// Replace the element at `rel` with a `Ref` to `fresh`, capturing it.
fn outline_at(ty: Type, rel: &[String], fresh: &TypeName, extracted: &mut Option<Type>) -> Type {
    if rel.is_empty() || extracted.is_some() {
        return ty;
    }
    match ty {
        Type::Element { name, content } => {
            let matches = name.literal() == Some(rel[0].as_str());
            if matches && rel.len() == 1 {
                *extracted = Some(Type::Element { name, content });
                return Type::Ref(fresh.clone());
            }
            if matches {
                let inner = outline_at(*content, &rel[1..], fresh, extracted);
                return Type::Element {
                    name,
                    content: Box::new(inner),
                };
            }
            Type::Element { name, content }
        }
        Type::Seq(items) => Type::seq(
            items
                .into_iter()
                .map(|t| outline_at(t, rel, fresh, extracted)),
        ),
        Type::Rep {
            inner,
            occurs,
            avg_count,
        } if !occurs.multi_valued() => {
            Type::rep_with_count(outline_at(*inner, rel, fresh, extracted), occurs, avg_count)
        }
        other => other,
    }
}

// ------------------------------------------------------ union distribute

/// Find a top-level (column-world) union of type refs in a definition's
/// content; returns the path context needed to rebuild.
fn union_site(def: &Type) -> Option<Vec<TypeName>> {
    let content = match def {
        Type::Element { content, .. } => content.as_ref(),
        _ => return None, // distribution needs an element to distribute over
    };
    fn find(ty: &Type) -> Option<Vec<TypeName>> {
        match ty {
            Type::Choice(items) => {
                let mut names = Vec::new();
                for item in items {
                    match item {
                        Type::Ref(n) => names.push(n.clone()),
                        _ => return None,
                    }
                }
                Some(names)
            }
            Type::Seq(items) => items.iter().find_map(find),
            _ => None,
        }
    }
    find(content)
}

fn apply_union_distribute(
    mut schema: Schema,
    in_type: &TypeName,
) -> Result<Schema, TransformError> {
    let def = schema
        .get(in_type)
        .cloned()
        .ok_or_else(|| TransformError::UnknownType(in_type.clone()))?;
    let alternatives =
        union_site(&def).ok_or_else(|| TransformError::NoSite(format!("union in {in_type}")))?;
    let Type::Element {
        name: elem_name,
        content,
    } = def
    else {
        return Err(TransformError::NoSite(format!(
            "element around union in {in_type}"
        )));
    };

    // Build one part per alternative: the element with the union replaced
    // by that alternative's definition (inlined when it is unshared).
    let mut part_refs = Vec::new();
    for alt in &alternatives {
        let part_name = schema.fresh_name(&format!("{in_type}_Part"));
        let alt_def = schema
            .get(alt)
            .cloned()
            .ok_or_else(|| TransformError::UnknownType(alt.clone()))?;
        let shared = schema.reference_count(alt) > 1;
        let part_content = content.clone().map(&mut |t| match t {
            Type::Choice(items)
                if items
                    .iter()
                    .all(|i| matches!(i, Type::Ref(n) if alternatives.contains(n))) =>
            {
                if shared {
                    Type::Ref(alt.clone())
                } else {
                    alt_def.clone()
                }
            }
            other => other,
        });
        schema.set(
            part_name.clone(),
            Type::Element {
                name: elem_name.clone(),
                content: Box::new(part_content),
            },
        );
        part_refs.push(Type::Ref(part_name));
    }

    // Replace every reference to the original type with the union of parts.
    let parents = schema.parents_of(in_type);
    for parent in parents {
        if schema.get(in_type).map(|_| ()).is_none() {
            break;
        }
        let parent_def = schema
            .get(&parent)
            .cloned()
            .ok_or_else(|| TransformError::UnknownType(parent.clone()))?;
        let replaced = parent_def.map(&mut |t| match t {
            Type::Ref(n) if &n == in_type => Type::choice(part_refs.clone()),
            other => other,
        });
        schema.set(parent, replaced);
    }
    if in_type != schema.root() {
        schema.remove(in_type);
    }
    schema.garbage_collect();
    Ok(schema)
}

// ------------------------------------------------------- repetition split

/// Repetitions `T{m,n}` with `m ≥ 1` whose target is an unshared
/// element-shaped type (so one occurrence can be inlined as columns).
fn rep_split_sites(def: &Type) -> Vec<TypeName> {
    let mut out = Vec::new();
    def.visit(&mut |t| {
        if let Type::Rep { inner, occurs, .. } = t {
            if occurs.min >= 1 && occurs.multi_valued() {
                if let Type::Ref(n) = inner.as_ref() {
                    out.push(n.clone());
                }
            }
        }
    });
    out
}

fn apply_rep_split(
    mut schema: Schema,
    in_type: &TypeName,
    target: &TypeName,
) -> Result<Schema, TransformError> {
    let target_def = schema
        .get(target)
        .cloned()
        .ok_or_else(|| TransformError::UnknownType(target.clone()))?;
    if !matches!(target_def, Type::Element { .. }) {
        return Err(TransformError::NoSite(format!(
            "rep-split target {target} is not an element"
        )));
    }
    let def = schema
        .get(in_type)
        .cloned()
        .ok_or_else(|| TransformError::UnknownType(in_type.clone()))?;
    let mut applied = false;
    let rewritten = def.map(&mut |t| match t {
        Type::Rep {
            inner,
            occurs,
            avg_count,
        } if !applied
            && occurs.min >= 1
            && occurs.multi_valued()
            && matches!(inner.as_ref(), Type::Ref(n) if n == target) =>
        {
            applied = true;
            let rest = Type::rep_with_count(
                (*inner).clone(),
                legodb_schema::Occurs::new(occurs.min - 1, occurs.max.map(|m| m - 1)),
                avg_count.map(|c| (c - 1.0).max(0.0)),
            );
            Type::seq([target_def.clone(), rest])
        }
        other => other,
    });
    if !applied {
        return Err(TransformError::NoSite(format!(
            "T{{m≥1,n}} of {target} in {in_type}"
        )));
    }
    schema.set(in_type.clone(), rewritten);
    schema.garbage_collect();
    Ok(schema)
}

// ------------------------------------------------------------- wildcards

/// The name test of the first inline wildcard element in a definition's
/// column world (below the top element), if any.
fn find_inline_wildcard(def: &Type) -> Option<&NameTest> {
    let content = match def {
        Type::Element { content, .. } => content.as_ref(),
        other => other,
    };
    fn find(ty: &Type) -> Option<&NameTest> {
        match ty {
            Type::Element { name, .. } if name.is_wildcard() => Some(name),
            Type::Seq(items) => items.iter().find_map(find),
            Type::Rep { inner, occurs, .. } if !occurs.multi_valued() => find(inner),
            _ => None,
        }
    }
    find(content)
}

fn apply_wildcard(
    mut schema: Schema,
    wildcard_type: &TypeName,
    tag: &str,
) -> Result<Schema, TransformError> {
    let def = schema
        .get(wildcard_type)
        .cloned()
        .ok_or_else(|| TransformError::UnknownType(wildcard_type.clone()))?;
    // A definition containing an *inline* wildcard (e.g. the paper's
    // `review[ ~[String] ]`): outline the wildcard into its own type
    // first, then split that type.
    if !matches!(&def, Type::Element { name, .. } if name.is_wildcard()) {
        if find_inline_wildcard(&def).is_none() {
            return Err(TransformError::NoSite(format!(
                "{wildcard_type} has no wildcard to materialize"
            )));
        }
        let fresh = schema.fresh_name(&format!("Any{wildcard_type}"));
        let mut extracted: Option<Type> = None;
        let rewritten = match def {
            Type::Element { name, content } => {
                let inner = outline_wildcard_at(*content, &fresh, &mut extracted);
                Type::Element {
                    name,
                    content: Box::new(inner),
                }
            }
            other => outline_wildcard_at(other, &fresh, &mut extracted),
        };
        let element = extracted.ok_or_else(|| {
            TransformError::NoSite(format!("{wildcard_type} has no wildcard to materialize"))
        })?;
        schema.set(fresh.clone(), element);
        schema.set(wildcard_type.clone(), rewritten);
        return apply_wildcard(schema, &fresh, tag);
    }
    let Type::Element { name, content } = def else {
        unreachable!("checked above");
    };
    let excluded = match &name {
        NameTest::Any => vec![tag.to_string()],
        NameTest::AnyExcept(ex) if name.matches(tag) => {
            let mut ex = ex.clone();
            ex.push(tag.to_string());
            ex
        }
        _ => {
            return Err(TransformError::NoSite(format!(
                "{wildcard_type} does not admit tag {tag}"
            )))
        }
    };
    let named = schema.fresh_name(&capitalize(tag));
    let rest = schema.fresh_name(&format!("Other{wildcard_type}"));
    schema.set(
        named.clone(),
        Type::Element {
            name: NameTest::Name(tag.to_string()),
            content: content.clone(),
        },
    );
    schema.set(
        rest.clone(),
        Type::Element {
            name: NameTest::AnyExcept(excluded),
            content,
        },
    );
    // Replace references to the wildcard type with the union.
    let parents = schema.parents_of(wildcard_type);
    for parent in parents {
        if parent == named || parent == rest {
            continue;
        }
        let parent_def = schema
            .get(&parent)
            .cloned()
            .ok_or_else(|| TransformError::UnknownType(parent.clone()))?;
        let replaced = parent_def.map(&mut |t| match t {
            Type::Ref(n) if &n == wildcard_type => {
                Type::choice([Type::Ref(named.clone()), Type::Ref(rest.clone())])
            }
            other => other,
        });
        schema.set(parent, replaced);
    }
    if wildcard_type != schema.root() {
        schema.remove(wildcard_type);
    }
    schema.garbage_collect();
    Ok(schema)
}

// -------------------------------------------------------- union-to-options

/// Applicable when the definition holds a column-world union whose members
/// are all unshared, non-recursive types.
fn union_to_options_applicable(schema: &Schema, def: &Type) -> bool {
    match union_site(def) {
        Some(alternatives) => alternatives
            .iter()
            .all(|alt| schema.reference_count(alt) == 1 && !schema.is_recursive(alt)),
        None => false,
    }
}

fn apply_union_to_options(
    mut schema: Schema,
    in_type: &TypeName,
) -> Result<Schema, TransformError> {
    let def = schema
        .get(in_type)
        .cloned()
        .ok_or_else(|| TransformError::UnknownType(in_type.clone()))?;
    let alternatives =
        union_site(&def).ok_or_else(|| TransformError::NoSite(format!("union in {in_type}")))?;
    for alt in &alternatives {
        if schema.reference_count(alt) != 1 || schema.is_recursive(alt) {
            return Err(TransformError::NotInlinable(
                alt.clone(),
                "shared or recursive union member",
            ));
        }
    }
    let mut optionals: Vec<Type> = Vec::with_capacity(alternatives.len());
    for alt in &alternatives {
        let alt_def = schema
            .get(alt)
            .cloned()
            .ok_or_else(|| TransformError::UnknownType(alt.clone()))?;
        optionals.push(Type::optional(alt_def));
    }
    let rewritten = def.map(&mut |t| match t {
        Type::Choice(items)
            if items
                .iter()
                .all(|i| matches!(i, Type::Ref(n) if alternatives.contains(n))) =>
        {
            Type::seq(optionals.clone())
        }
        other => other,
    });
    schema.set(in_type.clone(), rewritten);
    for alt in &alternatives {
        schema.remove(alt);
    }
    schema.garbage_collect();
    Ok(schema)
}

/// Replace the first inline wildcard element with a `Ref` to `fresh`.
fn outline_wildcard_at(ty: Type, fresh: &TypeName, extracted: &mut Option<Type>) -> Type {
    if extracted.is_some() {
        return ty;
    }
    match ty {
        Type::Element { name, content } if name.is_wildcard() => {
            *extracted = Some(Type::Element { name, content });
            Type::Ref(fresh.clone())
        }
        Type::Seq(items) => Type::seq(
            items
                .into_iter()
                .map(|t| outline_wildcard_at(t, fresh, extracted)),
        ),
        Type::Rep {
            inner,
            occurs,
            avg_count,
        } if !occurs.multi_valued() => Type::rep_with_count(
            outline_wildcard_at(*inner, fresh, extracted),
            occurs,
            avg_count,
        ),
        other => other,
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legodb_pschema::{derive_pschema, InlineStyle};
    use legodb_schema::gen::{generate, GenConfig};
    use legodb_schema::parse_schema;
    use legodb_schema::validate::validate;
    use legodb_util::StdRng;

    fn pschema(src: &str) -> PSchema {
        PSchema::try_new(parse_schema(src).unwrap()).unwrap()
    }

    fn imdb() -> PSchema {
        pschema(
            "type IMDB = imdb[ Show{0,*} ]
             type Show = show [ @type[ String ], title[ String ], year[ Integer ],
                                Aka{1,10}, Review{0,*}, ( Movie | TV ) ]
             type Aka = aka[ String ]
             type Review = review[ ~[ String ] ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]
             type TV = seasons[ Integer ], Description, Episode{0,*}
             type Description = description[ String ]
             type Episode = episode[ name[ String ], guest_director[ String ] ]",
        )
    }

    /// A transformation preserves semantics when documents sampled from
    /// the original schema validate under the transformed one.
    fn assert_preserves_semantics(original: &PSchema, transformed: &PSchema) {
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..25 {
            let doc = generate(original.schema(), &mut rng, &GenConfig::default());
            assert!(
                validate(transformed.schema(), &doc).is_ok(),
                "doc {i} rejected by transformed schema\noriginal:\n{}\ntransformed:\n{}\ndoc:\n{}",
                original.schema(),
                transformed.schema(),
                doc.to_xml_pretty()
            );
        }
    }

    #[test]
    fn inline_description_into_tv() {
        // The paper's §4.1 inlining example.
        let p = imdb();
        let (out, delta) =
            apply(&p, &Transformation::Inline(TypeName::new("Description"))).unwrap();
        assert!(out.schema().get_str("Description").is_none());
        assert_eq!(delta.removed, vec![TypeName::new("Description")]);
        assert_eq!(delta.rewritten, vec![TypeName::new("TV")]);
        assert!(delta.created.is_empty(), "{delta}");
        let tv = out.schema().get_str("TV").unwrap();
        let mut found = false;
        tv.visit(&mut |t| {
            if matches!(t, Type::Element { name, .. } if name.literal() == Some("description")) {
                found = true;
            }
        });
        assert!(found, "{}", out.schema());
        assert_preserves_semantics(&p, &out);
    }

    #[test]
    fn inline_rejects_shared_recursive_and_collection_types() {
        let p = imdb();
        // Aka is multi-valued (in a repetition).
        assert!(matches!(
            apply(&p, &Transformation::Inline(TypeName::new("Aka"))),
            Err(TransformError::NotInlinable(_, _))
        ));
        // Movie is a union member.
        assert!(matches!(
            apply(&p, &Transformation::Inline(TypeName::new("Movie"))),
            Err(TransformError::NotInlinable(_, _))
        ));
        let shared = pschema(
            "type R = r[ a[ Name ], b[ Name ] ]
             type Name = name[ String ]",
        );
        assert!(matches!(
            apply(&shared, &Transformation::Inline(TypeName::new("Name"))),
            Err(TransformError::NotInlinable(_, "shared type"))
        ));
        let recursive = pschema("type Doc = doc[ Any{0,1} ]\ntype Any = ~[ Any{0,1} ]");
        assert!(apply(&recursive, &Transformation::Inline(TypeName::new("Any"))).is_err());
    }

    #[test]
    fn outline_title_from_show() {
        let p = imdb();
        let (out, delta) = apply(
            &p,
            &Transformation::Outline {
                in_type: TypeName::new("Show"),
                rel: vec!["title".into()],
            },
        )
        .unwrap();
        assert!(out.schema().get_str("Title").is_some(), "{}", out.schema());
        assert_eq!(delta.created, vec![TypeName::new("Title")]);
        assert_eq!(delta.rewritten, vec![TypeName::new("Show")]);
        assert_preserves_semantics(&p, &out);
        // Inlining it back restores a type-count equilibrium.
        let (back, _) = apply(&out, &Transformation::Inline(TypeName::new("Title"))).unwrap();
        assert_eq!(back.schema().len(), p.schema().len());
    }

    #[test]
    fn outline_nested_element() {
        let p = pschema("type A = a[ b[ c[ String ], d[ Integer ] ] ]");
        let (out, _) = apply(
            &p,
            &Transformation::Outline {
                in_type: TypeName::new("A"),
                rel: vec!["b".into(), "c".into()],
            },
        )
        .unwrap();
        assert!(out.schema().get_str("C").is_some(), "{}", out.schema());
        assert_preserves_semantics(&p, &out);
    }

    #[test]
    fn union_distribute_creates_parts() {
        let p = imdb();
        let (out, delta) = apply(
            &p,
            &Transformation::UnionDistribute {
                in_type: TypeName::new("Show"),
            },
        )
        .unwrap();
        let s = out.schema();
        assert!(s.get_str("Show").is_none(), "{s}");
        assert!(
            s.get_str("Show_Part").is_some() || s.get_str("Show_Part_1").is_some(),
            "{s}"
        );
        // Two parts referencing show content; both validate movies/tv.
        assert_preserves_semantics(&p, &out);
        // Parts inline the union members (box_office becomes a column of
        // part 1 — the member types are gone).
        assert!(s.get_str("Movie").is_none(), "{s}");
        // The delta names the removals and the fresh part types.
        assert!(delta.removed.contains(&TypeName::new("Show")), "{delta}");
        assert!(delta.removed.contains(&TypeName::new("Movie")), "{delta}");
        assert_eq!(delta.created.len(), 2, "{delta}");
    }

    #[test]
    fn repetition_split_unrolls_one_occurrence() {
        let p = imdb();
        let (out, _) = apply(
            &p,
            &Transformation::RepetitionSplit {
                in_type: TypeName::new("Show"),
                target: TypeName::new("Aka"),
            },
        )
        .unwrap();
        let show = out.schema().get_str("Show").unwrap();
        // Now Show contains an inline aka element plus Aka{0,9}.
        let mut inline_aka = false;
        let mut rep_bounds = None;
        show.visit(&mut |t| {
            match t {
                Type::Element { name, .. } if name.literal() == Some("aka") => inline_aka = true,
                Type::Rep { inner, occurs, .. }
                    if matches!(inner.as_ref(), Type::Ref(n) if n.as_str() == "Aka") =>
                {
                    rep_bounds = Some(*occurs)
                }
                _ => {}
            }
        });
        assert!(inline_aka, "{}", out.schema());
        let bounds = rep_bounds.expect("remaining repetition");
        assert_eq!((bounds.min, bounds.max), (0, Some(9)));
        assert_preserves_semantics(&p, &out);
    }

    #[test]
    fn wildcard_materialize_splits_by_tag() {
        let p = pschema(
            "type Show = show[ title[ String ], AnyReview{0,*} ]
             type AnyReview = ~[ String ]",
        );
        let (out, _) = apply(
            &p,
            &Transformation::WildcardMaterialize {
                wildcard_type: TypeName::new("AnyReview"),
                name: "nyt".into(),
            },
        )
        .unwrap();
        let s = out.schema();
        assert!(s.get_str("Nyt").is_some(), "{s}");
        assert!(s.get_str("OtherAnyReview").is_some(), "{s}");
        assert!(s.get_str("AnyReview").is_none(), "{s}");
        assert_preserves_semantics(&p, &out);
    }

    #[test]
    fn union_to_options_inlines_with_optionals() {
        let p = imdb();
        let (out, _) = apply(
            &p,
            &Transformation::UnionToOptions {
                in_type: TypeName::new("Show"),
            },
        )
        .unwrap();
        let s = out.schema();
        assert!(s.get_str("Movie").is_none(), "{s}");
        assert!(s.get_str("TV").is_none(), "{s}");
        // Movies' documents still validate (the language only widened).
        assert_preserves_semantics(&p, &out);
    }

    #[test]
    fn set_layout_flips_without_touching_the_schema() {
        let p = imdb();
        let review = TypeName::new("Review");
        let t = Transformation::SetLayout {
            type_name: review.clone(),
            layout: Layout::Columnar,
        };
        let (out, delta) = apply(&p, &t).unwrap();
        assert_eq!(out.schema(), p.schema());
        assert_eq!(out.layout(&review), Layout::Columnar);
        assert_eq!(delta.rewritten, vec![review.clone()]);
        assert!(delta.created.is_empty() && delta.removed.is_empty());
        // One flip move per type; the already-columnar type flips back.
        let moves = enumerate_candidates(&out, &TransformationSet::layouts_only());
        assert_eq!(moves.len(), out.schema().len());
        assert!(moves.contains(&Transformation::SetLayout {
            type_name: review,
            layout: Layout::Row,
        }));
        assert!(matches!(
            apply(
                &p,
                &Transformation::SetLayout {
                    type_name: TypeName::new("Nope"),
                    layout: Layout::Columnar,
                }
            ),
            Err(TransformError::UnknownType(_))
        ));
    }

    #[test]
    fn layout_assignments_survive_schema_transformations() {
        let mut p = imdb();
        p.set_layout(&TypeName::new("Review"), Layout::Columnar);
        p.set_layout(&TypeName::new("Description"), Layout::Columnar);
        // A rewriting elsewhere keeps both assignments...
        let (out, _) = apply(
            &p,
            &Transformation::Outline {
                in_type: TypeName::new("Show"),
                rel: vec!["title".into()],
            },
        )
        .unwrap();
        assert_eq!(out.layout(&TypeName::new("Review")), Layout::Columnar);
        assert_eq!(out.layouts().len(), 2);
        // ...and inlining a columnar type away drops its entry.
        let (gone, _) = apply(&out, &Transformation::Inline(TypeName::new("Description"))).unwrap();
        assert_eq!(gone.layouts().len(), 1);
        assert_eq!(gone.layout(&TypeName::new("Review")), Layout::Columnar);
    }

    #[test]
    fn enumerate_respects_the_transformation_set() {
        let p = imdb();
        let inline_only = enumerate_candidates(&p, &TransformationSet::inline_only());
        assert!(inline_only
            .iter()
            .all(|t| matches!(t, Transformation::Inline(_))));
        // Description is the only inlinable type (others are shared/
        // multi-valued/union members).
        assert_eq!(inline_only.len(), 1, "{inline_only:?}");
        let outline_only = enumerate_candidates(&p, &TransformationSet::outline_only());
        assert!(!outline_only.is_empty());
        assert!(outline_only
            .iter()
            .all(|t| matches!(t, Transformation::Outline { .. })));
        let all = enumerate_candidates(&p, &TransformationSet::all(vec!["nyt".into()]));
        assert!(all
            .iter()
            .any(|t| matches!(t, Transformation::UnionDistribute { .. })));
        assert!(all
            .iter()
            .any(|t| matches!(t, Transformation::RepetitionSplit { .. })));
        assert!(all
            .iter()
            .any(|t| matches!(t, Transformation::WildcardMaterialize { .. })));
        assert!(all
            .iter()
            .any(|t| matches!(t, Transformation::UnionToOptions { .. })));
    }

    #[test]
    fn every_enumerated_candidate_applies_cleanly() {
        let p = imdb();
        for t in enumerate_candidates(&p, &TransformationSet::all(vec!["nyt".into()])) {
            let result = apply(&p, &t);
            assert!(result.is_ok(), "candidate {t} failed: {result:?}");
        }
    }

    #[test]
    fn enumerated_candidates_are_duplicate_free() {
        // Duplicate wildcard hints used to surface the same materialize
        // move once per hint; any duplicate costs a full evaluation.
        let p = imdb();
        let set = TransformationSet::all(vec!["nyt".into(), "nyt".into(), "nyt".into()]);
        let all = enumerate_candidates(&p, &set);
        for (i, t) in all.iter().enumerate() {
            assert!(
                !all[i + 1..].contains(t),
                "duplicate candidate {t} in {all:?}"
            );
        }
        assert!(all
            .iter()
            .any(|t| matches!(t, Transformation::WildcardMaterialize { .. })));
        // Outlined starts enumerate the most moves; still no duplicates.
        let outlined = derive_pschema(&imdb().into_schema(), InlineStyle::Outlined);
        let many = enumerate_candidates(&outlined, &TransformationSet::all(vec!["nyt".into()]));
        for (i, t) in many.iter().enumerate() {
            assert!(!many[i + 1..].contains(t), "duplicate candidate {t}");
        }
    }

    #[test]
    fn outlined_start_offers_many_inline_moves() {
        let schema = imdb().into_schema();
        let outlined = derive_pschema(&schema, InlineStyle::Outlined);
        let moves = enumerate_candidates(&outlined, &TransformationSet::inline_only());
        assert!(
            moves.len() >= 5,
            "expected many inline moves, got {}",
            moves.len()
        );
    }
}
