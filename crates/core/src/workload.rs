//! Weighted XQuery workloads, e.g. the paper's
//! `W1 = {Q1: 0.4, Q2: 0.4, Q3: 0.1, Q4: 0.1}`.

use legodb_xquery::{parse_xquery, XQuery, XQueryParseError};

/// One workload entry.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// A display name (`Q1`, `lookup-title`, ...).
    pub name: String,
    /// The parsed query.
    pub query: XQuery,
    /// Relative weight (importance/frequency).
    pub weight: f64,
}

/// A weighted set of queries.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    queries: Vec<WorkloadQuery>,
}

impl Workload {
    /// An empty workload.
    pub fn new() -> Workload {
        Workload::default()
    }

    /// Add a parsed query.
    pub fn push(&mut self, name: impl Into<String>, query: XQuery, weight: f64) -> &mut Self {
        self.queries.push(WorkloadQuery {
            name: name.into(),
            query,
            weight,
        });
        self
    }

    /// Add a query from source text.
    pub fn push_src(
        &mut self,
        name: impl Into<String>,
        src: &str,
        weight: f64,
    ) -> Result<&mut Self, XQueryParseError> {
        let query = parse_xquery(src)?;
        Ok(self.push(name, query, weight))
    }

    /// Build from `(name, source, weight)` triples.
    pub fn from_sources<'a>(
        entries: impl IntoIterator<Item = (&'a str, &'a str, f64)>,
    ) -> Result<Workload, XQueryParseError> {
        let mut w = Workload::new();
        for (name, src, weight) in entries {
            w.push_src(name, src, weight)?;
        }
        Ok(w)
    }

    /// The entries.
    pub fn queries(&self) -> &[WorkloadQuery] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Sum of weights.
    pub fn total_weight(&self) -> f64 {
        self.queries.iter().map(|q| q.weight).sum()
    }

    /// A new workload with every weight multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> Workload {
        Workload {
            queries: self
                .queries
                .iter()
                .map(|q| WorkloadQuery {
                    name: q.name.clone(),
                    query: q.query.clone(),
                    weight: q.weight * factor,
                })
                .collect(),
        }
    }

    /// Concatenate two workloads (used to build the k : (1−k) lookup/
    /// publish mixes of §5.3).
    pub fn merged(&self, other: &Workload) -> Workload {
        let mut queries = self.queries.clone();
        queries.extend(other.queries.iter().cloned());
        Workload { queries }
    }

    /// The §5.3 spectrum mix: `k` weight on `self`, `1-k` on `other`,
    /// with each side's weights normalized first.
    pub fn mix(&self, other: &Workload, k: f64) -> Workload {
        let a = self.scaled(k / self.total_weight().max(f64::MIN_POSITIVE));
        let b = other.scaled((1.0 - k) / other.total_weight().max(f64::MIN_POSITIVE));
        a.merged(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> XQuery {
        parse_xquery(src).unwrap()
    }

    #[test]
    fn push_and_weights() {
        let mut w = Workload::new();
        w.push("Q1", q(r#"FOR $v IN document("x")/a RETURN $v"#), 0.4);
        w.push("Q2", q(r#"FOR $v IN document("x")/a RETURN $v"#), 0.6);
        assert_eq!(w.len(), 2);
        assert!((w.total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mix_normalizes_sides() {
        let mut lookup = Workload::new();
        lookup.push("L1", q(r#"FOR $v IN document("x")/a RETURN $v"#), 1.0);
        lookup.push("L2", q(r#"FOR $v IN document("x")/a RETURN $v"#), 1.0);
        let mut publish = Workload::new();
        publish.push("P1", q(r#"FOR $v IN document("x")/a RETURN $v"#), 1.0);
        let m = lookup.mix(&publish, 0.25);
        assert_eq!(m.len(), 3);
        let weights: Vec<f64> = m.queries().iter().map(|e| e.weight).collect();
        assert!((weights[0] - 0.125).abs() < 1e-12);
        assert!((weights[2] - 0.75).abs() < 1e-12);
        assert!((m.total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_sources_builds_or_reports_errors() {
        let w = Workload::from_sources([("Q1", r#"FOR $v IN document("x")/a RETURN $v"#, 0.5)])
            .unwrap();
        assert_eq!(w.len(), 1);
        assert!(Workload::from_sources([("bad", "NOT XQUERY", 1.0)]).is_err());
    }
}
