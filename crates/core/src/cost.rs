//! `GetPSchemaCost` (§4.2): price one physical schema against a workload.
//!
//! The pipeline per candidate: `rel(ps)` derives the relational catalog
//! with translated statistics; each workload query is translated to SQL
//! statements over that mapping; the cost-based optimizer prices each
//! statement; the schema's cost is the weight-averaged sum.
//!
//! [`pschema_cost`] prices from scratch and stays the oracle. The greedy
//! search prices hundreds of candidates that each differ from their
//! parent by one local rewriting, so [`CostEvaluator`] prices
//! *incrementally*: a candidate's mapping reuses unchanged tables from
//! its parent ([`legodb_pschema::rel_incremental`]), and a query is
//! re-translated and re-optimized only when its recorded footprint
//! intersects the tables that changed. A memo cache keyed by
//! (statement SQL, referenced-table fingerprints) shares optimizer work
//! across parallel workers, across sibling candidates, and across
//! iterations — a re-translated query re-optimizes only the statements
//! whose tables actually changed. Reused costs are the
//! parent's stored `f64`s and summation stays in workload order, so the
//! incremental total is bit-identical to the from-scratch one — a
//! `debug_assertions` path checks this against the oracle on every
//! incremental evaluation.

use crate::transform::TransformDelta;
use crate::workload::Workload;
use legodb_optimizer::{optimize_statement, OptimizerConfig, OptimizerError, Statement};
use legodb_pschema::{rel, rel_incremental, Mapping, PSchema};
use legodb_util::{fault, StableHasher, Striped};
use legodb_xml::stats::Statistics;
use legodb_xquery::{translate, TranslateError, TranslatedQuery};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Costing failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// A query could not be translated against this mapping.
    Translate {
        /// Query name.
        query: String,
        /// The candidate transformation being priced, when known (so a
        /// dropped candidate's diagnostic names the move).
        transformation: Option<String>,
        /// Inner error.
        error: TranslateError,
    },
    /// The optimizer rejected a translated statement.
    Optimize {
        /// Query name.
        query: String,
        /// The candidate transformation being priced, when known.
        transformation: Option<String>,
        /// Inner error.
        error: OptimizerError,
    },
    /// A cost computed to NaN or infinity. A configuration that cannot be
    /// priced to a finite number cannot seed or win a search.
    NonFiniteCost {
        /// What was being priced (query name or "initial configuration").
        context: String,
        /// The offending value.
        value: f64,
    },
}

impl CostError {
    /// Attach the candidate transformation that was being priced, so the
    /// search's dropped-candidate diagnostics can name the move.
    pub fn with_transformation(mut self, t: impl fmt::Display) -> CostError {
        match &mut self {
            CostError::Translate { transformation, .. }
            | CostError::Optimize { transformation, .. } => {
                *transformation = Some(t.to_string());
            }
            CostError::NonFiniteCost { .. } => {}
        }
        self
    }
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let candidate = |t: &Option<String>| match t {
            Some(t) => format!(" (candidate {t})"),
            None => String::new(),
        };
        match self {
            CostError::Translate {
                query,
                transformation,
                error,
            } => {
                write!(
                    f,
                    "translating {query}{}: {error}",
                    candidate(transformation)
                )
            }
            CostError::Optimize {
                query,
                transformation,
                error,
            } => write!(
                f,
                "optimizing {query}{}: {error}",
                candidate(transformation)
            ),
            CostError::NonFiniteCost { context, value } => {
                write!(f, "non-finite cost {value} for {context}")
            }
        }
    }
}

impl std::error::Error for CostError {}

/// One workload query's priced outcome, with the footprint needed to
/// decide whether a child candidate can reuse it.
#[derive(Debug, Clone)]
pub struct QueryCostRecord {
    /// Query name.
    pub name: String,
    /// Unweighted cost.
    pub cost: f64,
    /// Types consulted during translation (see
    /// [`TranslatedQuery::footprint`]).
    pub footprint: BTreeSet<String>,
}

/// The cost of one configuration.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Weighted total cost (the greedy search's objective).
    pub total: f64,
    /// Per-query records in workload order.
    pub queries: Vec<QueryCostRecord>,
    /// The mapping that was priced (catalog, DDL, table mappings).
    pub mapping: Mapping,
}

impl CostReport {
    /// Per-query `(name, unweighted cost)` pairs in workload order.
    pub fn per_query(&self) -> Vec<(String, f64)> {
        self.queries
            .iter()
            .map(|r| (r.name.clone(), r.cost))
            .collect()
    }

    /// The unweighted cost of a query by name.
    pub fn query_cost(&self, name: &str) -> Option<f64> {
        self.queries.iter().find(|r| r.name == name).map(|r| r.cost)
    }
}

/// Price every statement of a translated query.
fn statements_cost(
    mapping: &Mapping,
    translated: &TranslatedQuery,
    query: &str,
    config: &OptimizerConfig,
) -> Result<f64, CostError> {
    let mut query_cost = 0.0;
    for statement in &translated.statements {
        let optimized =
            optimize_statement(&mapping.catalog, statement, config).map_err(|error| {
                CostError::Optimize {
                    query: query.to_string(),
                    transformation: None,
                    error,
                }
            })?;
        query_cost += optimized.total;
    }
    Ok(query_cost)
}

/// Price a p-schema against a workload. This is the paper's
/// `GetPSchemaCost(pSchema, xWkld, xStats)` — the from-scratch oracle the
/// incremental [`CostEvaluator`] is checked against.
pub fn pschema_cost(
    pschema: &PSchema,
    stats: &Statistics,
    workload: &Workload,
    config: &OptimizerConfig,
) -> Result<CostReport, CostError> {
    let mapping = rel(pschema, stats);
    let mut total = 0.0;
    let mut queries = Vec::new();
    for entry in workload.queries() {
        let translated =
            translate(&mapping, &entry.query).map_err(|error| CostError::Translate {
                query: entry.name.clone(),
                transformation: None,
                error,
            })?;
        let query_cost = statements_cost(&mapping, &translated, &entry.name, config)?;
        total += entry.weight * query_cost;
        queries.push(QueryCostRecord {
            name: entry.name.clone(),
            cost: query_cost,
            footprint: translated.footprint,
        });
    }
    Ok(CostReport {
        total,
        queries,
        mapping,
    })
}

/// Counters from a [`CostEvaluator`]: how candidate pricing was served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Queries whose parent cost was reused outright (footprint disjoint
    /// from the changed tables — no translation, no optimization).
    pub reused: u64,
    /// Queries re-translated but with every statement served from the
    /// memo cache (no optimization).
    pub memo_hits: u64,
    /// Queries with at least one statement re-optimized.
    pub recosted: u64,
}

impl EvalStats {
    /// Total queries priced.
    pub fn total(&self) -> u64 {
        self.reused + self.memo_hits + self.recosted
    }

    /// Fraction of queries served without running the optimizer.
    pub fn hit_rate(&self) -> f64 {
        match self.total() {
            0 => 0.0,
            n => (self.reused + self.memo_hits) as f64 / n as f64,
        }
    }

    /// Counters accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &EvalStats) -> EvalStats {
        EvalStats {
            reused: self.reused.saturating_sub(earlier.reused),
            memo_hits: self.memo_hits.saturating_sub(earlier.memo_hits),
            recosted: self.recosted.saturating_sub(earlier.recosted),
        }
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reused, {} memo hits, {} recosted ({:.0}% avoided)",
            self.reused,
            self.memo_hits,
            self.recosted,
            self.hit_rate() * 100.0
        )
    }
}

/// Memo-cache fingerprint of one statement's referenced tables: each
/// table name plus its per-type mapping fingerprint. Combined with the
/// statement's exact SQL text, an equal key means an identical statement
/// over identical table definitions — and [`optimize_statement`] reads
/// nothing else from the catalog, so a memo hit is exact, not
/// approximate. Statement granularity (rather than whole-query) is what
/// lets a publish-style query that walks the entire schema skip
/// re-optimizing every block except the one over a changed table.
fn statement_tables_fingerprint(mapping: &Mapping, statement: &Statement) -> u64 {
    let mut h = StableHasher::new();
    for block in statement.blocks() {
        for t in &block.tables {
            h.write_str(&t.table);
            let fp = mapping
                .fingerprints
                .get(&legodb_schema::TypeName::new(&t.table))
                .copied()
                .unwrap_or(0);
            h.write_u64(fp);
        }
    }
    h.finish()
}

/// Stripes in the shared memo cache. Sized for the machine widths the
/// search runs at (up to a few dozen workers): with 32 stripes and a
/// stable key hash, two workers only contend when they price statements
/// that land in the same shard.
const MEMO_STRIPES: usize = 32;

/// The stable stripe selector for a memo key. Must depend on the key
/// alone (never on thread or timing state) so a key always routes to the
/// same shard.
fn memo_stripe_hash(key: &(String, u64)) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(&key.0);
    h.write_u64(key.1);
    h.finish()
}

/// Incremental, memoizing candidate pricer (shared across the search's
/// parallel workers). See the module docs for the invalidation story.
#[derive(Debug)]
pub struct CostEvaluator {
    config: OptimizerConfig,
    memoize: bool,
    /// The memo cache, lock-striped ([`Striped`]): one evaluator is
    /// shared by every candidate of an iteration (and across
    /// iterations), so under the work-stealing scheduler many workers
    /// hit it concurrently — striping keeps them off a single global
    /// lock. Shards are BTreeMaps, not HashMaps: the cache sits on the
    /// fingerprint path and the deterministic-collections invariant
    /// (DESIGN.md §12) bans hash-randomized containers here outright;
    /// shard *routing* uses the seeded, platform-stable `StableHasher`.
    cache: Striped<BTreeMap<(String, u64), f64>>,
    reused: AtomicU64,
    memo_hits: AtomicU64,
    recosted: AtomicU64,
}

impl CostEvaluator {
    /// An evaluator with memoization on.
    pub fn new(config: OptimizerConfig) -> CostEvaluator {
        CostEvaluator::with_memoize(config, true)
    }

    /// An evaluator with memoization switched explicitly (off = every
    /// evaluation reprices from scratch; the bench's control arm).
    pub fn with_memoize(config: OptimizerConfig, memoize: bool) -> CostEvaluator {
        CostEvaluator {
            config,
            memoize,
            cache: Striped::new(MEMO_STRIPES),
            reused: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            recosted: AtomicU64::new(0),
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            reused: self.reused.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            recosted: self.recosted.load(Ordering::Relaxed),
        }
    }

    /// Price a configuration from scratch (the search's starting point).
    /// Translations still seed the memo cache.
    pub fn evaluate_full(
        &self,
        pschema: &PSchema,
        stats: &Statistics,
        workload: &Workload,
    ) -> Result<CostReport, CostError> {
        let mapping = rel(pschema, stats);
        self.evaluate(mapping, workload, None)
    }

    /// Price a candidate that differs from `parent` by `delta`. Unchanged
    /// tables are cloned from the parent's mapping; queries whose
    /// footprint avoids every changed table reuse the parent's cost.
    /// With memoization off this degenerates to the from-scratch path —
    /// the bench's control arm is exactly the pre-incremental pipeline.
    pub fn evaluate_incremental(
        &self,
        pschema: &PSchema,
        stats: &Statistics,
        workload: &Workload,
        parent: &CostReport,
        delta: &TransformDelta,
    ) -> Result<CostReport, CostError> {
        if !self.memoize {
            let report = pschema_cost(pschema, stats, workload, &self.config)?;
            self.recosted
                .fetch_add(report.queries.len() as u64, Ordering::Relaxed);
            return Ok(report);
        }
        let mapping = rel_incremental(pschema, stats, &parent.mapping);
        // Invalidate on the fingerprint diff — plus, defensively, every
        // type the transformation itself names (removed types have no
        // fingerprint on either side if they never mapped to a table).
        let mut changed = mapping.changed_tables(&parent.mapping);
        for name in delta.touched() {
            changed.insert(name.to_string());
        }
        let report = self.evaluate(mapping, workload, Some((parent, &changed)))?;
        #[cfg(debug_assertions)]
        {
            let oracle = pschema_cost(pschema, stats, workload, &self.config)?;
            debug_assert_eq!(
                report.total.to_bits(),
                oracle.total.to_bits(),
                "incremental total {} diverged from oracle {} (changed: {changed:?})",
                report.total,
                oracle.total,
            );
        }
        Ok(report)
    }

    fn evaluate(
        &self,
        mapping: Mapping,
        workload: &Workload,
        reuse: Option<(&CostReport, &BTreeSet<String>)>,
    ) -> Result<CostReport, CostError> {
        let mut total = 0.0;
        let mut queries = Vec::new();
        for (idx, entry) in workload.queries().iter().enumerate() {
            if let Some((parent, changed)) = reuse {
                if let Some(record) = parent.queries.get(idx) {
                    // The failpoint lets fault runs force the recompute
                    // path, so the equivalence property exercises both.
                    if record.name == entry.name
                        && record.footprint.is_disjoint(changed)
                        && fault::failpoint("core.cost.reuse", &entry.name).is_ok()
                    {
                        self.reused.fetch_add(1, Ordering::Relaxed);
                        total += entry.weight * record.cost;
                        queries.push(record.clone());
                        continue;
                    }
                }
            }
            let translated =
                translate(&mapping, &entry.query).map_err(|error| CostError::Translate {
                    query: entry.name.clone(),
                    transformation: None,
                    error,
                })?;
            let cost = if self.memoize {
                // Statement-level memoization: sum in statement order so
                // the total stays bit-identical to `statements_cost`.
                let mut query_cost = 0.0;
                let mut all_hits = true;
                for statement in &translated.statements {
                    let key = (
                        statement.to_sql(),
                        statement_tables_fingerprint(&mapping, statement),
                    );
                    let stripe = self.cache.stripe(memo_stripe_hash(&key));
                    let cached = stripe.read().get(&key).copied();
                    let statement_cost = match cached {
                        Some(cost) => cost,
                        None => {
                            all_hits = false;
                            let optimized =
                                optimize_statement(&mapping.catalog, statement, &self.config)
                                    .map_err(|error| CostError::Optimize {
                                        query: entry.name.clone(),
                                        transformation: None,
                                        error,
                                    })?;
                            stripe.write().insert(key, optimized.total);
                            optimized.total
                        }
                    };
                    query_cost += statement_cost;
                }
                if all_hits {
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.recosted.fetch_add(1, Ordering::Relaxed);
                }
                query_cost
            } else {
                self.recosted.fetch_add(1, Ordering::Relaxed);
                statements_cost(&mapping, &translated, &entry.name, &self.config)?
            };
            total += entry.weight * cost;
            queries.push(QueryCostRecord {
                name: entry.name.clone(),
                cost,
                footprint: translated.footprint,
            });
        }
        Ok(CostReport {
            total,
            queries,
            mapping,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{apply, enumerate_candidates, Transformation, TransformationSet};
    use legodb_pschema::PSchema;
    use legodb_schema::parse_schema;

    fn setup() -> (PSchema, Statistics, Workload) {
        let schema = parse_schema(
            "type IMDB = imdb[ Show{0,*} ]
             type Show = show [ title[ String ], year[ Integer ], Aka{0,*} ]
             type Aka = aka[ String ]",
        )
        .unwrap();
        let pschema = PSchema::try_new(schema).unwrap();
        let mut stats = Statistics::new();
        stats
            .set_count(&["imdb"], 1)
            .set_count(&["imdb", "show"], 10000)
            .set_size(&["imdb", "show", "title"], 50.0)
            .set_distinct(&["imdb", "show", "title"], 10000)
            .set_count(&["imdb", "show", "year"], 10000)
            .set_base(&["imdb", "show", "year"], 1900, 2000, 100)
            .set_count(&["imdb", "show", "aka"], 30000)
            .set_size(&["imdb", "show", "aka"], 40.0);
        let workload = Workload::from_sources([
            (
                "lookup",
                r#"FOR $v IN document("x")/imdb/show WHERE $v/title = c1 RETURN $v/year"#,
                0.5,
            ),
            (
                "publish",
                r#"FOR $v IN document("x")/imdb/show RETURN $v"#,
                0.5,
            ),
        ])
        .unwrap();
        (pschema, stats, workload)
    }

    #[test]
    fn produces_positive_costs_per_query() {
        let (p, s, w) = setup();
        let report = pschema_cost(&p, &s, &w, &OptimizerConfig::default()).unwrap();
        assert!(report.total > 0.0);
        assert_eq!(report.queries.len(), 2);
        assert!(report.query_cost("lookup").unwrap() > 0.0);
        assert!(report.query_cost("publish").unwrap() > 0.0);
        // Publishing everything costs more than one lookup.
        assert!(report.query_cost("publish").unwrap() > report.query_cost("lookup").unwrap());
        // Every record carries a non-empty footprint.
        assert!(report.queries.iter().all(|r| !r.footprint.is_empty()));
    }

    #[test]
    fn weights_scale_the_total() {
        let (p, s, w) = setup();
        let cfg = OptimizerConfig::default();
        let base = pschema_cost(&p, &s, &w, &cfg).unwrap();
        let double = pschema_cost(&p, &s, &w.scaled(2.0), &cfg).unwrap();
        assert!((double.total - 2.0 * base.total).abs() < 1e-6);
    }

    #[test]
    fn unresolvable_query_reports_translate_error() {
        let (p, s, _) = setup();
        let w =
            Workload::from_sources([("bad", r#"FOR $v IN document("x")/nothing RETURN $v"#, 1.0)])
                .unwrap();
        let err = pschema_cost(&p, &s, &w, &OptimizerConfig::default()).unwrap_err();
        assert!(matches!(err, CostError::Translate { .. }));
        // Attaching a transformation shows up in the message.
        let named = err.with_transformation("inline(X)");
        assert!(named.to_string().contains("candidate inline(X)"), "{named}");
    }

    #[test]
    fn incremental_totals_match_the_oracle_bit_for_bit() {
        let (p, s, w) = setup();
        let cfg = OptimizerConfig::default();
        let evaluator = CostEvaluator::new(cfg);
        let parent = evaluator.evaluate_full(&p, &s, &w).unwrap();
        assert_eq!(
            parent.total.to_bits(),
            pschema_cost(&p, &s, &w, &cfg).unwrap().total.to_bits()
        );
        for t in enumerate_candidates(&p, &TransformationSet::all(vec![])) {
            let (child, delta) = apply(&p, &t).unwrap();
            let incr = evaluator
                .evaluate_incremental(&child, &s, &w, &parent, &delta)
                .unwrap();
            let oracle = pschema_cost(&child, &s, &w, &cfg).unwrap();
            assert_eq!(
                incr.total.to_bits(),
                oracle.total.to_bits(),
                "candidate {t}: incremental {} vs oracle {}",
                incr.total,
                oracle.total
            );
        }
    }

    #[test]
    fn disjoint_footprints_reuse_the_parent_cost() {
        if legodb_util::fault::env_enabled() {
            return; // the reuse failpoint deliberately perturbs counters
        }
        // A schema with an independent Studio branch: rewriting it must
        // not re-price a query that only walks the Show branch.
        let schema = parse_schema(
            "type IMDB = imdb[ Show{0,*}, Studio{0,*} ]
             type Show = show [ title[ String ], year[ Integer ] ]
             type Studio = studio[ sname[ String ], City ]
             type City = city[ String ]",
        )
        .unwrap();
        let p = PSchema::try_new(schema).unwrap();
        let s = Statistics::new();
        let w = Workload::from_sources([(
            "lookup",
            r#"FOR $v IN document("x")/imdb/show WHERE $v/title = c1 RETURN $v/year"#,
            1.0,
        )])
        .unwrap();
        let evaluator = CostEvaluator::new(OptimizerConfig::default());
        let parent = evaluator.evaluate_full(&p, &s, &w).unwrap();
        let (child, delta) = apply(
            &p,
            &Transformation::Inline(legodb_schema::TypeName::new("City")),
        )
        .unwrap();
        let before = evaluator.stats();
        let incr = evaluator
            .evaluate_incremental(&child, &s, &w, &parent, &delta)
            .unwrap();
        let d = evaluator.stats().since(&before);
        assert_eq!(d.reused, 1, "{d}");
        assert_eq!(d.recosted, 0, "{d}");
        assert_eq!(incr.total.to_bits(), parent.total.to_bits());
    }

    #[test]
    fn memoization_serves_repeat_candidates_without_reoptimizing() {
        let (p, s, w) = setup();
        let evaluator = CostEvaluator::new(OptimizerConfig::default());
        let a = evaluator.evaluate_full(&p, &s, &w).unwrap();
        let before = evaluator.stats();
        let b = evaluator.evaluate_full(&p, &s, &w).unwrap();
        let after = evaluator.stats().since(&before);
        assert_eq!(a.total.to_bits(), b.total.to_bits());
        assert_eq!(after.memo_hits, w.queries().len() as u64, "{after}");
        assert_eq!(after.recosted, 0, "{after}");
        assert!(after.hit_rate() > 0.99);
    }

    #[test]
    fn memoization_off_always_recosts() {
        let (p, s, w) = setup();
        let evaluator = CostEvaluator::with_memoize(OptimizerConfig::default(), false);
        let a = evaluator.evaluate_full(&p, &s, &w).unwrap();
        let b = evaluator.evaluate_full(&p, &s, &w).unwrap();
        assert_eq!(a.total.to_bits(), b.total.to_bits());
        let stats_now = evaluator.stats();
        assert_eq!(stats_now.memo_hits, 0);
        assert_eq!(stats_now.recosted, 2 * w.queries().len() as u64);
    }
}
