//! `GetPSchemaCost` (§4.2): price one physical schema against a workload.
//!
//! The pipeline per candidate: `rel(ps)` derives the relational catalog
//! with translated statistics; each workload query is translated to SQL
//! statements over that mapping; the cost-based optimizer prices each
//! statement; the schema's cost is the weight-averaged sum.

use crate::workload::Workload;
use legodb_optimizer::{optimize_statement, OptimizerConfig, OptimizerError};
use legodb_pschema::{rel, Mapping, PSchema};
use legodb_xml::stats::Statistics;
use legodb_xquery::{translate, TranslateError};
use std::fmt;

/// Costing failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// A query could not be translated against this mapping.
    Translate {
        /// Query name.
        query: String,
        /// Inner error.
        error: TranslateError,
    },
    /// The optimizer rejected a translated statement.
    Optimize {
        /// Query name.
        query: String,
        /// Inner error.
        error: OptimizerError,
    },
    /// A cost computed to NaN or infinity. A configuration that cannot be
    /// priced to a finite number cannot seed or win a search.
    NonFiniteCost {
        /// What was being priced (query name or "initial configuration").
        context: String,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::Translate { query, error } => {
                write!(f, "translating {query}: {error}")
            }
            CostError::Optimize { query, error } => write!(f, "optimizing {query}: {error}"),
            CostError::NonFiniteCost { context, value } => {
                write!(f, "non-finite cost {value} for {context}")
            }
        }
    }
}

impl std::error::Error for CostError {}

/// The cost of one configuration.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Weighted total cost (the greedy search's objective).
    pub total: f64,
    /// Per-query `(name, unweighted cost)` pairs in workload order.
    pub per_query: Vec<(String, f64)>,
    /// The mapping that was priced (catalog, DDL, table mappings).
    pub mapping: Mapping,
}

impl CostReport {
    /// The unweighted cost of a query by name.
    pub fn query_cost(&self, name: &str) -> Option<f64> {
        self.per_query
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, c)| c)
    }
}

/// Price a p-schema against a workload. This is the paper's
/// `GetPSchemaCost(pSchema, xWkld, xStats)`.
pub fn pschema_cost(
    pschema: &PSchema,
    stats: &Statistics,
    workload: &Workload,
    config: &OptimizerConfig,
) -> Result<CostReport, CostError> {
    let mapping = rel(pschema, stats);
    let mut total = 0.0;
    let mut per_query = Vec::new();
    for entry in workload.queries() {
        let translated =
            translate(&mapping, &entry.query).map_err(|error| CostError::Translate {
                query: entry.name.clone(),
                error,
            })?;
        let mut query_cost = 0.0;
        for statement in &translated.statements {
            let optimized =
                optimize_statement(&mapping.catalog, statement, config).map_err(|error| {
                    CostError::Optimize {
                        query: entry.name.clone(),
                        error,
                    }
                })?;
            query_cost += optimized.total;
        }
        per_query.push((entry.name.clone(), query_cost));
        total += entry.weight * query_cost;
    }
    Ok(CostReport {
        total,
        per_query,
        mapping,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use legodb_pschema::PSchema;
    use legodb_schema::parse_schema;

    fn setup() -> (PSchema, Statistics, Workload) {
        let schema = parse_schema(
            "type IMDB = imdb[ Show{0,*} ]
             type Show = show [ title[ String ], year[ Integer ], Aka{0,*} ]
             type Aka = aka[ String ]",
        )
        .unwrap();
        let pschema = PSchema::try_new(schema).unwrap();
        let mut stats = Statistics::new();
        stats
            .set_count(&["imdb"], 1)
            .set_count(&["imdb", "show"], 10000)
            .set_size(&["imdb", "show", "title"], 50.0)
            .set_distinct(&["imdb", "show", "title"], 10000)
            .set_count(&["imdb", "show", "year"], 10000)
            .set_base(&["imdb", "show", "year"], 1900, 2000, 100)
            .set_count(&["imdb", "show", "aka"], 30000)
            .set_size(&["imdb", "show", "aka"], 40.0);
        let workload = Workload::from_sources([
            (
                "lookup",
                r#"FOR $v IN document("x")/imdb/show WHERE $v/title = c1 RETURN $v/year"#,
                0.5,
            ),
            (
                "publish",
                r#"FOR $v IN document("x")/imdb/show RETURN $v"#,
                0.5,
            ),
        ])
        .unwrap();
        (pschema, stats, workload)
    }

    #[test]
    fn produces_positive_costs_per_query() {
        let (p, s, w) = setup();
        let report = pschema_cost(&p, &s, &w, &OptimizerConfig::default()).unwrap();
        assert!(report.total > 0.0);
        assert_eq!(report.per_query.len(), 2);
        assert!(report.query_cost("lookup").unwrap() > 0.0);
        assert!(report.query_cost("publish").unwrap() > 0.0);
        // Publishing everything costs more than one lookup.
        assert!(report.query_cost("publish").unwrap() > report.query_cost("lookup").unwrap());
    }

    #[test]
    fn weights_scale_the_total() {
        let (p, s, w) = setup();
        let cfg = OptimizerConfig::default();
        let base = pschema_cost(&p, &s, &w, &cfg).unwrap();
        let double = pschema_cost(&p, &s, &w.scaled(2.0), &cfg).unwrap();
        assert!((double.total - 2.0 * base.total).abs() < 1e-6);
    }

    #[test]
    fn unresolvable_query_reports_translate_error() {
        let (p, s, _) = setup();
        let w =
            Workload::from_sources([("bad", r#"FOR $v IN document("x")/nothing RETURN $v"#, 1.0)])
                .unwrap();
        let err = pschema_cost(&p, &s, &w, &OptimizerConfig::default()).unwrap_err();
        assert!(matches!(err, CostError::Translate { .. }));
    }
}
