//! The query representation the optimizer prices: select-project-join
//! blocks with equality/range filters, optionally unioned.
//!
//! This is the target language of the XQuery→SQL translation (§3.3 of the
//! paper, which delegates to Silkroute/XPERANTO-style algorithms; we build
//! the needed subset directly). Every workload query in the paper's
//! Appendix C compiles into one or more [`Statement`]s.

use legodb_relational::{CmpOp, Value};
use std::fmt;

/// A table occurrence in the FROM clause (alias + base table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Alias, unique within the query (e.g. `s`, `a1`).
    pub alias: String,
    /// Base table name in the catalog.
    pub table: String,
}

/// A reference to a column of the `i`-th table in the FROM list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Index into [`SpjQuery::tables`].
    pub table: usize,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// Construct a column reference.
    pub fn new(table: usize, column: impl Into<String>) -> ColRef {
        ColRef {
            table,
            column: column.into(),
        }
    }
}

/// An inclusive range bound pair for range filters.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    /// Lower bound (inclusive); `None` = unbounded.
    pub lo: Option<Value>,
    /// Upper bound (inclusive); `None` = unbounded.
    pub hi: Option<Value>,
}

/// A single-table filter predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterPred {
    /// `col op literal`.
    Cmp {
        /// The filtered column.
        col: ColRef,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare with.
        value: Value,
    },
    /// `col BETWEEN lo AND hi` (inclusive).
    Between {
        /// The filtered column.
        col: ColRef,
        /// The range.
        range: Range,
    },
}

impl FilterPred {
    /// Shorthand for an equality filter.
    pub fn eq(col: ColRef, value: impl Into<Value>) -> FilterPred {
        FilterPred::Cmp {
            col,
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// The column this predicate constrains.
    pub fn col(&self) -> &ColRef {
        match self {
            FilterPred::Cmp { col, .. } | FilterPred::Between { col, .. } => col,
        }
    }
}

/// An equality join predicate between two tables' columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPred {
    /// Left column.
    pub left: ColRef,
    /// Right column.
    pub right: ColRef,
}

/// A select-project-join query block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpjQuery {
    /// FROM list.
    pub tables: Vec<TableRef>,
    /// Equality join edges.
    pub joins: Vec<JoinPred>,
    /// Single-table filters.
    pub filters: Vec<FilterPred>,
    /// SELECT list; empty means `SELECT *` (all columns of all tables).
    pub projection: Vec<ColRef>,
}

impl SpjQuery {
    /// A single-table query with no predicates.
    pub fn single(table: impl Into<String>, alias: impl Into<String>) -> SpjQuery {
        SpjQuery {
            tables: vec![TableRef {
                alias: alias.into(),
                table: table.into(),
            }],
            ..SpjQuery::default()
        }
    }

    /// Add a table; returns its index for building [`ColRef`]s.
    pub fn add_table(&mut self, table: impl Into<String>, alias: impl Into<String>) -> usize {
        self.tables.push(TableRef {
            alias: alias.into(),
            table: table.into(),
        });
        self.tables.len() - 1
    }

    /// Add an equality join edge.
    pub fn add_join(&mut self, left: ColRef, right: ColRef) {
        self.joins.push(JoinPred { left, right });
    }

    /// Render as SQL text.
    pub fn to_sql(&self) -> String {
        let select = if self.projection.is_empty() {
            "*".to_string()
        } else {
            self.projection
                .iter()
                .map(|c| format!("{}.{}", self.tables[c.table].alias, c.column))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let from = self
            .tables
            .iter()
            .map(|t| format!("{} {}", t.table, t.alias))
            .collect::<Vec<_>>()
            .join(", ");
        let mut conditions: Vec<String> = Vec::new();
        for j in &self.joins {
            conditions.push(format!(
                "{}.{} = {}.{}",
                self.tables[j.left.table].alias,
                j.left.column,
                self.tables[j.right.table].alias,
                j.right.column
            ));
        }
        for f in &self.filters {
            match f {
                FilterPred::Cmp { col, op, value } => conditions.push(format!(
                    "{}.{} {} {}",
                    self.tables[col.table].alias, col.column, op, value
                )),
                FilterPred::Between { col, range } => {
                    let alias = &self.tables[col.table].alias;
                    match (&range.lo, &range.hi) {
                        (Some(lo), Some(hi)) => {
                            conditions.push(format!("{alias}.{} BETWEEN {lo} AND {hi}", col.column))
                        }
                        (Some(lo), None) => {
                            conditions.push(format!("{alias}.{} >= {lo}", col.column))
                        }
                        (None, Some(hi)) => {
                            conditions.push(format!("{alias}.{} <= {hi}", col.column))
                        }
                        (None, None) => {}
                    }
                }
            }
        }
        let mut sql = format!("SELECT {select} FROM {from}");
        if !conditions.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&conditions.join(" AND "));
        }
        sql
    }
}

impl fmt::Display for SpjQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

/// A complete SQL statement: one SPJ block or a `UNION ALL` of blocks.
///
/// Union statements arise when a logical XML collection is horizontally
/// partitioned across tables (the paper's union-distribution rewriting:
/// a query over `show` becomes the union of subqueries over `Show_Part1`
/// and `Show_Part2`, §5.4).
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A single SPJ block.
    Select(SpjQuery),
    /// `UNION ALL` over blocks.
    UnionAll(Vec<SpjQuery>),
}

impl Statement {
    /// The blocks of this statement.
    pub fn blocks(&self) -> &[SpjQuery] {
        match self {
            Statement::Select(q) => std::slice::from_ref(q),
            Statement::UnionAll(qs) => qs,
        }
    }

    /// Normalize: a union of one block is a plain select.
    pub fn from_blocks(mut blocks: Vec<SpjQuery>) -> Statement {
        if blocks.len() == 1 {
            // lint: allow(no-unwrap-in-lib) — len == 1 checked on the previous line
            Statement::Select(blocks.pop().expect("len checked"))
        } else {
            Statement::UnionAll(blocks)
        }
    }

    /// Render as SQL text.
    pub fn to_sql(&self) -> String {
        match self {
            Statement::Select(q) => q.to_sql(),
            Statement::UnionAll(qs) => qs
                .iter()
                .map(SpjQuery::to_sql)
                .collect::<Vec<_>>()
                .join("\nUNION ALL\n"),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup_query() -> SpjQuery {
        let mut q = SpjQuery::single("Show", "s");
        let aka = q.add_table("Aka", "a");
        q.add_join(ColRef::new(0, "Show_id"), ColRef::new(aka, "parent_Show"));
        q.filters
            .push(FilterPred::eq(ColRef::new(0, "title"), "The Fugitive"));
        q.projection = vec![ColRef::new(aka, "aka")];
        q
    }

    #[test]
    fn sql_rendering_select_from_where() {
        let sql = lookup_query().to_sql();
        assert_eq!(
            sql,
            "SELECT a.aka FROM Show s, Aka a WHERE s.Show_id = a.parent_Show AND s.title = 'The Fugitive'"
        );
    }

    #[test]
    fn star_projection_when_empty() {
        let q = SpjQuery::single("Show", "s");
        assert_eq!(q.to_sql(), "SELECT * FROM Show s");
    }

    #[test]
    fn between_renders_bounds() {
        let mut q = SpjQuery::single("Show", "s");
        q.filters.push(FilterPred::Between {
            col: ColRef::new(0, "year"),
            range: Range {
                lo: Some(Value::Int(1990)),
                hi: Some(Value::Int(1999)),
            },
        });
        assert!(q.to_sql().contains("s.year BETWEEN 1990 AND 1999"));
        let mut q = SpjQuery::single("Show", "s");
        q.filters.push(FilterPred::Between {
            col: ColRef::new(0, "year"),
            range: Range {
                lo: Some(Value::Int(1990)),
                hi: None,
            },
        });
        assert!(q.to_sql().contains("s.year >= 1990"));
    }

    #[test]
    fn union_all_rendering() {
        let s = Statement::UnionAll(vec![
            SpjQuery::single("Show_Part1", "s"),
            SpjQuery::single("Show_Part2", "s"),
        ]);
        let sql = s.to_sql();
        assert!(sql.contains("UNION ALL"));
        assert!(sql.contains("Show_Part1"));
        assert!(sql.contains("Show_Part2"));
    }

    #[test]
    fn from_blocks_normalizes_singletons() {
        let s = Statement::from_blocks(vec![SpjQuery::single("T", "t")]);
        assert!(matches!(s, Statement::Select(_)));
        assert_eq!(s.blocks().len(), 1);
        let s =
            Statement::from_blocks(vec![SpjQuery::single("A", "a"), SpjQuery::single("B", "b")]);
        assert!(matches!(s, Statement::UnionAll(_)));
        assert_eq!(s.blocks().len(), 2);
    }
}
