//! The cost model: seeks, pages read, pages written, CPU — the same four
//! components the paper's optimizer accounts for (§5: "number of seeks,
//! amount of data read, amount of data written, and CPU time").

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// Tunable cost constants. The defaults model a disk where one random seek
/// costs as much as ~40 sequential page transfers, and CPU work per tuple
/// is three orders of magnitude cheaper than a page transfer — typical for
/// the hardware class of the paper's era, and only the *ratios* matter for
/// configuration comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one random seek.
    pub seek: f64,
    /// Cost of transferring one page (read or write).
    pub page_io: f64,
    /// Cost of processing one tuple in memory.
    pub cpu_tuple: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seek: 40.0,
            page_io: 1.0,
            cpu_tuple: 0.001,
        }
    }
}

impl CostModel {
    /// Collapse a [`Cost`] breakdown into one comparable number.
    pub fn total(&self, cost: &Cost) -> f64 {
        cost.seeks * self.seek
            + (cost.pages_read + cost.pages_written) * self.page_io
            + cost.cpu_tuples * self.cpu_tuple
    }
}

/// A cost breakdown. Kept componentwise so experiments can report where
/// time goes; collapse with [`CostModel::total`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cost {
    /// Random seeks.
    pub seeks: f64,
    /// Pages read.
    pub pages_read: f64,
    /// Pages written (result delivery / materialization).
    pub pages_written: f64,
    /// Tuples processed in memory.
    pub cpu_tuples: f64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        seeks: 0.0,
        pages_read: 0.0,
        pages_written: 0.0,
        cpu_tuples: 0.0,
    };

    /// A pure-CPU cost.
    pub fn cpu(tuples: f64) -> Cost {
        Cost {
            cpu_tuples: tuples,
            ..Cost::ZERO
        }
    }

    /// A sequential read: one seek plus `pages` transfers.
    pub fn seq_read(pages: f64) -> Cost {
        Cost {
            seeks: 1.0,
            pages_read: pages,
            ..Cost::ZERO
        }
    }

    /// A random read of `pages` pages: one seek each.
    pub fn random_read(pages: f64) -> Cost {
        Cost {
            seeks: pages,
            pages_read: pages,
            ..Cost::ZERO
        }
    }

    /// Scale all components (e.g. per-probe cost × number of probes).
    pub fn scale(&self, factor: f64) -> Cost {
        Cost {
            seeks: self.seeks * factor,
            pages_read: self.pages_read * factor,
            pages_written: self.pages_written * factor,
            cpu_tuples: self.cpu_tuples * factor,
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            seeks: self.seeks + rhs.seeks,
            pages_read: self.pages_read + rhs.pages_read,
            pages_written: self.pages_written + rhs.pages_written,
            cpu_tuples: self.cpu_tuples + rhs.cpu_tuples,
        }
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seeks={:.1} read={:.1}p written={:.1}p cpu={:.0}t",
            self.seeks, self.pages_read, self.pages_written, self.cpu_tuples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_weight_components() {
        let m = CostModel {
            seek: 10.0,
            page_io: 1.0,
            cpu_tuple: 0.01,
        };
        let c = Cost {
            seeks: 2.0,
            pages_read: 5.0,
            pages_written: 3.0,
            cpu_tuples: 100.0,
        };
        assert!((m.total(&c) - (20.0 + 8.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn addition_and_sum() {
        let a = Cost::seq_read(10.0);
        let b = Cost::cpu(50.0);
        let c = a + b;
        assert_eq!(c.seeks, 1.0);
        assert_eq!(c.pages_read, 10.0);
        assert_eq!(c.cpu_tuples, 50.0);
        let total: Cost = [a, b, c].into_iter().sum();
        assert_eq!(total.pages_read, 20.0);
    }

    #[test]
    fn scale_multiplies_all_components() {
        let c = Cost {
            seeks: 1.0,
            pages_read: 3.0,
            pages_written: 0.0,
            cpu_tuples: 10.0,
        }
        .scale(4.0);
        assert_eq!(c.seeks, 4.0);
        assert_eq!(c.pages_read, 12.0);
        assert_eq!(c.cpu_tuples, 40.0);
    }

    #[test]
    fn random_read_pays_a_seek_per_page() {
        let c = Cost::random_read(7.0);
        assert_eq!(c.seeks, 7.0);
        assert_eq!(c.pages_read, 7.0);
    }

    #[test]
    fn default_ratios_are_sane() {
        let m = CostModel::default();
        assert!(m.seek > m.page_io);
        assert!(m.page_io > m.cpu_tuple);
    }
}
