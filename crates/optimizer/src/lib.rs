//! # legodb-optimizer
//!
//! A Volcano-style cost-based relational optimizer, standing in for the
//! Bell Labs Volcano-variant the paper used ([12, 16]). LegoDB calls it to
//! price each candidate relational configuration: the `rel(ps)` mapping
//! turns a p-schema into a catalog with statistics, the XQuery workload is
//! translated into [`query::Statement`]s, and this crate estimates each
//! statement's cost with a model that — like the paper's — accounts for
//! **seeks, data read, data written, and CPU time** (§5).
//!
//! The optimizer performs:
//!
//! - access-path selection (sequential scan vs. unclustered index scan,
//!   under a configurable index assumption);
//! - join-order enumeration: dynamic programming over connected subsets
//!   (System-R style) with a greedy fallback for very large joins;
//! - join-method selection (hash join, index nested-loop join, nested
//!   loop for the rare non-equi case);
//! - cardinality estimation from catalog statistics (equality selectivity
//!   `1/distinct`, uniform range interpolation, FK-aware join
//!   selectivity).
//!
//! Output is an executable [`legodb_relational::PhysicalPlan`] plus a
//! [`cost::Cost`] breakdown, so estimates can be validated against the
//! executor's observed counters (the analogue of the paper's ±10%
//! SQL Server check).

#![forbid(unsafe_code)]

pub mod cost;
pub mod estimate;
pub mod optimize;
pub mod query;

pub use cost::{Cost, CostModel};
pub use optimize::{
    optimize, optimize_statement, IndexAssumption, OptimizedPlan, OptimizerConfig, OptimizerError,
};
pub use query::{ColRef, FilterPred, JoinPred, Range, SpjQuery, Statement, TableRef};
