//! Plan enumeration: access-path selection, System-R style dynamic
//! programming over join orders, join-method selection, and final costing.

use crate::cost::{Cost, CostModel};
use crate::estimate::{filter_selectivity, filtered_cardinality, join_selectivity, output_width};
use crate::query::{ColRef, FilterPred, SpjQuery, Statement};
use legodb_relational::plan::IndexKey;
use legodb_relational::{Catalog, CmpOp, Expr, Layout, PhysicalPlan, TableDef, PAGE_SIZE};
use std::collections::HashMap;
use std::fmt;

/// Which columns the optimizer may assume carry indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexAssumption {
    /// No indexes: every access is a scan.
    None,
    /// Indexes on key columns and foreign-key columns (the indexes the
    /// LegoDB mapping would create by default). This is the paper's
    /// setting: selections on data columns are scans, parent/child
    /// navigation is indexed.
    #[default]
    KeysAndForeignKeys,
    /// Additionally assume an index on any filtered column (an AutoAdmin
    /// "what-if" style assumption).
    AllFiltered,
}

/// Optimizer knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizerConfig {
    /// Index availability assumption.
    pub indexes: IndexAssumption,
    /// Cost constants.
    pub cost_model: CostModel,
}

/// Optimizer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizerError {
    /// Query references a table missing from the catalog.
    UnknownTable(String),
    /// Query references a column missing from its table.
    UnknownColumn { table: String, column: String },
    /// Query has no tables.
    NoTables,
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerError::UnknownTable(t) => write!(f, "unknown table {t}"),
            OptimizerError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            OptimizerError::NoTables => write!(f, "query has no tables"),
        }
    }
}

impl std::error::Error for OptimizerError {}

/// The optimizer's product: an executable plan plus its estimates.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The physical plan (executable by `legodb_relational::exec::run`).
    pub plan: PhysicalPlan,
    /// Component cost breakdown.
    pub cost: Cost,
    /// Estimated output rows.
    pub rows: f64,
    /// Scalar total under the configured cost model.
    pub total: f64,
}

/// Intermediate DP entry: a plan covering a set of tables.
#[derive(Debug, Clone)]
struct SubPlan {
    plan: PhysicalPlan,
    cost: Cost,
    card: f64,
    /// Table indexes (into `query.tables`) in output-row order.
    layout: Vec<usize>,
}

/// Optimize one SPJ block.
pub fn optimize(
    catalog: &Catalog,
    query: &SpjQuery,
    config: &OptimizerConfig,
) -> Result<OptimizedPlan, OptimizerError> {
    validate(catalog, query)?;
    let n = query.tables.len();
    if n == 0 {
        return Err(OptimizerError::NoTables);
    }

    // Best single-table access paths.
    let mut best: HashMap<u64, SubPlan> = HashMap::new();
    for i in 0..n {
        best.insert(1 << i, access_path(catalog, query, i, config));
    }

    // Beyond the DP budget (2^n subsets), fall back to a greedy join
    // order: repeatedly absorb the table that joins cheapest.
    const DP_TABLE_LIMIT: usize = 10;
    if n > DP_TABLE_LIMIT {
        let root = greedy_join_order(catalog, query, &best, config);
        return finish(catalog, query, root, config);
    }

    // System-R DP over connected subsets (with cross products allowed only
    // when a subset has no connecting edge at all).
    let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    for size in 2..=n {
        for subset in subsets_of_size(n, size) {
            let mut candidate: Option<SubPlan> = None;
            // Split into (s1, s2): iterate proper non-empty sub-subsets.
            let mut s1 = (subset - 1) & subset;
            while s1 != 0 {
                let s2 = subset & !s1;
                if s1 < s2 {
                    // Each unordered split visited once; try both probe orders.
                    if let (Some(l), Some(r)) = (best.get(&s1), best.get(&s2)) {
                        for (a, b) in [(l, r), (r, l)] {
                            if let Some(joined) = join_subplans(catalog, query, a, b, config) {
                                if replace_if_cheaper(&mut candidate, joined, &config.cost_model) {}
                            }
                        }
                    }
                }
                s1 = (s1 - 1) & subset;
            }
            if let Some(c) = candidate {
                best.insert(subset, c);
            }
        }
    }

    let root = best
        .remove(&full)
        // lint: allow(no-unwrap-in-lib) — the DP table always covers the full join set — cross products keep it reachable
        .expect("DP covers the full set (cross products allowed)");
    finish(catalog, query, root, config)
}

/// Optimize a [`Statement`]: a plain select, or a `UNION ALL` whose cost is
/// the sum of its blocks (each block is optimized independently, as a real
/// engine would).
pub fn optimize_statement(
    catalog: &Catalog,
    statement: &Statement,
    config: &OptimizerConfig,
) -> Result<OptimizedPlan, OptimizerError> {
    match statement {
        Statement::Select(q) => optimize(catalog, q, config),
        Statement::UnionAll(blocks) => {
            let mut plans = Vec::new();
            let mut cost = Cost::ZERO;
            let mut rows = 0.0;
            for block in blocks {
                let opt = optimize(catalog, block, config)?;
                cost = cost + opt.cost;
                rows += opt.rows;
                plans.push(opt.plan);
            }
            let total = config.cost_model.total(&cost);
            Ok(OptimizedPlan {
                plan: PhysicalPlan::Union { inputs: plans },
                cost,
                rows,
                total,
            })
        }
    }
}

fn validate(catalog: &Catalog, query: &SpjQuery) -> Result<(), OptimizerError> {
    for t in &query.tables {
        if catalog.table(&t.table).is_none() {
            return Err(OptimizerError::UnknownTable(t.table.clone()));
        }
    }
    let check_col = |col: &ColRef| -> Result<(), OptimizerError> {
        let table = &query.tables[col.table];
        let def = catalog
            .table(&table.table)
            .ok_or_else(|| OptimizerError::UnknownTable(table.table.clone()))?;
        if def.column(&col.column).is_none() {
            return Err(OptimizerError::UnknownColumn {
                table: table.table.clone(),
                column: col.column.clone(),
            });
        }
        Ok(())
    };
    for f in &query.filters {
        check_col(f.col())?;
    }
    for j in &query.joins {
        check_col(&j.left)?;
        check_col(&j.right)?;
    }
    for p in &query.projection {
        check_col(p)?;
    }
    Ok(())
}

/// Iterate all bitmask subsets of `{0..n}` with exactly `size` bits.
fn subsets_of_size(n: usize, size: usize) -> Vec<u64> {
    let mut out = Vec::new();
    let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    let mut s: u64 = (1 << size) - 1;
    while s <= full {
        out.push(s);
        // Gosper's hack: next subset with the same popcount.
        let c = s & s.wrapping_neg();
        let r = s + c;
        if r == 0 {
            break;
        }
        s = (((r ^ s) >> 2) / c) | r;
    }
    out
}

fn replace_if_cheaper(slot: &mut Option<SubPlan>, candidate: SubPlan, model: &CostModel) -> bool {
    let better = match slot {
        None => true,
        Some(current) => model.total(&candidate.cost) < model.total(&current.cost),
    };
    if better {
        *slot = Some(candidate);
    }
    better
}

/// Does `column` of `table` carry an index under the configured assumption?
/// `is_join_column` marks columns used as join keys (keys and FKs in
/// LegoDB-generated schemas always are).
fn has_index(def: &TableDef, column: &str, config: &OptimizerConfig, filtered: bool) -> bool {
    match config.indexes {
        IndexAssumption::None => false,
        IndexAssumption::KeysAndForeignKeys => {
            def.key.as_deref() == Some(column)
                || def.foreign_keys.iter().any(|fk| fk.column == column)
        }
        IndexAssumption::AllFiltered => {
            def.key.as_deref() == Some(column)
                || def.foreign_keys.iter().any(|fk| fk.column == column)
                || filtered
        }
    }
}

/// Build the executor predicate for a set of filters over one table's rows.
fn filters_to_expr(def: &TableDef, filters: &[&FilterPred], offset: usize) -> Option<Expr> {
    let mut parts = Vec::new();
    for f in filters {
        let ci = def.column_index(&f.col().column)? + offset;
        match f {
            FilterPred::Cmp { op, value, .. } => {
                parts.push(Expr::cmp(*op, ci, value.clone()));
            }
            FilterPred::Between { range, .. } => {
                if let Some(lo) = &range.lo {
                    parts.push(Expr::cmp(CmpOp::Ge, ci, lo.clone()));
                }
                if let Some(hi) = &range.hi {
                    parts.push(Expr::cmp(CmpOp::Le, ci, hi.clone()));
                }
            }
        }
    }
    match parts.len() {
        0 => None,
        1 => parts.pop(),
        _ => Some(Expr::And(parts)),
    }
}

/// Column positions of table `i` referenced anywhere in the query —
/// filters, join edges, and the projection. An empty projection means the
/// query delivers every column (`SELECT *`), so all columns count.
fn referenced_columns(def: &TableDef, query: &SpjQuery, i: usize) -> Vec<usize> {
    if query.projection.is_empty() {
        return (0..def.columns.len()).collect();
    }
    let mut cols = Vec::new();
    let mut add = |col: &ColRef| {
        if col.table == i {
            if let Some(ci) = def.column_index(&col.column) {
                cols.push(ci);
            }
        }
    };
    for f in &query.filters {
        add(f.col());
    }
    for j in &query.joins {
        add(&j.left);
        add(&j.right);
    }
    for p in &query.projection {
        add(p);
    }
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// Per-row multiplier for random (index-driven) access. Reassembling one
/// row from a columnar table touches every column vector — one seek and
/// one page apiece — where the row heap pays a single page per row. This
/// is the penalty that keeps point-lookup tables on the row layout.
fn random_access_factor(def: &TableDef) -> f64 {
    match def.layout {
        Layout::Row => 1.0,
        Layout::Columnar => def.columns.len().max(1) as f64,
    }
}

/// Best access path for one table: sequential scan vs. index scan on the
/// most selective indexed equality/range filter.
fn access_path(catalog: &Catalog, query: &SpjQuery, i: usize, config: &OptimizerConfig) -> SubPlan {
    // lint: allow(no-unwrap-in-lib) — table names validated against the catalog before planning
    let def = catalog.table(&query.tables[i].table).expect("validated");
    let filters: Vec<&FilterPred> = query
        .filters
        .iter()
        .filter(|f| f.col().table == i)
        .collect();
    let card = filtered_cardinality(catalog, query, i);
    let rows = def.stats.rows.max(0.0);

    // Sequential scan. A columnar table is charged only for the column
    // vectors the query references; the row heap always reads full pages.
    let seq_pages = match def.layout {
        Layout::Row => def.pages(),
        Layout::Columnar => def.columnar_scan_pages(Some(&referenced_columns(def, query, i))),
    };
    let seq_cost = Cost::seq_read(seq_pages) + Cost::cpu(rows);
    let seq_plan = PhysicalPlan::SeqScan {
        table: def.name.clone(),
        predicate: filters_to_expr(def, &filters, 0),
        projection: None,
    };
    let mut best = SubPlan {
        plan: seq_plan,
        cost: seq_cost,
        card,
        layout: vec![i],
    };

    // Index scans: one candidate per indexed filter; the others become
    // residuals.
    for (fi, filter) in filters.iter().enumerate() {
        if !has_index(def, &filter.col().column, config, true) {
            continue;
        }
        let key = match filter {
            FilterPred::Cmp {
                op: CmpOp::Eq,
                value,
                ..
            } => IndexKey::Eq(value.clone()),
            FilterPred::Between { range, .. } => IndexKey::Range {
                lo: range.lo.clone(),
                hi: range.hi.clone(),
            },
            _ => continue, // open comparisons: skip (scan handles them)
        };
        let sel = filter_selectivity(catalog, query, filter);
        let matches = rows * sel;
        // 1 seek + ~2 index pages + one random page per match (unclustered);
        // columnar rows pay the reassembly factor per match.
        let fetch = matches * random_access_factor(def);
        let cost = Cost {
            seeks: 1.0 + fetch,
            pages_read: 2.0 + fetch,
            ..Cost::ZERO
        } + Cost::cpu(matches);
        let residual: Vec<&FilterPred> = filters
            .iter()
            .enumerate()
            .filter(|&(gi, _)| gi != fi)
            .map(|(_, f)| *f)
            .collect();
        let plan = PhysicalPlan::IndexScan {
            table: def.name.clone(),
            column: filter.col().column.clone(),
            key,
            residual: filters_to_expr(def, &residual, 0),
            projection: None,
        };
        let candidate = SubPlan {
            plan,
            cost,
            card,
            layout: vec![i],
        };
        if config.cost_model.total(&candidate.cost) < config.cost_model.total(&best.cost) {
            best = candidate;
        }
    }

    best
}

/// Position of `col` within the concatenated output row of a plan whose
/// tables appear in `layout` order.
fn col_position(
    catalog: &Catalog,
    query: &SpjQuery,
    layout: &[usize],
    col: &ColRef,
) -> Option<usize> {
    let mut offset = 0;
    for &t in layout {
        let def = catalog.table(&query.tables[t].table)?;
        if t == col.table {
            return Some(offset + def.column_index(&col.column)?);
        }
        offset += def.columns.len();
    }
    None
}

/// Join two subplans if beneficial; returns `None` only when plans overlap.
fn join_subplans(
    catalog: &Catalog,
    query: &SpjQuery,
    left: &SubPlan,
    right: &SubPlan,
    config: &OptimizerConfig,
) -> Option<SubPlan> {
    // Edges connecting the two sides.
    let in_left = |t: usize| left.layout.contains(&t);
    let in_right = |t: usize| right.layout.contains(&t);
    let mut edges = Vec::new();
    for j in &query.joins {
        if in_left(j.left.table) && in_right(j.right.table) {
            edges.push((j.left.clone(), j.right.clone()));
        } else if in_left(j.right.table) && in_right(j.left.table) {
            edges.push((j.right.clone(), j.left.clone()));
        }
    }

    let mut layout = left.layout.clone();
    layout.extend(&right.layout);

    // Join cardinality: product × each edge's selectivity.
    let mut card = left.card * right.card;
    for (l, r) in &edges {
        card *= join_selectivity(catalog, query, l, r);
    }
    let card = card.max(0.0);

    let mut candidate: Option<SubPlan> = None;

    if edges.is_empty() {
        // Cross product via nested loops (needed for disconnected queries).
        let cost = left.cost + right.cost + Cost::cpu(left.card * right.card);
        let plan = PhysicalPlan::NestedLoopJoin {
            left: Box::new(left.plan.clone()),
            right: Box::new(right.plan.clone()),
            predicate: None,
        };
        return Some(SubPlan {
            plan,
            cost,
            card,
            layout,
        });
    }

    // Hash join: build on the right, probe with the left.
    {
        let left_keys: Option<Vec<usize>> = edges
            .iter()
            .map(|(l, _)| col_position(catalog, query, &left.layout, l))
            .collect();
        let right_keys: Option<Vec<usize>> = edges
            .iter()
            .map(|(_, r)| col_position(catalog, query, &right.layout, r))
            .collect();
        if let (Some(lk), Some(rk)) = (left_keys, right_keys) {
            let cost = left.cost
                + right.cost
                + Cost::cpu(left.card + right.card + card)
                // Spill factor: building a hash table over a large input
                // writes and re-reads it once (Grace-style partitioning).
                + hash_spill_cost(catalog, query, right, config);
            let plan = PhysicalPlan::HashJoin {
                left: Box::new(left.plan.clone()),
                right: Box::new(right.plan.clone()),
                left_keys: lk,
                right_keys: rk,
            };
            replace_if_cheaper(
                &mut candidate,
                SubPlan {
                    plan,
                    cost,
                    card,
                    layout: layout.clone(),
                },
                &config.cost_model,
            );
        }
    }

    // Index nested-loop join: right side must be a single base table with
    // an index on the join column; remaining edges/filters become residuals.
    if right.layout.len() == 1 {
        let rt = right.layout[0];
        // lint: allow(no-unwrap-in-lib) — table names validated against the catalog before planning
        let def = catalog.table(&query.tables[rt].table).expect("validated");
        if let Some((probe_l, probe_r)) = edges
            .iter()
            .find(|(_, r)| has_index(def, &r.column, config, false))
        {
            let left_key = col_position(catalog, query, &left.layout, probe_l)?;
            // Residual: remaining edges + right-table filters, evaluated on
            // the concatenated row.
            let left_width: usize = left
                .layout
                .iter()
                .map(|&t| {
                    catalog
                        .table(&query.tables[t].table)
                        .map_or(0, |d| d.columns.len())
                })
                .sum();
            let mut residual_parts = Vec::new();
            for (l, r) in &edges {
                if l == probe_l && r == probe_r {
                    continue;
                }
                let lp = col_position(catalog, query, &left.layout, l)?;
                let rp = def.column_index(&r.column)? + left_width;
                residual_parts.push(Expr::col_eq_col(lp, rp));
            }
            let right_filters: Vec<&FilterPred> = query
                .filters
                .iter()
                .filter(|f| f.col().table == rt)
                .collect();
            if let Some(e) = filters_to_expr(def, &right_filters, left_width) {
                residual_parts.push(e);
            }
            let residual = match residual_parts.len() {
                0 => None,
                1 => residual_parts.pop(),
                _ => Some(Expr::And(residual_parts)),
            };
            // Matches per probe: filtered right rows × edge selectivity.
            let sel = join_selectivity(catalog, query, probe_l, probe_r);
            let right_card_filtered = filtered_cardinality(catalog, query, rt);
            let per_probe = (right_card_filtered * sel).max(0.0);
            let probes = left.card.max(0.0);
            let fetch = per_probe * random_access_factor(def);
            let per_probe_cost = Cost {
                seeks: 1.0 + fetch,
                pages_read: 2.0 + fetch,
                ..Cost::ZERO
            } + Cost::cpu(per_probe);
            let cost = left.cost + per_probe_cost.scale(probes);
            let plan = PhysicalPlan::IndexJoin {
                left: Box::new(left.plan.clone()),
                table: def.name.clone(),
                column: probe_r.column.clone(),
                left_key,
                residual,
            };
            replace_if_cheaper(
                &mut candidate,
                SubPlan {
                    plan,
                    cost,
                    card,
                    layout: layout.clone(),
                },
                &config.cost_model,
            );
        }
    }

    candidate
}

/// Greedy join ordering for wide queries: start from the smallest filtered
/// table, repeatedly join the (preferably connected) table whose addition
/// costs least.
fn greedy_join_order(
    catalog: &Catalog,
    query: &SpjQuery,
    access: &HashMap<u64, SubPlan>,
    config: &OptimizerConfig,
) -> SubPlan {
    let n = query.tables.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    // Seed with the smallest filtered cardinality.
    let seed = remaining
        .iter()
        .copied()
        .min_by(|&a, &b| {
            let ca = access[&(1u64 << a)].card;
            let cb = access[&(1u64 << b)].card;
            // total_cmp: a NaN cardinality (corrupt stats) must order
            // last, not panic the join-ordering pass.
            ca.total_cmp(&cb)
        })
        // lint: allow(no-unwrap-in-lib) — min over the block's tables, non-empty by construction
        .expect("n >= 1");
    remaining.retain(|&i| i != seed);
    let mut current = access[&(1u64 << seed)].clone();
    while !remaining.is_empty() {
        let mut best: Option<(usize, SubPlan)> = None;
        for &i in &remaining {
            let right = &access[&(1u64 << i)];
            let Some(joined) = join_subplans(catalog, query, &current, right, config) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some((_, b)) => {
                    config.cost_model.total(&joined.cost) < config.cost_model.total(&b.cost)
                }
            };
            if better {
                best = Some((i, joined));
            }
        }
        // lint: allow(no-unwrap-in-lib) — cross products keep the join graph connected, so a best pair always exists
        let (picked, joined) = best.expect("cross products keep the graph joinable");
        remaining.retain(|&i| i != picked);
        current = joined;
    }
    current
}

/// A hash build over inputs larger than memory pays one extra write+read
/// pass (simplified Grace hash accounting). Memory budget: 1024 pages.
fn hash_spill_cost(
    catalog: &Catalog,
    query: &SpjQuery,
    side: &SubPlan,
    _config: &OptimizerConfig,
) -> Cost {
    const MEMORY_PAGES: f64 = 1024.0;
    let width: f64 = side
        .layout
        .iter()
        .filter_map(|&t| catalog.table(&query.tables[t].table))
        .map(|d| d.row_width())
        .sum();
    let pages = side.card * width / PAGE_SIZE;
    if pages > MEMORY_PAGES {
        Cost {
            pages_read: pages,
            pages_written: pages,
            ..Cost::ZERO
        }
    } else {
        Cost::ZERO
    }
}

/// Apply the final projection and the result-delivery cost.
fn finish(
    catalog: &Catalog,
    query: &SpjQuery,
    root: SubPlan,
    config: &OptimizerConfig,
) -> Result<OptimizedPlan, OptimizerError> {
    let mut plan = root.plan;
    if !query.projection.is_empty() {
        let columns: Option<Vec<usize>> = query
            .projection
            .iter()
            .map(|c| col_position(catalog, query, &root.layout, c))
            .collect();
        let columns = columns.ok_or(OptimizerError::NoTables)?;
        // Projection pushdown: a single-table scan over a columnar table
        // applies the projection inside the scan, so only the projected
        // column vectors are ever materialized (no Project node).
        plan = match plan {
            PhysicalPlan::SeqScan {
                table,
                predicate,
                projection: None,
            } if root.layout.len() == 1
                && catalog
                    .table(&table)
                    .is_some_and(|d| d.layout == Layout::Columnar) =>
            {
                PhysicalPlan::SeqScan {
                    table,
                    predicate,
                    projection: Some(columns),
                }
            }
            other => PhysicalPlan::Project {
                input: Box::new(other),
                columns,
            },
        };
    }
    // Result delivery: writing the output (paper: "amount of data written").
    let width = output_width(catalog, query);
    let out_pages = (root.card * width / PAGE_SIZE).max(0.0);
    let cost = root.cost
        + Cost {
            pages_written: out_pages,
            ..Cost::ZERO
        }
        + Cost::cpu(root.card);
    let total = config.cost_model.total(&cost);
    Ok(OptimizedPlan {
        plan,
        cost,
        rows: root.card,
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Range;
    use legodb_relational::{ColumnDef, ColumnStats, SqlType, Value};

    fn col(name: &str, ty: SqlType, distinct: f64) -> ColumnDef {
        ColumnDef::new(name, ty).with_stats(ColumnStats {
            avg_width: ty.default_width(),
            distinct: Some(distinct),
            min: if ty == SqlType::Int { Some(0) } else { None },
            max: if ty == SqlType::Int { Some(1000) } else { None },
            null_fraction: 0.0,
        })
    }

    fn catalog() -> Catalog {
        let mut show = TableDef::new("Show");
        show.columns = vec![
            col("Show_id", SqlType::Int, 10000.0),
            col("title", SqlType::Char(50), 10000.0),
            col("year", SqlType::Int, 300.0),
        ];
        show.key = Some("Show_id".into());
        show.stats.rows = 10000.0;
        let mut aka = TableDef::new("Aka");
        aka.columns = vec![
            col("Aka_id", SqlType::Int, 30000.0),
            col("aka", SqlType::Char(40), 20000.0),
            col("parent_Show", SqlType::Int, 10000.0),
        ];
        aka.key = Some("Aka_id".into());
        aka.foreign_keys.push(legodb_relational::ForeignKey {
            column: "parent_Show".into(),
            parent_table: "Show".into(),
        });
        aka.stats.rows = 30000.0;
        let mut c = Catalog::new();
        c.add(show);
        c.add(aka);
        c
    }

    fn default_config() -> OptimizerConfig {
        OptimizerConfig::default()
    }

    #[test]
    fn single_table_scan() {
        let c = catalog();
        let q = SpjQuery::single("Show", "s");
        let opt = optimize(&c, &q, &default_config()).unwrap();
        assert!(matches!(opt.plan, PhysicalPlan::SeqScan { .. }));
        assert!((opt.rows - 10000.0).abs() < 1.0);
        assert!(opt.total > 0.0);
    }

    #[test]
    fn selective_filter_reduces_cardinality() {
        let c = catalog();
        let mut q = SpjQuery::single("Show", "s");
        q.filters.push(FilterPred::eq(ColRef::new(0, "title"), "x"));
        let opt = optimize(&c, &q, &default_config()).unwrap();
        assert!(opt.rows < 2.0);
    }

    #[test]
    fn fk_join_cardinality_is_child_count() {
        let c = catalog();
        let mut q = SpjQuery::single("Show", "s");
        let a = q.add_table("Aka", "a");
        q.add_join(ColRef::new(0, "Show_id"), ColRef::new(a, "parent_Show"));
        let opt = optimize(&c, &q, &default_config()).unwrap();
        assert!((opt.rows - 30000.0).abs() / 30000.0 < 0.01);
    }

    #[test]
    fn selective_probe_prefers_index_join() {
        let c = catalog();
        let mut q = SpjQuery::single("Show", "s");
        let a = q.add_table("Aka", "a");
        q.add_join(ColRef::new(0, "Show_id"), ColRef::new(a, "parent_Show"));
        q.filters.push(FilterPred::eq(ColRef::new(0, "title"), "x"));
        q.projection = vec![ColRef::new(a, "aka")];
        let opt = optimize(&c, &q, &default_config()).unwrap();
        // With ~1 qualifying show, probing Aka's FK index beats hashing 30k rows.
        fn has_index_join(p: &PhysicalPlan) -> bool {
            match p {
                PhysicalPlan::IndexJoin { .. } => true,
                PhysicalPlan::Project { input, .. } | PhysicalPlan::Filter { input, .. } => {
                    has_index_join(input)
                }
                _ => false,
            }
        }
        assert!(
            has_index_join(&opt.plan),
            "expected an index join:\n{}",
            opt.plan
        );
    }

    #[test]
    fn unselective_join_prefers_hash_join() {
        let c = catalog();
        let mut q = SpjQuery::single("Show", "s");
        let a = q.add_table("Aka", "a");
        q.add_join(ColRef::new(0, "Show_id"), ColRef::new(a, "parent_Show"));
        let opt = optimize(&c, &q, &default_config()).unwrap();
        fn has_hash_join(p: &PhysicalPlan) -> bool {
            match p {
                PhysicalPlan::HashJoin { .. } => true,
                PhysicalPlan::Project { input, .. } => has_hash_join(input),
                _ => false,
            }
        }
        assert!(
            has_hash_join(&opt.plan),
            "expected a hash join:\n{}",
            opt.plan
        );
    }

    #[test]
    fn cross_product_when_disconnected() {
        let c = catalog();
        let mut q = SpjQuery::single("Show", "s");
        q.add_table("Aka", "a");
        let opt = optimize(&c, &q, &default_config()).unwrap();
        assert!((opt.rows - 10000.0 * 30000.0).abs() < 1.0);
    }

    #[test]
    fn range_filter_selectivity() {
        let c = catalog();
        let mut q = SpjQuery::single("Show", "s");
        q.filters.push(FilterPred::Between {
            col: ColRef::new(0, "year"),
            range: Range {
                lo: Some(Value::Int(0)),
                hi: Some(Value::Int(500)),
            },
        });
        let opt = optimize(&c, &q, &default_config()).unwrap();
        assert!((opt.rows - 5000.0).abs() < 10.0);
    }

    #[test]
    fn narrower_projection_costs_less() {
        let c = catalog();
        let mut wide = SpjQuery::single("Show", "s");
        wide.projection = vec![];
        let mut narrow = wide.clone();
        narrow.projection = vec![ColRef::new(0, "year")];
        let cfg = default_config();
        let w = optimize(&c, &wide, &cfg).unwrap();
        let n = optimize(&c, &narrow, &cfg).unwrap();
        assert!(n.total < w.total, "narrow {} !< wide {}", n.total, w.total);
    }

    #[test]
    fn union_statement_sums_costs() {
        let c = catalog();
        let s1 = SpjQuery::single("Show", "s");
        let both = Statement::UnionAll(vec![s1.clone(), s1.clone()]);
        let cfg = default_config();
        let one = optimize_statement(&c, &Statement::Select(s1), &cfg).unwrap();
        let two = optimize_statement(&c, &both, &cfg).unwrap();
        assert!((two.total - 2.0 * one.total).abs() < 1e-6);
        assert!(matches!(two.plan, PhysicalPlan::Union { .. }));
    }

    #[test]
    fn unknown_names_are_errors() {
        let c = catalog();
        let q = SpjQuery::single("Nope", "n");
        assert!(matches!(
            optimize(&c, &q, &default_config()),
            Err(OptimizerError::UnknownTable(_))
        ));
        let mut q = SpjQuery::single("Show", "s");
        q.filters
            .push(FilterPred::eq(ColRef::new(0, "bogus"), 1i64));
        assert!(matches!(
            optimize(&c, &q, &default_config()),
            Err(OptimizerError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn index_assumption_none_disables_index_joins() {
        let c = catalog();
        let mut q = SpjQuery::single("Show", "s");
        let a = q.add_table("Aka", "a");
        q.add_join(ColRef::new(0, "Show_id"), ColRef::new(a, "parent_Show"));
        q.filters.push(FilterPred::eq(ColRef::new(0, "title"), "x"));
        let cfg = OptimizerConfig {
            indexes: IndexAssumption::None,
            ..default_config()
        };
        let opt = optimize(&c, &q, &cfg).unwrap();
        fn any_index(p: &PhysicalPlan) -> bool {
            match p {
                PhysicalPlan::IndexJoin { .. } | PhysicalPlan::IndexScan { .. } => true,
                PhysicalPlan::Project { input, .. } | PhysicalPlan::Filter { input, .. } => {
                    any_index(input)
                }
                PhysicalPlan::HashJoin { left, right, .. }
                | PhysicalPlan::NestedLoopJoin { left, right, .. } => {
                    any_index(left) || any_index(right)
                }
                _ => false,
            }
        }
        assert!(!any_index(&opt.plan));
    }

    #[test]
    fn columnar_layout_discounts_narrow_scans_and_penalizes_lookups() {
        let row_cat = catalog();
        let mut col_cat = Catalog::new();
        for name in ["Show", "Aka"] {
            col_cat.add(
                row_cat
                    .table(name)
                    .unwrap()
                    .clone()
                    .with_layout(Layout::Columnar),
            );
        }
        // Narrow aggregate-style scan: columnar reads one column vector
        // instead of full pages, and the projection is pushed into the scan.
        let mut narrow = SpjQuery::single("Show", "s");
        narrow.projection = vec![ColRef::new(0, "year")];
        let cfg = default_config();
        let r = optimize(&row_cat, &narrow, &cfg).unwrap();
        let c = optimize(&col_cat, &narrow, &cfg).unwrap();
        assert!(c.total < r.total, "columnar {} !< row {}", c.total, r.total);
        assert!(
            matches!(
                c.plan,
                PhysicalPlan::SeqScan {
                    projection: Some(_),
                    ..
                }
            ),
            "expected pushed-down projection:\n{}",
            c.plan
        );
        // Point lookup: reassembling full columnar rows through the index
        // costs more than the row heap's one page per match.
        let mut lookup = SpjQuery::single("Show", "s");
        lookup
            .filters
            .push(FilterPred::eq(ColRef::new(0, "Show_id"), 7i64));
        let cfg = OptimizerConfig {
            indexes: IndexAssumption::AllFiltered,
            ..default_config()
        };
        let r = optimize(&row_cat, &lookup, &cfg).unwrap();
        let c = optimize(&col_cat, &lookup, &cfg).unwrap();
        assert!(
            r.total <= c.total,
            "row {} !<= columnar {}",
            r.total,
            c.total
        );
    }

    #[test]
    fn all_filtered_assumption_enables_index_scans() {
        let c = catalog();
        let mut q = SpjQuery::single("Show", "s");
        q.filters.push(FilterPred::eq(ColRef::new(0, "title"), "x"));
        let cfg = OptimizerConfig {
            indexes: IndexAssumption::AllFiltered,
            ..default_config()
        };
        let opt = optimize(&c, &q, &cfg).unwrap();
        fn has_index_scan(p: &PhysicalPlan) -> bool {
            match p {
                PhysicalPlan::IndexScan { .. } => true,
                PhysicalPlan::Project { input, .. } => has_index_scan(input),
                _ => false,
            }
        }
        assert!(has_index_scan(&opt.plan), "{}", opt.plan);
    }
}
