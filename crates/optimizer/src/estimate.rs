//! Cardinality and selectivity estimation from catalog statistics.
//!
//! Classic System-R estimators: equality selectivity `1/distinct`, range
//! selectivity by uniform interpolation between the column's min and max,
//! and equi-join selectivity `1/max(d_left, d_right)`.

use crate::query::{ColRef, FilterPred, SpjQuery};
use legodb_relational::{Catalog, CmpOp, ColumnDef, Value};

/// Fallback equality selectivity when no distinct count is known.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Fallback range selectivity when min/max are unknown.
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 0.3;

/// Look up the column definition behind a [`ColRef`].
pub fn resolve_column<'a>(
    catalog: &'a Catalog,
    query: &SpjQuery,
    col: &ColRef,
) -> Option<&'a ColumnDef> {
    let table = query.tables.get(col.table)?;
    catalog.table(&table.table)?.column(&col.column)
}

/// Estimated fraction of rows a filter keeps.
pub fn filter_selectivity(catalog: &Catalog, query: &SpjQuery, filter: &FilterPred) -> f64 {
    let Some(column) = resolve_column(catalog, query, filter.col()) else {
        return DEFAULT_EQ_SELECTIVITY;
    };
    match filter {
        FilterPred::Cmp { op, value, .. } => match op {
            CmpOp::Eq => column
                .stats
                .distinct
                .map_or(DEFAULT_EQ_SELECTIVITY, |d| 1.0 / d.max(1.0)),
            CmpOp::Ne => {
                1.0 - column
                    .stats
                    .distinct
                    .map_or(DEFAULT_EQ_SELECTIVITY, |d| 1.0 / d.max(1.0))
            }
            CmpOp::Lt | CmpOp::Le => open_range_fraction(column, value, true),
            CmpOp::Gt | CmpOp::Ge => open_range_fraction(column, value, false),
        },
        FilterPred::Between { range, .. } => {
            let (Some(min), Some(max)) = (column.stats.min, column.stats.max) else {
                return DEFAULT_RANGE_SELECTIVITY;
            };
            let span = (max - min) as f64;
            if span <= 0.0 {
                return 1.0;
            }
            let lo = range
                .lo
                .as_ref()
                .and_then(Value::as_int)
                .unwrap_or(min)
                // lint: allow(float-total-cmp) — i64 clamp on integer column bounds
                .max(min);
            let hi = range
                .hi
                .as_ref()
                .and_then(Value::as_int)
                .unwrap_or(max)
                // lint: allow(float-total-cmp) — i64 clamp on integer column bounds
                .min(max);
            (((hi - lo) as f64) / span).clamp(0.0, 1.0)
        }
    }
}

/// Fraction of rows below (`below = true`) or above the literal, assuming
/// a uniform distribution between min and max.
fn open_range_fraction(column: &ColumnDef, value: &Value, below: bool) -> f64 {
    let (Some(min), Some(max), Some(v)) = (column.stats.min, column.stats.max, value.as_int())
    else {
        return DEFAULT_RANGE_SELECTIVITY;
    };
    let span = (max - min) as f64;
    if span <= 0.0 {
        return DEFAULT_RANGE_SELECTIVITY;
    }
    let frac = ((v - min) as f64 / span).clamp(0.0, 1.0);
    if below {
        frac
    } else {
        1.0 - frac
    }
}

/// Combined selectivity of all filters on table `table_idx` (independence
/// assumption: product).
pub fn table_selectivity(catalog: &Catalog, query: &SpjQuery, table_idx: usize) -> f64 {
    query
        .filters
        .iter()
        .filter(|f| f.col().table == table_idx)
        .map(|f| filter_selectivity(catalog, query, f))
        .product()
}

/// Estimated rows of table `table_idx` after its filters.
pub fn filtered_cardinality(catalog: &Catalog, query: &SpjQuery, table_idx: usize) -> f64 {
    let Some(table) = query
        .tables
        .get(table_idx)
        .and_then(|t| catalog.table(&t.table))
    else {
        return 0.0;
    };
    (table.stats.rows * table_selectivity(catalog, query, table_idx)).max(0.0)
}

/// Equi-join selectivity for a join edge: `1 / max(d_l, d_r)`. The key/FK
/// case falls out naturally: the key side's distinct count equals its row
/// count, giving the familiar `|child|` result cardinality.
pub fn join_selectivity(catalog: &Catalog, query: &SpjQuery, left: &ColRef, right: &ColRef) -> f64 {
    let d = |col: &ColRef| -> f64 {
        resolve_column(catalog, query, col)
            .and_then(|c| {
                // Key columns: distinct = row count even if stats are stale.
                let table = catalog.table(&query.tables[col.table].table)?;
                if table.key.as_deref() == Some(col.column.as_str()) {
                    Some(table.stats.rows.max(1.0))
                } else {
                    c.stats.distinct
                }
            })
            .unwrap_or(10.0)
    };
    // Pick the larger distinct count with a *total* order: f64::max would
    // silently drop a NaN operand instead of surfacing it downstream.
    let (dl, dr) = (d(left), d(right));
    let dmax = if dl.total_cmp(&dr).is_ge() { dl } else { dr };
    1.0 / dmax.max(1.0)
}

/// Output row width (bytes) of the query's projection; with an empty
/// projection, the sum of all table widths.
pub fn output_width(catalog: &Catalog, query: &SpjQuery) -> f64 {
    if query.projection.is_empty() {
        query
            .tables
            .iter()
            .filter_map(|t| catalog.table(&t.table))
            .map(|t| t.row_width())
            .sum()
    } else {
        query
            .projection
            .iter()
            .filter_map(|c| resolve_column(catalog, query, c))
            .map(|c| c.stats.avg_width)
            .sum::<f64>()
            .max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Range;
    use legodb_relational::{ColumnStats, SqlType, TableDef};

    fn catalog() -> Catalog {
        let mut show = TableDef::new("Show");
        show.columns = vec![
            legodb_relational::ColumnDef::new("Show_id", SqlType::Int),
            legodb_relational::ColumnDef::new("title", SqlType::Char(50)).with_stats(ColumnStats {
                avg_width: 50.0,
                distinct: Some(34798.0),
                min: None,
                max: None,
                null_fraction: 0.0,
            }),
            legodb_relational::ColumnDef::new("year", SqlType::Int).with_stats(ColumnStats {
                avg_width: 8.0,
                distinct: Some(300.0),
                min: Some(1800),
                max: Some(2100),
                null_fraction: 0.0,
            }),
        ];
        show.key = Some("Show_id".into());
        show.stats.rows = 34798.0;
        let mut aka = TableDef::new("Aka");
        aka.columns = vec![
            legodb_relational::ColumnDef::new("Aka_id", SqlType::Int),
            legodb_relational::ColumnDef::new("parent_Show", SqlType::Int).with_stats(
                ColumnStats {
                    avg_width: 8.0,
                    distinct: Some(10000.0),
                    min: None,
                    max: None,
                    null_fraction: 0.0,
                },
            ),
        ];
        aka.key = Some("Aka_id".into());
        aka.stats.rows = 13641.0;
        let mut c = Catalog::new();
        c.add(show);
        c.add(aka);
        c
    }

    fn show_query() -> SpjQuery {
        SpjQuery::single("Show", "s")
    }

    #[test]
    fn equality_selectivity_uses_distincts() {
        let c = catalog();
        let q = show_query();
        let f = FilterPred::eq(ColRef::new(0, "title"), "x");
        let sel = filter_selectivity(&c, &q, &f);
        assert!((sel - 1.0 / 34798.0).abs() < 1e-12);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let c = catalog();
        let q = show_query();
        let f = FilterPred::Between {
            col: ColRef::new(0, "year"),
            range: Range {
                lo: Some(Value::Int(1800)),
                hi: Some(Value::Int(1950)),
            },
        };
        let sel = filter_selectivity(&c, &q, &f);
        assert!((sel - 0.5).abs() < 1e-9);
    }

    #[test]
    fn open_ranges_split_the_domain() {
        let c = catalog();
        let q = show_query();
        let f = FilterPred::Cmp {
            col: ColRef::new(0, "year"),
            op: CmpOp::Ge,
            value: Value::Int(1950),
        };
        let sel = filter_selectivity(&c, &q, &f);
        assert!((sel - 0.5).abs() < 1e-9);
    }

    #[test]
    fn missing_stats_fall_back() {
        let c = catalog();
        let q = show_query();
        let f = FilterPred::eq(ColRef::new(0, "Show_id"), 5i64); // no distinct recorded
        assert_eq!(filter_selectivity(&c, &q, &f), DEFAULT_EQ_SELECTIVITY);
    }

    #[test]
    fn filters_multiply() {
        let c = catalog();
        let mut q = show_query();
        q.filters.push(FilterPred::eq(ColRef::new(0, "title"), "x"));
        q.filters.push(FilterPred::Cmp {
            col: ColRef::new(0, "year"),
            op: CmpOp::Ge,
            value: Value::Int(1950),
        });
        let sel = table_selectivity(&c, &q, 0);
        assert!((sel - 0.5 / 34798.0).abs() < 1e-12);
        let card = filtered_cardinality(&c, &q, 0);
        assert!((card - 0.5).abs() < 0.01);
    }

    #[test]
    fn fk_join_estimates_child_cardinality() {
        let c = catalog();
        let mut q = show_query();
        let aka = q.add_table("Aka", "a");
        let sel = join_selectivity(
            &c,
            &q,
            &ColRef::new(0, "Show_id"),
            &ColRef::new(aka, "parent_Show"),
        );
        // key side distinct = 34798 rows → join card = 34798 * 13641 / 34798 = 13641
        let join_card = 34798.0 * 13641.0 * sel;
        assert!((join_card - 13641.0).abs() < 1.0);
    }

    #[test]
    fn output_width_follows_projection() {
        let c = catalog();
        let mut q = show_query();
        assert!(output_width(&c, &q) > 50.0); // whole table
        q.projection = vec![ColRef::new(0, "year")];
        assert_eq!(output_width(&c, &q), 8.0);
    }
}
